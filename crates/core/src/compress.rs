//! Worker-side update construction for every method.
//!
//! A [`Compressor`] turns the fresh minibatch gradient into the update
//! payload sent to the server, maintaining whatever local state its method
//! requires (residuals, velocities). All compressors emit values in *update
//! units* — learning rate already applied — matching the paper's
//! `r ← r + η∇` / `u ← m·u + η∇` formulations; the server simply subtracts
//! what it receives from its update accumulator `M`.

use crate::protocol::UpPayload;
use crate::PAR_THRESHOLD;
use dgs_sparsify::{
    gather, gather_and_zero, k_for_ratio, random_unbiased_update, scale_all_restore,
    topk_indices_with, zero_at, Partition, Segment, SelectScratch, SelectStrategy, SparseUpdate,
    SparseVec,
};
use dgs_tensor::tensor::l2_norm_slice;
use dgs_tensor::{BufferPool, Kernel};
use rayon::prelude::*;

/// Splits a flat model-sized buffer into its per-segment slices (the
/// [`Partition`] is ordered and gap-free, so a `split_at_mut` chain covers
/// it exactly) — the shape rayon needs to fan segments out.
fn split_segments<'a>(segments: &[Segment], mut buf: &'a mut [f32]) -> Vec<&'a mut [f32]> {
    let mut out = Vec::with_capacity(segments.len());
    for seg in segments {
        let (head, tail) = buf.split_at_mut(seg.len);
        out.push(head);
        buf = tail;
    }
    out
}

/// Per-iteration context a compressor may consult.
#[derive(Debug, Clone, Copy)]
pub struct StepCtx {
    /// Learning rate in effect this iteration.
    pub lr: f32,
    /// Top-k keep ratio in effect this iteration (warm-up may raise it).
    pub ratio: f64,
}

/// Turns gradients into uplink payloads. One instance per worker.
pub trait Compressor: Send {
    /// Builds the update payload from the flat gradient.
    fn compress(&mut self, grad: &[f32], part: &Partition, ctx: StepCtx) -> UpPayload;

    /// Number of auxiliary `f32`s of worker-side state (for the §5.6.2
    /// memory report): residual and/or velocity buffers.
    fn aux_floats(&self) -> usize;

    /// Method label for diagnostics.
    fn label(&self) -> &'static str;

    /// Selects the uplink Top-k engine ([`SelectStrategy::Radix`] by
    /// default). Both engines emit bitwise-identical payloads, so this
    /// changes cost only. No-op for compressors without Top-k selection
    /// (dense, random-drop).
    fn set_select_strategy(&mut self, _select: SelectStrategy) {}

    /// Selects the compute backend for the selection kernels
    /// ([`Kernel::runtime`] by default). Backends are bitwise identical,
    /// so this changes cost only. No-op for compressors without Top-k
    /// selection (dense, random-drop).
    fn set_kernel(&mut self, _kernel: Kernel) {}
}

// ---------------------------------------------------------------------------
// Dense (ASGD)
// ---------------------------------------------------------------------------

/// Vanilla ASGD: the full `η∇` goes up, no local state.
#[derive(Debug, Default)]
pub struct DenseCompressor;

impl Compressor for DenseCompressor {
    fn compress(&mut self, grad: &[f32], _part: &Partition, ctx: StepCtx) -> UpPayload {
        UpPayload::Dense(grad.iter().map(|&g| ctx.lr * g).collect())
    }

    fn aux_floats(&self) -> usize {
        0
    }

    fn label(&self) -> &'static str {
        "dense"
    }
}

// ---------------------------------------------------------------------------
// Gradient Dropping (GD-async, paper Alg. 1)
// ---------------------------------------------------------------------------

/// Top-k with residual accumulation, no momentum:
/// `r ← r + η∇`; send per-layer Top-k of `r`; zero the sent coordinates.
#[derive(Debug)]
pub struct GradientDroppingCompressor {
    residual: Vec<f32>,
    select: SelectStrategy,
    kernel: Kernel,
    scratch: BufferPool<u32>,
}

impl GradientDroppingCompressor {
    /// Creates the compressor for a model of `dim` parameters.
    pub fn new(dim: usize) -> Self {
        GradientDroppingCompressor {
            residual: vec![0.0; dim],
            select: SelectStrategy::default(),
            kernel: Kernel::runtime(),
            scratch: BufferPool::new(64),
        }
    }

    /// The residual buffer (`r_k` in the paper), for tests.
    pub fn residual(&self) -> &[f32] {
        &self.residual
    }
}

impl Compressor for GradientDroppingCompressor {
    fn compress(&mut self, grad: &[f32], part: &Partition, ctx: StepCtx) -> UpPayload {
        assert_eq!(grad.len(), self.residual.len(), "gradient size mismatch");
        for (r, &g) in self.residual.iter_mut().zip(grad.iter()) {
            *r += ctx.lr * g;
        }
        let select = self.select;
        let ratio = ctx.ratio;
        let segments = part.segments();
        let mut jobs: Vec<(&mut [f32], SelectScratch)> = Vec::with_capacity(segments.len());
        for seg in split_segments(segments, &mut self.residual) {
            let sel = SelectScratch::from_buffers(
                self.scratch.acquire(),
                self.scratch.acquire(),
                self.scratch.acquire(),
            )
            .with_kernel(self.kernel);
            jobs.push((seg, sel));
        }
        let run = |(seg, mut sel): (&mut [f32], SelectScratch)| {
            let k = k_for_ratio(seg.len(), ratio);
            let idx = topk_indices_with(select, seg, k, &mut sel);
            // Single pass: gather the sent values and drop them from the
            // residual (Alg. 1 lines 9-11).
            let val = gather_and_zero(seg, &idx);
            (SparseVec { idx, val }, sel)
        };
        let results: Vec<(SparseVec, SelectScratch)> =
            if grad.len() >= PAR_THRESHOLD && jobs.len() > 1 {
                jobs.into_par_iter().map(run).collect()
            } else {
                jobs.into_iter().map(run).collect()
            };
        let mut chunks = Vec::with_capacity(results.len());
        for (sv, sel) in results {
            chunks.push(sv);
            let (a, b, c) = sel.into_buffers();
            self.scratch.release(a);
            self.scratch.release(b);
            self.scratch.release(c);
        }
        UpPayload::Sparse(SparseUpdate { chunks })
    }

    fn aux_floats(&self) -> usize {
        self.residual.len()
    }

    fn label(&self) -> &'static str {
        "gradient-dropping"
    }

    fn set_select_strategy(&mut self, select: SelectStrategy) {
        self.select = select;
    }

    fn set_kernel(&mut self, kernel: Kernel) {
        self.kernel = kernel;
    }
}

// ---------------------------------------------------------------------------
// DGC (DGC-async)
// ---------------------------------------------------------------------------

/// DGC's local state: velocity `u` with momentum correction, residual `r`,
/// momentum factor masking, and gradient clipping.
///
/// Per iteration (Lin et al. 2017, adapted to the async MDT setting):
/// 1. clip `∇` to `clip_norm` (if enabled);
/// 2. `u ← m·u + η∇` (momentum correction: momentum runs *before* the
///    residual, so the discounting factor survives sparsification);
/// 3. `r ← r + u` (residual accumulation);
/// 4. send per-layer Top-k of `r`;
/// 5. factor masking: zero the sent coordinates in *both* `r` and `u`.
#[derive(Debug)]
pub struct DgcCompressor {
    velocity: Vec<f32>,
    residual: Vec<f32>,
    momentum: f32,
    clip_norm: f32,
    select: SelectStrategy,
    kernel: Kernel,
    scratch: BufferPool<u32>,
}

impl DgcCompressor {
    /// Creates the compressor for `dim` parameters.
    pub fn new(dim: usize, momentum: f32, clip_norm: f32) -> Self {
        DgcCompressor {
            velocity: vec![0.0; dim],
            residual: vec![0.0; dim],
            momentum,
            clip_norm,
            select: SelectStrategy::default(),
            kernel: Kernel::runtime(),
            scratch: BufferPool::new(64),
        }
    }

    /// The velocity buffer, for tests.
    pub fn velocity(&self) -> &[f32] {
        &self.velocity
    }

    /// The residual buffer, for tests.
    pub fn residual(&self) -> &[f32] {
        &self.residual
    }
}

impl Compressor for DgcCompressor {
    fn compress(&mut self, grad: &[f32], part: &Partition, ctx: StepCtx) -> UpPayload {
        assert_eq!(grad.len(), self.velocity.len(), "gradient size mismatch");
        // Gradient clipping on the global norm.
        let mut scale = ctx.lr;
        if self.clip_norm > 0.0 {
            let norm = l2_norm_slice(grad) as f32;
            if norm > self.clip_norm {
                scale *= self.clip_norm / norm;
            }
        }
        for ((u, r), &g) in self.velocity.iter_mut().zip(self.residual.iter_mut()).zip(grad.iter())
        {
            *u = self.momentum * *u + scale * g;
            *r += *u;
        }
        let select = self.select;
        let ratio = ctx.ratio;
        let segments = part.segments();
        let r_segs = split_segments(segments, &mut self.residual);
        let u_segs = split_segments(segments, &mut self.velocity);
        let mut jobs: Vec<(&mut [f32], &mut [f32], SelectScratch)> =
            Vec::with_capacity(segments.len());
        for (r_seg, u_seg) in r_segs.into_iter().zip(u_segs) {
            let sel = SelectScratch::from_buffers(
                self.scratch.acquire(),
                self.scratch.acquire(),
                self.scratch.acquire(),
            )
            .with_kernel(self.kernel);
            jobs.push((r_seg, u_seg, sel));
        }
        let run = |(r_seg, u_seg, mut sel): (&mut [f32], &mut [f32], SelectScratch)| {
            let k = k_for_ratio(r_seg.len(), ratio);
            let idx = topk_indices_with(select, r_seg, k, &mut sel);
            let val = gather_and_zero(r_seg, &idx);
            // Momentum factor masking.
            zero_at(u_seg, &idx);
            (SparseVec { idx, val }, sel)
        };
        let results: Vec<(SparseVec, SelectScratch)> =
            if grad.len() >= PAR_THRESHOLD && jobs.len() > 1 {
                jobs.into_par_iter().map(run).collect()
            } else {
                jobs.into_iter().map(run).collect()
            };
        let mut chunks = Vec::with_capacity(results.len());
        for (sv, sel) in results {
            chunks.push(sv);
            let (a, b, c) = sel.into_buffers();
            self.scratch.release(a);
            self.scratch.release(b);
            self.scratch.release(c);
        }
        UpPayload::Sparse(SparseUpdate { chunks })
    }

    fn aux_floats(&self) -> usize {
        self.velocity.len() + self.residual.len()
    }

    fn label(&self) -> &'static str {
        "dgc"
    }

    fn set_select_strategy(&mut self, select: SelectStrategy) {
        self.select = select;
    }

    fn set_kernel(&mut self, kernel: Kernel) {
        self.kernel = kernel;
    }
}

// ---------------------------------------------------------------------------
// SAMomentum (DGS, paper Alg. 3 / Eq. 14-16)
// ---------------------------------------------------------------------------

/// The paper's sparsification-aware momentum.
///
/// Per iteration: `u ← m·u + η∇`; per layer select Top-k of `|u|`; send the
/// selected *velocity values*; then magnify the unsent coordinates by `1/m`
/// (`u ← u + (1/m − 1)·u ⊙ ¬Mask`). The sent coordinates stay in `u`
/// untouched. No residual buffer exists: the `1/m` rescaling makes each
/// coordinate's trajectory between sends telescope into exactly one
/// momentum decay (Eq. 16), which is what makes a sparse interval
/// equivalent to a per-parameter enlarged batch (Eq. 17).
#[derive(Debug)]
pub struct SaMomentumCompressor {
    velocity: Vec<f32>,
    momentum: f32,
    select: SelectStrategy,
    kernel: Kernel,
    scratch: BufferPool<u32>,
}

impl SaMomentumCompressor {
    /// Creates the compressor for `dim` parameters.
    pub fn new(dim: usize, momentum: f32) -> Self {
        assert!(
            momentum > 0.0 && momentum < 1.0,
            "SAMomentum needs 0 < m < 1 (the 1/m rescale), got {momentum}"
        );
        SaMomentumCompressor {
            velocity: vec![0.0; dim],
            momentum,
            select: SelectStrategy::default(),
            kernel: Kernel::runtime(),
            scratch: BufferPool::new(64),
        }
    }

    /// The velocity buffer (`u_k` in the paper), for tests.
    pub fn velocity(&self) -> &[f32] {
        &self.velocity
    }
}

impl Compressor for SaMomentumCompressor {
    fn compress(&mut self, grad: &[f32], part: &Partition, ctx: StepCtx) -> UpPayload {
        assert_eq!(grad.len(), self.velocity.len(), "gradient size mismatch");
        for (u, &g) in self.velocity.iter_mut().zip(grad.iter()) {
            *u = self.momentum * *u + ctx.lr * g;
        }
        let inv_m = 1.0 / self.momentum;
        let select = self.select;
        let ratio = ctx.ratio;
        let segments = part.segments();
        let mut jobs: Vec<(&mut [f32], SelectScratch)> = Vec::with_capacity(segments.len());
        for seg in split_segments(segments, &mut self.velocity) {
            let sel = SelectScratch::from_buffers(
                self.scratch.acquire(),
                self.scratch.acquire(),
                self.scratch.acquire(),
            )
            .with_kernel(self.kernel);
            jobs.push((seg, sel));
        }
        let run = |(seg, mut sel): (&mut [f32], SelectScratch)| {
            let k = k_for_ratio(seg.len(), ratio);
            let idx = topk_indices_with(select, seg, k, &mut sel);
            let val = gather(seg, &idx);
            // Alg. 3 line 11: magnify the *unsent* coordinates by 1/m —
            // scale the whole segment in one streaming pass, then write the
            // already-gathered sent values back bitwise.
            scale_all_restore(seg, &idx, &val, inv_m);
            (SparseVec { idx, val }, sel)
        };
        let results: Vec<(SparseVec, SelectScratch)> =
            if grad.len() >= PAR_THRESHOLD && jobs.len() > 1 {
                jobs.into_par_iter().map(run).collect()
            } else {
                jobs.into_iter().map(run).collect()
            };
        let mut chunks = Vec::with_capacity(results.len());
        for (sv, sel) in results {
            chunks.push(sv);
            let (a, b, c) = sel.into_buffers();
            self.scratch.release(a);
            self.scratch.release(b);
            self.scratch.release(c);
        }
        UpPayload::Sparse(SparseUpdate { chunks })
    }

    fn aux_floats(&self) -> usize {
        self.velocity.len()
    }

    fn label(&self) -> &'static str {
        "samomentum"
    }

    fn set_select_strategy(&mut self, select: SelectStrategy) {
        self.select = select;
    }

    fn set_kernel(&mut self, kernel: Kernel) {
        self.kernel = kernel;
    }
}

// ---------------------------------------------------------------------------
// Unbiased random dropping (extension; Wangni et al. 2018, paper §6)
// ---------------------------------------------------------------------------

/// Probability-proportional-to-magnitude sparsification with `1/p`
/// rescaling: an *unbiased* estimator of `η∇`, so no residual or momentum
/// bookkeeping is needed at all. Implements the "randomly coordinates
/// dropping" combination the paper suggests as future work.
#[derive(Debug)]
pub struct RandomDropCompressor {
    seed: u64,
    step: u64,
}

impl RandomDropCompressor {
    /// Creates the compressor with a base seed for the per-step draws.
    pub fn new(seed: u64) -> Self {
        RandomDropCompressor { seed, step: 0 }
    }
}

impl Compressor for RandomDropCompressor {
    fn compress(&mut self, grad: &[f32], part: &Partition, ctx: StepCtx) -> UpPayload {
        let scaled: Vec<f32> = grad.iter().map(|&g| ctx.lr * g).collect();
        let update = random_unbiased_update(
            &scaled,
            part,
            ctx.ratio,
            self.seed.wrapping_add(self.step.wrapping_mul(0x9E37_79B9)),
        );
        self.step += 1;
        UpPayload::Sparse(update)
    }

    fn aux_floats(&self) -> usize {
        0
    }

    fn label(&self) -> &'static str {
        "random-drop"
    }
}

/// Builds the compressor for a method (see [`crate::method::Method`]).
pub fn compressor_for(
    method: crate::method::Method,
    dim: usize,
    momentum: f32,
    clip_norm: f32,
) -> Box<dyn Compressor> {
    use crate::method::Method;
    match method {
        Method::Msgd => panic!("MSGD trains single-node; it has no uplink compressor"),
        Method::Asgd => Box::new(DenseCompressor),
        Method::GdAsync => Box::new(GradientDroppingCompressor::new(dim)),
        Method::DgcAsync => Box::new(DgcCompressor::new(dim, momentum, clip_norm)),
        Method::Dgs => Box::new(SaMomentumCompressor::new(dim, momentum)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(lr: f32, ratio: f64) -> StepCtx {
        StepCtx { lr, ratio }
    }

    fn single(n: usize) -> Partition {
        Partition::single(n)
    }

    #[test]
    fn dense_scales_by_lr() {
        let mut c = DenseCompressor;
        let up = c.compress(&[1.0, -2.0], &single(2), ctx(0.5, 1.0));
        match up {
            UpPayload::Dense(v) => assert_eq!(v, vec![0.5, -1.0]),
            _ => panic!("expected dense"),
        }
        assert_eq!(c.aux_floats(), 0);
    }

    #[test]
    fn gd_residual_conservation() {
        // Invariant 6: residual + sent ≡ total accumulated η∇ at all times.
        let mut c = GradientDroppingCompressor::new(8);
        let part = single(8);
        let mut total = [0.0f64; 8];
        let mut sent = [0.0f64; 8];
        for step in 0..20 {
            let grad: Vec<f32> = (0..8).map(|i| ((i + step) as f32 * 0.37).sin()).collect();
            for (t, &g) in total.iter_mut().zip(grad.iter()) {
                *t += 0.1 * g as f64;
            }
            let up = c.compress(&grad, &part, ctx(0.1, 0.25));
            if let UpPayload::Sparse(s) = up {
                for (&i, &v) in s.chunks[0].idx.iter().zip(s.chunks[0].val.iter()) {
                    sent[i as usize] += v as f64;
                }
            }
            for i in 0..8 {
                let held = c.residual()[i] as f64;
                assert!(
                    (total[i] - sent[i] - held).abs() < 1e-4,
                    "conservation broken at step {step} coord {i}"
                );
            }
        }
    }

    #[test]
    fn gd_sends_topk_of_residual() {
        let mut c = GradientDroppingCompressor::new(4);
        // First step: grad makes residual [0.1, 0.4, -0.2, 0.05]; k=1 sends idx 1.
        let up = c.compress(&[1.0, 4.0, -2.0, 0.5], &single(4), ctx(0.1, 0.25));
        if let UpPayload::Sparse(s) = up {
            assert_eq!(s.chunks[0].idx, vec![1]);
            assert!((s.chunks[0].val[0] - 0.4).abs() < 1e-6);
        } else {
            panic!("expected sparse");
        }
        // Residual keeps the unsent mass; idx 1 zeroed.
        assert!((c.residual()[0] - 0.1).abs() < 1e-6);
        assert_eq!(c.residual()[1], 0.0);
    }

    #[test]
    fn dgc_factor_masking_zeroes_velocity() {
        let mut c = DgcCompressor::new(4, 0.9, 0.0);
        let up = c.compress(&[1.0, 4.0, -2.0, 0.5], &single(4), ctx(0.1, 0.25));
        let idx = match up {
            UpPayload::Sparse(s) => s.chunks[0].idx.clone(),
            _ => panic!(),
        };
        assert_eq!(idx, vec![1]);
        assert_eq!(c.velocity()[1], 0.0, "sent coordinate masked in u");
        assert_eq!(c.residual()[1], 0.0, "sent coordinate cleared in r");
        assert!(c.velocity()[0] != 0.0, "unsent velocity kept");
    }

    #[test]
    fn dgc_clipping_bounds_update() {
        // Ratio 1.0 sends every coordinate (and factor masking then zeroes
        // the buffers), so inspect the transmitted values.
        let sent_first = |clip: f32| -> f32 {
            let mut c = DgcCompressor::new(3, 0.5, clip);
            let grad = [30.0f32, 40.0, 0.0]; // norm 50
            match c.compress(&grad, &single(3), ctx(1.0, 1.0)) {
                UpPayload::Sparse(s) => s.to_dense(&single(3))[0],
                _ => panic!(),
            }
        };
        // Clipped update = grad/50 (norm 1); unclipped = grad.
        assert!((sent_first(1.0) - 0.6).abs() < 1e-5);
        assert!((sent_first(0.0) - 30.0).abs() < 1e-4);
        // Factor masking zeroed everything at ratio 1.0.
        let mut c = DgcCompressor::new(3, 0.5, 0.0);
        c.compress(&[30.0, 40.0, 0.0], &single(3), ctx(1.0, 1.0));
        assert!(c.velocity().iter().all(|&u| u == 0.0));
        assert!(c.residual().iter().all(|&r| r == 0.0));
    }

    #[test]
    fn samomentum_t1_equals_dense_momentum() {
        // With ratio 1.0 every coordinate is sent every step: SAMomentum
        // must coincide with plain momentum (Eq. 16 at T = 1).
        let mut c = SaMomentumCompressor::new(3, 0.7);
        let part = single(3);
        let mut u_ref = [0.0f32; 3];
        for step in 0..10 {
            let grad: Vec<f32> = (0..3).map(|i| ((i * 7 + step) as f32 * 0.3).cos()).collect();
            for (u, &g) in u_ref.iter_mut().zip(grad.iter()) {
                *u = 0.7 * *u + 0.1 * g;
            }
            let up = c.compress(&grad, &part, ctx(0.1, 1.0));
            let dense = match up {
                UpPayload::Sparse(s) => s.to_dense(&part),
                _ => panic!(),
            };
            for i in 0..3 {
                assert!(
                    (dense[i] - u_ref[i]).abs() < 1e-5,
                    "step {step} coord {i}: {} vs {}",
                    dense[i],
                    u_ref[i]
                );
            }
        }
    }

    #[test]
    fn samomentum_telescoping_eq16() {
        // Invariant 3: a coordinate unsent for T steps accumulates
        // u_{c+T} = m·u_c + η·Σ∇ exactly (Eq. 16).
        //
        // Construct a 2-coordinate problem where coordinate 0 is huge (always
        // sent, k=1) and coordinate 1 is tiny (never sent) for T steps.
        let m = 0.5f32;
        let lr = 0.1f32;
        let mut c = SaMomentumCompressor::new(2, m);
        let part = single(2);
        // Prime step: both coords get gradient; coord 0 dominates.
        c.compress(&[100.0, 0.2], &part, ctx(lr, 0.5));
        let u1_start = c.velocity()[1];
        let grads = [0.3f32, -0.1, 0.25, 0.2];
        let mut grad_sum = 0.0f32;
        for &g in &grads {
            c.compress(&[100.0, g], &part, ctx(lr, 0.5));
            grad_sum += g;
        }
        // After T=4 unsent steps, the *velocity as seen at the next send*
        // (i.e. m·u_current/1 — note u holds the 1/m-magnified value) obeys
        // Eq. 16: m·(u_start/m) + η·Σ∇ … easiest check: the value that WOULD
        // be sent next step with zero gradient is m·u_stored + 0, and the
        // telescoped prediction is m·u_start_sent + η·Σ∇ where
        // u_start_sent = u1_start (value right after the priming send,
        // already magnified by 1/m at that step… see below).
        //
        // Direct check: simulate the recurrence of Eq. 15 manually.
        let mut u_manual = u1_start;
        for &g in &grads {
            u_manual = m * u_manual + lr * g; // Eq. 14a pre-rescale
            u_manual *= 1.0 / m; // coordinate stayed below threshold
        }
        assert!(
            (c.velocity()[1] - u_manual).abs() < 1e-5,
            "stored velocity {} vs manual recurrence {}",
            c.velocity()[1],
            u_manual
        );
        // And the telescoped closed form: at the next send the transmitted
        // value is m·u_stored + η∇; with ∇ = 0 that's m·u_stored, which must
        // equal m·(u1_start/m·… ) — verify via the closed form of Eq. 16:
        // next_sent = m·u1_start/m^0 …; algebraically:
        // m·u_stored = m·u1_start·(1/m)·… Collapse: m·u_stored should equal
        // u1_start + η·Σ∇ · (1/m)^0 scaled… Simplest exact claim:
        let next_sent = m * c.velocity()[1];
        let telescoped = u1_start + lr * grad_sum / m * 1.0; // see note
                                                             // Derivation: u_{i+1} = (m·u_i + η g_i)/m = u_i + (η/m) g_i, so
                                                             // u_stored = u1_start + (η/m)·Σ∇ and m·u_stored = m·u1_start + η·Σ∇.
        assert!(
            (c.velocity()[1] - (u1_start + lr / m * grad_sum)).abs() < 1e-5,
            "closed form violated"
        );
        assert!(
            (next_sent - (m * u1_start + lr * grad_sum)).abs() < 1e-5,
            "Eq. 16: next send {} vs m·u_c + ηΣ∇ {}",
            next_sent,
            m * u1_start + lr * grad_sum
        );
        let _ = telescoped;
    }

    #[test]
    fn samomentum_no_residual_buffer() {
        let c = SaMomentumCompressor::new(100, 0.7);
        let gd = GradientDroppingCompressor::new(100);
        let dgc = DgcCompressor::new(100, 0.7, 0.0);
        // DGS stores one model-sized buffer, GD one, DGC two — the §5.6.2
        // worker-memory claim.
        assert_eq!(c.aux_floats(), 100);
        assert_eq!(gd.aux_floats(), 100);
        assert_eq!(dgc.aux_floats(), 200);
    }

    #[test]
    fn samomentum_sent_coordinate_keeps_velocity() {
        let mut c = SaMomentumCompressor::new(2, 0.5);
        let up = c.compress(&[10.0, 0.1], &single(2), ctx(1.0, 0.5));
        let sent = match up {
            UpPayload::Sparse(s) => s.chunks[0].clone(),
            _ => panic!(),
        };
        assert_eq!(sent.idx, vec![0]);
        // Sent coordinate: velocity unchanged (not zeroed, not rescaled).
        assert!((c.velocity()[0] - 10.0).abs() < 1e-6);
        // Unsent coordinate: magnified by 1/m = 2.
        assert!((c.velocity()[1] - 0.2).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "0 < m < 1")]
    fn samomentum_rejects_zero_momentum() {
        SaMomentumCompressor::new(4, 0.0);
    }

    #[test]
    fn factory_builds_each_method() {
        use crate::method::Method;
        for m in [Method::Asgd, Method::GdAsync, Method::DgcAsync, Method::Dgs] {
            let c = compressor_for(m, 10, 0.7, 1.0);
            assert!(!c.label().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "single-node")]
    fn factory_rejects_msgd() {
        compressor_for(crate::method::Method::Msgd, 10, 0.7, 0.0);
    }

    #[test]
    fn random_drop_is_stateless_and_sparse() {
        let mut c = RandomDropCompressor::new(7);
        assert_eq!(c.aux_floats(), 0);
        let grad: Vec<f32> = (0..200).map(|i| ((i * 13) % 17) as f32 - 8.0).collect();
        let up = c.compress(&grad, &single(200), ctx(0.1, 0.1));
        if let UpPayload::Sparse(s) = up {
            assert!(s.nnz() > 0);
            assert!(s.nnz() < 100, "should be sparse, got {}", s.nnz());
        } else {
            panic!("expected sparse");
        }
        // Different steps draw different coordinate sets.
        let a = c.compress(&grad, &single(200), ctx(0.1, 0.1));
        let b = c.compress(&grad, &single(200), ctx(0.1, 0.1));
        if let (UpPayload::Sparse(a), UpPayload::Sparse(b)) = (a, b) {
            assert_ne!(a.chunks[0].idx, b.chunks[0].idx);
        }
    }

    #[test]
    fn per_layer_topk_respects_partition() {
        // Two layers; each must contribute its own top-1 even if one layer
        // dominates globally.
        let part = Partition::from_layer_sizes([("a", 3), ("b", 3)]);
        let mut c = SaMomentumCompressor::new(6, 0.7);
        let grad = [100.0f32, 90.0, 80.0, 0.3, 0.2, 0.1];
        let up = c.compress(&grad, &part, ctx(1.0, 0.01));
        if let UpPayload::Sparse(s) = up {
            assert_eq!(s.chunks.len(), 2);
            assert_eq!(s.chunks[0].idx, vec![0]); // layer a top-1
            assert_eq!(s.chunks[1].idx, vec![0]); // layer b top-1 (local idx)
        } else {
            panic!();
        }
    }
}
