//! A training worker: model + data stream + compressor.
//!
//! `TrainWorker` implements one iteration of the paper's worker loop
//! (Alg. 1 / Alg. 3): sample a minibatch, run forward/backward, hand the
//! gradient to the method's [`Compressor`](crate::compress::Compressor),
//! and apply whatever the server sends back. The same struct drives both
//! the real-thread engine and the DES.

use crate::compress::{compressor_for, Compressor, StepCtx};
use crate::config::TrainConfig;
use crate::method::Method;
use crate::protocol::{DownMsg, UpMsg};
use dgs_nn::data::Dataset;
use dgs_nn::loader::BatchLoader;
use dgs_nn::model::Network;
use dgs_psim::StragglerModel;
use dgs_sparsify::{Kernel, SelectStrategy, ShardSpan, TernaryUpdate};
use dgs_tensor::rng::derive_seed;
use std::sync::Arc;

/// One asynchronous training worker.
pub struct TrainWorker {
    worker_id: usize,
    net: Network,
    loader: BatchLoader,
    compressor: Box<dyn Compressor>,
    cfg: TrainConfig,
    dataset_len: usize,
    /// Local iteration counter (the paper's worker-side `t`).
    iter: usize,
    /// Modelled compute seconds per iteration, for the DES.
    compute_secs: f64,
    /// Optional worker-lag model applied to the modelled compute time.
    stragglers: StragglerModel,
}

impl TrainWorker {
    /// Creates worker `worker_id`. All workers must be constructed with the
    /// same `net` initialisation (same arch seed) so they share `θ_0`; the
    /// data stream is seeded per worker.
    pub fn new(
        worker_id: usize,
        net: Network,
        dataset: Arc<dyn Dataset>,
        cfg: TrainConfig,
        worker_gflops: f64,
    ) -> Self {
        assert_ne!(cfg.method, Method::Msgd, "MSGD uses the single-node trainer");
        let dataset_len = dataset.len();
        let loader = BatchLoader::new(
            dataset,
            cfg.batch_per_worker,
            derive_seed(cfg.seed, 1000 + worker_id as u64),
        );
        let dim = net.num_params();
        let compressor = compressor_for(cfg.method, dim, cfg.momentum, cfg.clip_norm);
        let flops = net.flops_per_sample() as f64 * cfg.batch_per_worker as f64;
        let compute_secs = flops / (worker_gflops * 1e9);
        TrainWorker {
            worker_id,
            net,
            loader,
            compressor,
            cfg,
            dataset_len,
            iter: 0,
            compute_secs,
            stragglers: StragglerModel::none(),
        }
    }

    /// Installs a worker-lag model; the DES multiplies the modelled compute
    /// time by `stragglers.multiplier(worker_id, iter)` each iteration.
    pub fn set_stragglers(&mut self, stragglers: StragglerModel) {
        self.stragglers = stragglers;
    }

    /// Local iterations completed.
    pub fn iterations(&self) -> usize {
        self.iter
    }

    /// Modelled compute time per iteration (seconds) for the DES,
    /// including the straggler multiplier for the *next* iteration.
    pub fn compute_secs(&self) -> f64 {
        self.compute_secs * self.stragglers.multiplier(self.worker_id, self.iter as u64)
    }

    /// The worker's current local model parameters.
    pub fn model_params(&self) -> &[f32] {
        self.net.params().data()
    }

    /// Worker-side auxiliary memory in bytes (compressor state).
    pub fn aux_bytes(&self) -> usize {
        self.compressor.aux_floats() * std::mem::size_of::<f32>()
    }

    /// Selects the uplink Top-k engine (see
    /// [`Compressor::set_select_strategy`]). Both engines are
    /// bitwise-identical, so this never changes a trajectory.
    pub fn set_select_strategy(&mut self, select: SelectStrategy) {
        self.compressor.set_select_strategy(select);
    }

    /// Selects the compute backend for the uplink selection kernels *and*
    /// the training network's GEMM/conv/pool tier (see
    /// [`Compressor::set_kernel`] and `Network::set_kernel`). Backends are
    /// bitwise-identical, so this never changes a trajectory.
    pub fn set_kernel(&mut self, kernel: Kernel) {
        self.compressor.set_kernel(kernel);
        self.net.set_kernel(kernel);
    }

    /// Runs one local iteration: minibatch gradient + compression.
    pub fn local_step(&mut self) -> UpMsg {
        let (x, labels) = self.loader.next_batch();
        let (loss, _) = self.net.train_step(x, &labels);
        if self.cfg.weight_decay > 0.0 {
            let wd = self.cfg.weight_decay;
            let (data, grad) = self.net.params_mut().data_and_grad_mut();
            for (g, &p) in grad.iter_mut().zip(data.iter()) {
                *g += wd * p;
            }
        }
        let epoch = self.cfg.epoch_of_iter(self.iter, self.dataset_len);
        let lr = self.cfg.lr.lr_at(epoch);
        let ratio = if self.cfg.method == Method::DgcAsync {
            self.cfg.warmup().ratio_at(epoch)
        } else {
            self.cfg.sparsity_ratio
        };
        self.iter += 1;
        let ctx = StepCtx { lr, ratio };
        let partition = self.net.params().partition().clone();
        let mut payload = self.compressor.compress(self.net.params().grad(), &partition, ctx);
        // Optional extension: ternary-quantize the sparse uplink (§6).
        if self.cfg.quantize_uplink {
            if let crate::protocol::UpPayload::Sparse(s) = &payload {
                let qseed =
                    derive_seed(self.cfg.seed, (self.worker_id as u64) << 32 | self.iter as u64);
                payload =
                    crate::protocol::UpPayload::TernarySparse(TernaryUpdate::quantize(s, qseed));
            }
        }
        UpMsg { payload, train_loss: loss }
    }

    /// Applies one *span server's* reply to this worker's slice of the
    /// local model — the per-span counterpart of
    /// [`TrainWorker::apply_reply`] for multi-process cluster training,
    /// where a recovering span answers with its slice alone (a dense
    /// span model on resync, or a span-local diff) while the other spans
    /// proceed normally. A dense reply must be exactly `span.len` long;
    /// a sparse reply's chunks are interpreted against the span's
    /// sub-partition, exactly as `dgs_core::shard` slices them.
    pub fn apply_span_reply(&mut self, span: &ShardSpan, reply: DownMsg) {
        let sub = self.net.params().partition().subpartition(span);
        let data = &mut self.net.params_mut().data_mut()[span.range()];
        match reply {
            DownMsg::DenseModel(model) => {
                assert_eq!(model.len(), span.len, "span reply size");
                data.copy_from_slice(&model);
            }
            DownMsg::SparseDiff(diff) => diff.apply_add(data, &sub, 1.0),
        }
    }

    /// Applies a server reply to the local model.
    pub fn apply_reply(&mut self, reply: DownMsg) {
        match reply {
            DownMsg::DenseModel(model) => {
                self.net.params_mut().load_data(&model);
            }
            DownMsg::SparseDiff(diff) => {
                let partition = self.net.params().partition().clone();
                diff.apply_add(self.net.params_mut().data_mut(), &partition, 1.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::UpPayload;
    use dgs_nn::data::GaussianBlobs;
    use dgs_nn::models::mlp;

    fn cfg(method: Method) -> TrainConfig {
        let mut c = TrainConfig::paper_default(method, 2, 2);
        c.batch_per_worker = 8;
        c.sparsity_ratio = 0.1;
        c
    }

    fn worker(method: Method) -> TrainWorker {
        let ds: Arc<dyn Dataset> = Arc::new(GaussianBlobs::new(64, 6, 3, 0.3, 5));
        let net = mlp(6, &[16], 3, 7);
        TrainWorker::new(0, net, ds, cfg(method), 10.0)
    }

    #[test]
    fn dgs_step_produces_sparse_update() {
        let mut w = worker(Method::Dgs);
        let up = w.local_step();
        assert!(up.train_loss > 0.0);
        match up.payload {
            UpPayload::Sparse(s) => {
                assert!(s.nnz() > 0);
                assert!(s.nnz() < w.net.num_params() / 2, "should be sparse");
            }
            _ => panic!("DGS must send sparse updates"),
        }
        assert_eq!(w.iterations(), 1);
    }

    #[test]
    fn asgd_step_produces_dense_update() {
        let mut w = worker(Method::Asgd);
        let up = w.local_step();
        match up.payload {
            UpPayload::Dense(v) => assert_eq!(v.len(), w.net.num_params()),
            _ => panic!("ASGD must send dense updates"),
        }
    }

    #[test]
    fn apply_dense_model_replaces_params() {
        let mut w = worker(Method::Asgd);
        let n = w.net.num_params();
        w.apply_reply(DownMsg::DenseModel(std::sync::Arc::new(vec![0.25; n])));
        assert!(w.model_params().iter().all(|&p| p == 0.25));
    }

    #[test]
    fn apply_sparse_diff_adds() {
        let mut w = worker(Method::Dgs);
        let before = w.model_params().to_vec();
        let part = w.net.params().partition().clone();
        let mut diff = vec![0.0f32; before.len()];
        diff[0] = 1.5;
        let sparse = dgs_sparsify::SparseUpdate::from_nonzero(&diff, &part);
        w.apply_reply(DownMsg::SparseDiff(sparse));
        assert!((w.model_params()[0] - (before[0] + 1.5)).abs() < 1e-6);
        assert_eq!(w.model_params()[1], before[1]);
    }

    #[test]
    fn apply_span_reply_touches_only_the_span() {
        let mut w = worker(Method::Dgs);
        let part = w.net.params().partition().clone();
        let spans = part.shard_spans(2);
        assert!(spans.len() >= 2, "mlp partition should shard");
        let before = w.model_params().to_vec();
        // Dense span reply replaces exactly the span's slice.
        let span1 = spans[1];
        w.apply_span_reply(
            &span1,
            DownMsg::DenseModel(std::sync::Arc::new(vec![0.125; span1.len])),
        );
        for (i, (&a, &b)) in w.model_params().iter().zip(&before).enumerate() {
            if span1.range().contains(&i) {
                assert_eq!(a, 0.125, "coord {i} inside the span");
            } else {
                assert_eq!(a, b, "coord {i} outside the span");
            }
        }
        // Sparse span reply adds through the span's sub-partition.
        let span0 = spans[0];
        let sub = part.subpartition(&span0);
        let mut flat = vec![0.0f32; span0.len];
        flat[0] = 1.5;
        let diff = dgs_sparsify::SparseUpdate::from_nonzero(&flat, &sub);
        w.apply_span_reply(&span0, DownMsg::SparseDiff(diff));
        assert!((w.model_params()[0] - (before[0] + 1.5)).abs() < 1e-6);
        assert_eq!(w.model_params()[1], before[1]);
    }

    #[test]
    fn compute_secs_positive_and_scales() {
        let w_fast = worker(Method::Dgs);
        let ds: Arc<dyn Dataset> = Arc::new(GaussianBlobs::new(64, 6, 3, 0.3, 5));
        let net = mlp(6, &[16], 3, 7);
        let w_slow = TrainWorker::new(0, net, ds, cfg(Method::Dgs), 1.0);
        assert!(w_fast.compute_secs() > 0.0);
        assert!((w_slow.compute_secs() / w_fast.compute_secs() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn aux_bytes_match_method() {
        let dim = worker(Method::Dgs).net.num_params();
        assert_eq!(worker(Method::Dgs).aux_bytes(), 4 * dim);
        assert_eq!(worker(Method::GdAsync).aux_bytes(), 4 * dim);
        assert_eq!(worker(Method::DgcAsync).aux_bytes(), 8 * dim);
        assert_eq!(worker(Method::Asgd).aux_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "single-node")]
    fn msgd_rejected() {
        worker(Method::Msgd);
    }

    #[test]
    fn quantized_uplink_produces_ternary_payload() {
        let ds: Arc<dyn Dataset> = Arc::new(GaussianBlobs::new(64, 6, 3, 0.3, 5));
        let net = mlp(6, &[16], 3, 7);
        let mut c = cfg(Method::Dgs);
        c.quantize_uplink = true;
        let mut w = TrainWorker::new(0, net, ds, c, 10.0);
        let up = w.local_step();
        match up.payload {
            UpPayload::TernarySparse(t) => {
                // Stochastic dropping may thin it out, but something of the
                // Top-k selection survives on a real gradient.
                assert!(t.nnz() > 0, "quantized payload empty");
                assert!(t.wire_bytes() > 0);
            }
            other => panic!("expected ternary payload, got {other:?}"),
        }
    }

    #[test]
    fn quantized_uplink_smaller_than_full_precision() {
        let mk = |quantize: bool| {
            let ds: Arc<dyn Dataset> = Arc::new(GaussianBlobs::new(64, 6, 3, 0.3, 5));
            let net = mlp(6, &[16], 3, 7);
            let mut c = cfg(Method::Dgs);
            c.quantize_uplink = quantize;
            let mut w = TrainWorker::new(0, net, ds, c, 10.0);
            w.local_step().wire_bytes()
        };
        assert!(mk(true) < mk(false), "ternary payload should be smaller");
    }
}
