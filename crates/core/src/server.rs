//! The Model-Difference-Tracking parameter server (paper Alg. 2, Eq. 1-6).
//!
//! The server never stores the global model directly; it keeps
//!
//! * `M_t` — the accumulation of all applied updates (`θ_t = θ_0 + M_t`,
//!   Eq. 2), updated as `M ← M − g` on every received update (Eq. 1);
//! * `v_k` — per worker, the accumulation of everything already *sent* to
//!   worker `k`, so the downlink payload is the difference
//!   `G_{k} = M − v_k` (Eq. 3).
//!
//! Without secondary compression the full difference goes out and
//! `v_k ← v_k + G` lands exactly on `M` (Eq. 3); with secondary compression
//! only the per-layer Top-k of `G` goes out and `v_k` advances by just that
//! part (Eq. 6), leaving the remainder implicitly accumulated server-side.
//!
//! The crucial tracking property: the server updates `v_k` with the *same*
//! elementwise scatter-adds the worker applies to its local model, so
//! `θ_0 + v_k` reproduces the worker's model to within a single f32
//! rounding step — the server always knows what every worker holds, which
//! is what makes the difference meaningful under asynchrony.
//!
//! # Hot path: O(nnz) downlink construction
//!
//! `G = M − v_k` is sparse — it is the sum of the few sparse updates applied
//! since worker `k`'s last pull — so reconstructing it with a dense scan of
//! `M` and `v_k` (O(W·dim) per round across W workers) wastes almost all of
//! its work. The server instead keeps an [`UpdateLog`] of the coordinates
//! each applied update touched, plus a per-worker *dirty set* `pending[k]`
//! (coordinates where `M` and `v_k` still differ as of the worker's cursor
//! — secondary compression holds values back indefinitely, so "touched
//! since the cursor" alone is not a superset of the diff's support).
//! [`MdtServer::make_diff`] then visits only
//! `pending[k] ∪ touched-since-prev[k]` coordinates, computing each value
//! as the same `m[i] − v[i]` subtraction the dense scan performs — which is
//! why the two strategies ([`DiffStrategy`]) produce bitwise-identical
//! payloads. When a straggler's cursor has fallen off the bounded log the
//! server falls back to the dense scan for that one reply (graceful
//! degradation, never a wrong answer) and rebuilds the dirty set in the
//! process. See `DESIGN.md` §"Server hot path".

use crate::method::Method;
use crate::protocol::{DownMsg, UpMsg, UpPayloadView};
use crate::update_log::UpdateLog;
use crate::PAR_THRESHOLD;
use dgs_psim::StalenessStats;
use dgs_sparsify::merge::{
    diff_pairs_at, retain_dirty, scatter_pairs, scatter_track_dirty, send_all_at,
    send_all_dense_with, send_topk_dense, sort_dedup, sort_dedup_pooled, topk_pairs_with,
};
use dgs_sparsify::{
    k_for_ratio, scatter_add, Partition, SelectScratch, SelectStrategy, SparseUpdate, SparseVec,
};
use dgs_tensor::{BufferPool, Kernel};
use rayon::prelude::*;
use std::sync::Arc;

/// Staleness mitigation applied by the server when folding updates into
/// `M` — a gap-aware damping in the spirit of Barkai et al. (cited by the
/// paper as its momentum-ASGD reference): an update whose staleness is `s`
/// is scaled by `1/(1+s)^alpha`, so badly stale gradients move the model
/// less. `alpha = 0` disables it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StalenessDamping {
    /// Damping exponent; 0 disables, 1 is full gap-aware scaling.
    pub alpha: f64,
}

impl StalenessDamping {
    /// No damping (the paper's plain ASGD/DGS behaviour).
    pub fn off() -> Self {
        StalenessDamping { alpha: 0.0 }
    }

    /// The scale applied to an update of staleness `s`.
    pub fn scale(&self, staleness: u64) -> f32 {
        if self.alpha == 0.0 {
            1.0
        } else {
            (1.0 / (1.0 + staleness as f64).powf(self.alpha)) as f32
        }
    }
}

impl Default for StalenessDamping {
    fn default() -> Self {
        StalenessDamping::off()
    }
}

/// Downlink behaviour of the server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Downlink {
    /// Ship the whole dense model every round (vanilla ASGD).
    DenseModel,
    /// Ship the sparse model difference `G = M − v_k` (MDT).
    ModelDifference {
        /// Apply per-layer Top-k to `G` before sending (Alg. 2 lines 5-11).
        secondary_ratio: Option<f64>,
    },
}

impl Downlink {
    /// The downlink the paper pairs with each method.
    pub fn for_method(method: Method, secondary: Option<f64>) -> Self {
        match method {
            Method::Msgd => panic!("MSGD trains single-node; no server involved"),
            Method::Asgd => Downlink::DenseModel,
            _ => Downlink::ModelDifference { secondary_ratio: secondary },
        }
    }
}

/// How `make_diff` reconstructs `G = M − v_k`. Both strategies produce
/// bitwise-identical payloads; they differ only in cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffStrategy {
    /// Reference O(dim) scan of `M` and `v_k` per reply.
    DenseScan,
    /// O(nnz since last pull) merge of the applied-update log with the
    /// worker's dirty set; falls back to [`DiffStrategy::DenseScan`] per
    /// reply when the log no longer covers the worker's cursor.
    LogMerge,
}

/// The parameter server.
pub struct MdtServer {
    theta0: Vec<f32>,
    /// `M_t`: accumulated updates; global model = `θ_0 + M`.
    m: Vec<f32>,
    /// `v_k`: per-worker accumulated deliveries; worker k's model =
    /// `θ_0 + v_k` (exactly, see module docs).
    v: Vec<Vec<f32>>,
    partition: Partition,
    downlink: Downlink,
    /// Server timestamp `t`: number of updates applied.
    t: u64,
    /// `prev(k)`: timestamp of the last update delivered to worker k.
    prev: Vec<u64>,
    staleness: StalenessStats,
    damping: StalenessDamping,
    /// Diff construction strategy (MDT downlink only).
    strategy: DiffStrategy,
    /// Top-k selection engine for secondary compression (both diff
    /// strategies funnel through it; payloads are bitwise independent of
    /// the choice).
    select: SelectStrategy,
    /// Coordinates touched by each applied sparse update, bounded.
    log: UpdateLog,
    /// Per-worker dirty set: sorted global coordinates where `M − v_k` was
    /// nonzero as of the worker's cursor. Invariant after every reply to
    /// `k`: `support(M − v_k) ⊆ pending[k] ∪ touched-since-prev[k]`.
    pending: Vec<Vec<u32>>,
    /// Incrementally maintained `θ_0 + M` for the dense-model downlink —
    /// O(nnz) per update instead of an O(dim) clone per reply. `Arc` so a
    /// reply is a refcount bump; `Arc::make_mut` clones only while a
    /// worker still holds the previous snapshot.
    model_cache: Option<Arc<Vec<f32>>>,
    /// Recycled scratch for candidate index lists.
    scratch: BufferPool<u32>,
    /// Pool holding the zeroed-at-rest bitmap over the coordinate domain,
    /// used to merge candidate runs in O(n) instead of comparison-sorting
    /// them (`dim/8` bytes once warm; nothing for the dense-model
    /// downlink). Returned via `release_unchanged` — the merge restores it
    /// to all-zero, so reuse skips the O(dim/8) re-zero per reply.
    mask_pool: BufferPool<u64>,
    /// Compute backend for the dense merge kernels (diff materialisation,
    /// gather, histogram fill). Payload-invariant: backends are bitwise
    /// identical, so this changes cost only, never the wire bytes.
    kernel: Kernel,
    /// Per-worker: is `pending[k]` a trustworthy dirty-set superset? A
    /// degenerate dense fallback that skips tracking clears this; the log
    /// path requires it and the next tracked scan re-establishes it.
    pending_valid: Vec<bool>,
    /// Per-worker: should the next dense fallback under secondary
    /// compression pay the O(nnz) dirty pass to rebuild `pending[k]`?
    /// Density hysteresis (off above `dim/8` nonzeros, see
    /// [`MdtServer::make_diff_dense`]) keeps the degenerate regime — where
    /// the guard would reject the rebuilt set anyway — at pure dense-scan
    /// cost. Small models (`dim < PAR_THRESHOLD`) always track.
    retrack: Vec<bool>,
    /// May reply construction fan segments out to rayon? The sharded
    /// server turns this off per shard: there the shard is the unit of
    /// parallelism, and a thread holding a shard lock must never reach a
    /// rayon join point (work-stealing could hand it a sibling task that
    /// blocks on the same lock). Payload-invariant — cost only.
    par_segments: bool,
}

impl MdtServer {
    /// Creates a server for `workers` workers from the initial model.
    pub fn new(theta0: Vec<f32>, partition: Partition, workers: usize, downlink: Downlink) -> Self {
        partition.check_covers(&theta0);
        let dim = theta0.len();
        let (v, pending, log, model_cache) = match downlink {
            // Dense-model downlink needs no per-worker tracking.
            Downlink::DenseModel => {
                (Vec::new(), Vec::new(), UpdateLog::new(0), Some(Arc::new(theta0.clone())))
            }
            Downlink::ModelDifference { .. } => (
                vec![vec![0.0f32; dim]; workers],
                vec![Vec::new(); workers],
                // Default budget: one logged index per model coordinate, so
                // the log never outweighs a u32 model replica and a full
                // merge never costs more than the dense scan it replaces.
                UpdateLog::new(dim),
                None,
            ),
        };
        MdtServer {
            theta0,
            m: vec![0.0; dim],
            v,
            partition,
            downlink,
            t: 0,
            prev: vec![0; workers],
            staleness: StalenessStats::new(),
            damping: StalenessDamping::off(),
            strategy: DiffStrategy::LogMerge,
            select: SelectStrategy::default(),
            log,
            pending,
            model_cache,
            // Sized for the steady state: one candidate list plus two radix
            // scratch buffers per segment in flight at once.
            scratch: BufferPool::new(64),
            // One bitmap: the candidate merge runs at most once per reply,
            // under `&mut self`.
            mask_pool: BufferPool::new(1),
            kernel: Kernel::runtime(),
            pending_valid: vec![true; workers],
            retrack: vec![true; workers],
            par_segments: true,
        }
    }

    /// Enables gap-aware staleness damping (see [`StalenessDamping`]).
    pub fn set_damping(&mut self, damping: StalenessDamping) {
        self.damping = damping;
    }

    /// Selects the secondary-compression Top-k engine (default:
    /// [`SelectStrategy::Radix`]). Safe to switch at any time — both
    /// engines produce bitwise-identical payloads, so this changes cost
    /// only, never the wire bytes.
    pub fn set_select_strategy(&mut self, select: SelectStrategy) {
        self.select = select;
    }

    /// The active Top-k selection engine.
    pub fn select_strategy(&self) -> SelectStrategy {
        self.select
    }

    /// Selects the compute backend for the dense merge kernels (default:
    /// [`Kernel::runtime`], which honours `DGS_KERNEL`). Safe to switch at
    /// any time — backends are bitwise identical, so this changes cost
    /// only, never the wire bytes.
    pub fn set_kernel(&mut self, kernel: Kernel) {
        self.kernel = kernel;
    }

    /// The active compute backend.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Selects how `G = M − v_k` is reconstructed (default:
    /// [`DiffStrategy::LogMerge`]). Switching to the log strategy mid-run
    /// invalidates the log up to the current timestamp: dense-scan mode
    /// does not maintain dirty sets, so every worker takes one dense
    /// fallback to rebuild its set before being log-served again.
    pub fn set_diff_strategy(&mut self, strategy: DiffStrategy) {
        if self.strategy == DiffStrategy::DenseScan && strategy == DiffStrategy::LogMerge {
            self.log.forget_through(self.t.saturating_add(1));
            // Dense-scan mode left the dirty sets stale; distrust them
            // until the forced fallback rebuilds each one.
            self.pending_valid.fill(false);
            self.retrack.fill(true);
        }
        self.strategy = strategy;
    }

    /// The active diff strategy.
    pub fn diff_strategy(&self) -> DiffStrategy {
        self.strategy
    }

    /// Enables/disables the per-segment rayon fan-out inside reply
    /// construction (see the `par_segments` field docs). On by default;
    /// [`crate::shard::ShardedMdtServer`] turns it off for its shards.
    pub fn set_par_segments(&mut self, on: bool) {
        self.par_segments = on;
    }

    /// Replaces the update-log budget, counted in total logged indices
    /// (`0` restores the automatic default of one index per coordinate).
    /// Safe at any time: the new log starts empty with everything up to
    /// the current timestamp declared lost, which the intact dirty sets
    /// make sound (workers behind the current timestamp take one dense
    /// fallback).
    pub fn set_log_capacity(&mut self, capacity: usize) {
        let cap = if capacity == 0 { self.dim() } else { capacity };
        let mut log = UpdateLog::new(cap);
        log.forget_through(self.t);
        self.log = log;
    }

    /// Number of parameters.
    pub fn dim(&self) -> usize {
        self.m.len()
    }

    /// The initial model `θ_0`. Cross-process training fingerprints these
    /// bytes in the handshake so a worker built from a different seed or
    /// architecture is rejected before it can corrupt the run.
    pub fn theta0(&self) -> &[f32] {
        &self.theta0
    }

    /// Recovery path for a worker whose reply was lost in transit (the
    /// dgs-net reconnect protocol): returns the full current model and
    /// resets the worker's tracking state so the MDT invariant
    /// `θ_worker = θ_0 + v_k` holds again. Specifically `v_k ← M` (the
    /// worker will load exactly `θ_0 + M`), the dirty set becomes empty
    /// (M − v_k is identically zero), and the worker's cursor advances to
    /// now. Subsequent diffs resume the normal O(nnz) path.
    pub fn resync_worker(&mut self, worker: usize) -> DownMsg {
        DownMsg::DenseModel(self.resync_model(worker))
    }

    /// [`Self::resync_worker`] returning the model directly — the
    /// sharded server concatenates per-shard resyncs, and a typed slice
    /// spares it matching on a reply shape this method fixes anyway.
    pub fn resync_model(&mut self, worker: usize) -> Arc<Vec<f32>> {
        self.prev[worker] = self.t;
        match self.downlink {
            Downlink::DenseModel => match &self.model_cache {
                Some(cache) => Arc::clone(cache),
                // The dense downlink maintains the cache from
                // construction; should it ever be absent, rebuilding
                // θ0 + M is still the correct model.
                None => Arc::new(self.current_model()),
            },
            Downlink::ModelDifference { .. } => {
                self.v[worker].copy_from_slice(&self.m);
                self.scratch.release(std::mem::take(&mut self.pending[worker]));
                self.pending_valid[worker] = true;
                self.retrack[worker] = true;
                Arc::new(self.current_model())
            }
        }
    }

    /// Current server timestamp `t` (updates applied so far).
    pub fn timestamp(&self) -> u64 {
        self.t
    }

    /// The current global model `θ_t = θ_0 + M_t`.
    pub fn current_model(&self) -> Vec<f32> {
        match &self.model_cache {
            // Dense downlink: the incrementally maintained model, so evals
            // see exactly what replies ship.
            Some(cache) => cache.as_ref().clone(),
            None => self.theta0.iter().zip(self.m.iter()).map(|(&a, &b)| a + b).collect(),
        }
    }

    /// The update accumulator `M_t` (for tests).
    pub fn m(&self) -> &[f32] {
        &self.m
    }

    /// Worker `k`'s delivery accumulator `v_k` (for tests). Panics for the
    /// dense-model downlink, which keeps none.
    pub fn v(&self, worker: usize) -> &[f32] {
        &self.v[worker]
    }

    /// Observed staleness statistics.
    pub fn staleness(&self) -> &StalenessStats {
        &self.staleness
    }

    /// Processes one worker update and produces the reply — the body of the
    /// paper's Alg. 2 receive loop.
    pub fn handle_update(&mut self, worker: usize, up: &UpMsg) -> DownMsg {
        let staleness = self.t - self.prev[worker];
        let scale = self.damping.scale(staleness);
        let reply = self.handle_scaled(worker, up.payload.view(), scale);
        self.staleness.record(staleness);
        reply
    }

    /// Scale-explicit core of [`MdtServer::handle_update`]: applies one
    /// already-damped update and builds the reply. Exposed for the sharded
    /// server, whose front door computes the damping scale once from the
    /// *global* clock and then drives every shard with it — a shard's own
    /// clock only counts updates, and since every update visits every shard
    /// (possibly with empty chunks), shard clocks stay equal to the global
    /// clock under sequential replay. Does not record staleness; the caller
    /// owns that statistic.
    pub fn handle_scaled(
        &mut self,
        worker: usize,
        payload: UpPayloadView<'_>,
        scale: f32,
    ) -> DownMsg {
        let since = self.prev[worker];
        let track_log = matches!(self.downlink, Downlink::ModelDifference { .. })
            && self.strategy == DiffStrategy::LogMerge;
        let t_next = self.t + 1;
        // M_{t+1} = M_t − scale·g (Eq. 1; scale = 1 without damping).
        // Updates arrive lr-scaled.
        match payload {
            UpPayloadView::Dense(g) => {
                // Our own workers always send exactly `dim` values; a
                // mis-sized update can only come from a non-conforming
                // peer, and a connection thread must not panic on its
                // behalf. Apply nothing (the clock still ticks, so the
                // peer's sequence stays coherent) — debug builds assert.
                debug_assert_eq!(g.len(), self.m.len(), "dense update size");
                if g.len() == self.m.len() {
                    for (m, &gi) in self.m.iter_mut().zip(g.iter()) {
                        *m -= scale * gi;
                    }
                    if let Some(cache) = &mut self.model_cache {
                        for (c, &gi) in Arc::make_mut(cache).iter_mut().zip(g.iter()) {
                            *c -= scale * gi;
                        }
                    }
                    if track_log {
                        // A dense update touches everything; cursors older
                        // than it cannot be log-served.
                        self.log.mark_dense(t_next);
                    }
                }
            }
            UpPayloadView::Sparse(chunks) => self.apply_sparse(chunks, scale, track_log, t_next),
            UpPayloadView::TernarySparse(chunks) => {
                // Per-chunk dequantization is exactly what
                // `TernaryUpdate::dequantize` does per segment, so shard
                // slices decode bitwise identically to the whole payload.
                let dequant: Vec<SparseVec> = chunks.iter().map(|c| c.dequantize()).collect();
                self.apply_sparse(&dequant, scale, track_log, t_next)
            }
        }
        self.t = t_next;
        self.prev[worker] = self.t;

        match self.downlink {
            // The cache is maintained whenever the downlink is dense;
            // rebuilding from `θ_0 + M` keeps this total if it is ever
            // absent (same fallback as `resync_model`).
            Downlink::DenseModel => match &self.model_cache {
                Some(cache) => DownMsg::DenseModel(Arc::clone(cache)),
                None => DownMsg::DenseModel(Arc::new(self.current_model())),
            },
            Downlink::ModelDifference { secondary_ratio } => {
                DownMsg::SparseDiff(self.make_diff(worker, since, secondary_ratio))
            }
        }
    }

    /// Applies per-segment sparse chunks to `M` (and the dense-model cache
    /// when one is kept) and logs the touched coordinates.
    fn apply_sparse(&mut self, chunks: &[SparseVec], scale: f32, track_log: bool, t_next: u64) {
        // Same containment as the dense arm: a chunk list cut to some
        // other partition is a peer bug, answered with a no-op apply
        // rather than a panicked connection thread.
        debug_assert_eq!(chunks.len(), self.partition.num_segments(), "update/partition mismatch");
        if chunks.len() != self.partition.num_segments() {
            return;
        }
        for (i, chunk) in chunks.iter().enumerate() {
            scatter_add(self.partition.slice_mut(&mut self.m, i), &chunk.idx, &chunk.val, -scale);
        }
        if let Some(cache) = &mut self.model_cache {
            let cache: &mut Vec<f32> = Arc::make_mut(cache);
            for (i, chunk) in chunks.iter().enumerate() {
                scatter_add(self.partition.slice_mut(cache, i), &chunk.idx, &chunk.val, -scale);
            }
        }
        if track_log {
            let mut touched = self.log.begin();
            for (chunk, seg) in chunks.iter().zip(self.partition.segments()) {
                let off = seg.offset as u32;
                touched.extend(chunk.idx.iter().map(|&i| off + i));
            }
            self.log.record(t_next, touched);
        }
    }

    /// Builds `G = M − v_k`, optionally secondary-compressed, and advances
    /// `v_k` by exactly what is sent. `since` is the worker's cursor at the
    /// time its update arrived. Strategy dispatch: the log merge serves any
    /// cursor the log still covers; everything else takes the dense scan.
    fn make_diff(
        &mut self,
        worker: usize,
        since: u64,
        secondary_ratio: Option<f64>,
    ) -> SparseUpdate {
        if self.strategy == DiffStrategy::LogMerge
            && self.pending_valid[worker]
            && self.log.covers(since)
        {
            self.make_diff_log(worker, since, secondary_ratio)
        } else {
            self.make_diff_dense(worker, secondary_ratio)
        }
    }

    /// O(nnz since last pull): visit only `pending[k] ∪ touched(since..t]`.
    /// By the dirty-set invariant that set is a superset of
    /// `support(M − v_k)`, and every emitted value is the same
    /// `m[i] − v[i]` subtraction the dense scan performs, so the payload is
    /// bitwise identical to [`MdtServer::make_diff_dense`]'s.
    fn make_diff_log(
        &mut self,
        worker: usize,
        since: u64,
        secondary_ratio: Option<f64>,
    ) -> SparseUpdate {
        // Degenerate-merge guard: under heavy secondary compression the
        // undelivered dirty set can grow toward `dim`, at which point
        // merging the candidates costs more than the reference scan
        // (O(C) merge + gather traffic vs O(dim) streaming). Both paths
        // emit bitwise-identical payloads, so take the cheaper one — sized
        // from lengths alone, before copying a single candidate.
        if self.pending[worker].len() + self.log.count_since(since) > self.m.len() / 4 {
            return self.make_diff_dense(worker, secondary_ratio);
        }
        let mut cand = self.scratch.acquire();
        cand.extend_from_slice(&self.pending[worker]);
        self.log.collect_since(since, &mut cand);
        // Candidates are a concatenation of sorted runs (dirty set + log
        // entries); past a few thousand entries the domain bitmap merges
        // them ~10× faster than a comparison sort (and ~2× faster than a
        // K-way merge of the runs — the min-of-K head scan is too branchy).
        if cand.len() >= 2048 {
            sort_dedup_pooled(&mut cand, self.m.len(), &mut self.mask_pool);
        } else {
            sort_dedup(&mut cand);
        }

        // Per-segment candidate ranges, then map global → segment-local
        // indices in place (no per-segment allocation).
        let segments = self.partition.segments();
        let mut bounds = Vec::with_capacity(segments.len());
        let mut start = 0usize;
        for seg in segments {
            let end = seg.offset + seg.len;
            let cut = start + cand[start..].partition_point(|&g| (g as usize) < end);
            bounds.push((start, cut));
            start = cut;
        }
        for (seg, &(a, b)) in segments.iter().zip(&bounds) {
            let off = seg.offset as u32;
            for g in &mut cand[a..b] {
                *g -= off;
            }
        }

        let m = &self.m;
        let select = self.select;
        let kernel = self.kernel;
        let mut jobs: Vec<(usize, &mut [f32], &[u32], SelectScratch)> =
            Vec::with_capacity(segments.len());
        let mut rest: &mut [f32] = &mut self.v[worker];
        for (si, seg) in segments.iter().enumerate() {
            let (v_seg, tail) = rest.split_at_mut(seg.len);
            rest = tail;
            let (a, b) = bounds[si];
            let sel = SelectScratch::from_buffers(
                self.scratch.acquire(),
                self.scratch.acquire(),
                self.scratch.acquire(),
            )
            .with_kernel(kernel);
            jobs.push((si, v_seg, &cand[a..b], sel));
        }
        let run = |(si, v_seg, c_seg, mut sel): (usize, &mut [f32], &[u32], SelectScratch)| {
            let seg = &segments[si];
            let m_seg = &m[seg.range()];
            let (sv, mut dirty) = match secondary_ratio {
                // No Top-k: everything goes out — one fused pass.
                None => {
                    let mut dirty = Vec::new();
                    let (idx, val) = send_all_at(m_seg, v_seg, c_seg, &mut dirty);
                    (SparseVec { idx, val }, dirty)
                }
                Some(r) => {
                    let k = k_for_ratio(m_seg.len(), r);
                    let (idx, val) = diff_pairs_at(m_seg, v_seg, c_seg);
                    send_segment(m_seg, v_seg, idx, val, k, true, select, &mut sel)
                }
            };
            let off = seg.offset as u32;
            for g in &mut dirty {
                *g += off;
            }
            (sv, dirty, sel)
        };
        let results: Vec<(SparseVec, Vec<u32>, SelectScratch)> =
            if self.par_segments && cand.len() >= PAR_THRESHOLD && jobs.len() > 1 {
                jobs.into_par_iter().map(run).collect()
            } else {
                jobs.into_iter().map(run).collect()
            };

        let mut chunks = Vec::with_capacity(results.len());
        let mut pending = Vec::new();
        for (sv, dirty, sel) in results {
            pending.extend_from_slice(&dirty);
            chunks.push(sv);
            let (ka, kb, kc) = sel.into_buffers();
            self.scratch.release(ka);
            self.scratch.release(kb);
            self.scratch.release(kc);
        }
        self.scratch.release(std::mem::replace(&mut self.pending[worker], pending));
        self.scratch.release(cand);
        SparseUpdate { chunks }
    }

    /// Reference O(dim) scan — also the fallback that re-establishes the
    /// dirty-set invariant when a straggler's cursor fell off the log.
    ///
    /// Tracking policy under the log strategy: the no-secondary pass always
    /// rebuilds `pending[k]` (the residue check is fused into the scan and
    /// effectively free), but under secondary compression the dirty pass is
    /// a separate O(nnz) walk, so it is skipped while the worker's diff
    /// density sits in the degenerate regime where the merge guard would
    /// reject the rebuilt set anyway (`retrack` hysteresis: tracking resumes
    /// once nnz drops to `dim/8`, below the guard's `dim/4`). Small models
    /// always track — the absolute cost is negligible and it keeps the log
    /// path live for small-dimension tests.
    fn make_diff_dense(&mut self, worker: usize, secondary_ratio: Option<f64>) -> SparseUpdate {
        let log_mode = self.strategy == DiffStrategy::LogMerge;
        let small = self.m.len() < PAR_THRESHOLD;
        let track = log_mode && (secondary_ratio.is_none() || small || self.retrack[worker]);
        let segments = self.partition.segments();
        let m = &self.m;
        let select = self.select;
        let kernel = self.kernel;
        let mut jobs: Vec<(usize, &mut [f32], SelectScratch)> = Vec::with_capacity(segments.len());
        let mut rest: &mut [f32] = &mut self.v[worker];
        for (si, seg) in segments.iter().enumerate() {
            let (v_seg, tail) = rest.split_at_mut(seg.len);
            rest = tail;
            let sel = SelectScratch::from_buffers(
                self.scratch.acquire(),
                self.scratch.acquire(),
                self.scratch.acquire(),
            )
            .with_kernel(kernel);
            jobs.push((si, v_seg, sel));
        }
        let run = |(si, v_seg, mut sel): (usize, &mut [f32], SelectScratch)| {
            let seg = &segments[si];
            let m_seg = &m[seg.range()];
            let (sv, mut dirty, nnz) = match secondary_ratio {
                None => {
                    let mut dirty = Vec::new();
                    let (idx, val) = send_all_dense_with(kernel, m_seg, v_seg, &mut dirty);
                    if !track {
                        dirty.clear();
                    }
                    let nnz = idx.len();
                    (SparseVec { idx, val }, dirty, nnz)
                }
                Some(r) => {
                    // Dense-diff Top-k: selecting on the materialised diff
                    // buffer skips the (index, value) pair vectors that the
                    // candidate-restricted path needs — under secondary
                    // compression the diff here is nearly dense, and pair
                    // materialisation would dominate.
                    let k = k_for_ratio(m_seg.len(), r);
                    let mut dirty = Vec::new();
                    let (idx, val, nnz) =
                        send_topk_dense(m_seg, v_seg, k, track, &mut dirty, select, &mut sel);
                    (SparseVec { idx, val }, dirty, nnz)
                }
            };
            let off = seg.offset as u32;
            for g in &mut dirty {
                *g += off;
            }
            (sv, dirty, nnz, sel)
        };
        let results: Vec<(SparseVec, Vec<u32>, usize, SelectScratch)> =
            if self.par_segments && m.len() >= PAR_THRESHOLD && jobs.len() > 1 {
                jobs.into_par_iter().map(run).collect()
            } else {
                jobs.into_iter().map(run).collect()
            };

        let mut chunks = Vec::with_capacity(results.len());
        let mut nnz_total = 0usize;
        let mut pending = track.then(Vec::new);
        for (sv, dirty, nnz, sel) in results {
            nnz_total += nnz;
            if let Some(p) = &mut pending {
                p.extend_from_slice(&dirty);
            }
            chunks.push(sv);
            let (ka, kb, kc) = sel.into_buffers();
            self.scratch.release(ka);
            self.scratch.release(kb);
            self.scratch.release(kc);
        }
        if let Some(pending) = pending {
            self.scratch.release(std::mem::replace(&mut self.pending[worker], pending));
        }
        if log_mode {
            self.pending_valid[worker] = track;
            if !track {
                // The stale set would only mislead a future merge; return
                // its buffer to the pool.
                self.scratch.release(std::mem::take(&mut self.pending[worker]));
            }
            // Hysteresis: resume paying the dirty pass once the observed
            // density clears the guard threshold with margin.
            self.retrack[worker] = small || nnz_total <= self.m.len() / 8;
        }
        SparseUpdate { chunks }
    }

    /// §5.6.2 memory accounting: bytes of per-worker tracking state
    /// (`Σ_k |v_k|`) plus the accumulator `M`, and the hot-path additions
    /// (update log, dirty sets, dense-model cache).
    pub fn memory_report(&self) -> ServerMemoryReport {
        let f = std::mem::size_of::<f32>();
        let u = std::mem::size_of::<u32>();
        ServerMemoryReport {
            model_bytes: self.m.len() * f,
            tracking_bytes: self.v.iter().map(|v| v.len() * f).sum(),
            log_bytes: self.log.bytes() + self.mask_pool.retained_bytes(),
            pending_bytes: self.pending.iter().map(|p| p.capacity() * u).sum(),
            cache_bytes: self.model_cache.as_ref().map_or(0, |c| c.len() * f),
            workers: self.prev.len(),
        }
    }
}

/// Applies secondary Top-k to the nonzero diff pairs of one segment,
/// advances `v_seg` by exactly what is sent, and (when `track_dirty`)
/// recomputes the segment's dirty set: held-back pairs keep their nonzero
/// difference and stay dirty without another memory pass, while sent
/// coordinates are rescanned because f32 rounding can leave a one-ulp
/// remainder.
///
/// Shared by both [`DiffStrategy`] paths: this single selection/advance
/// code path is what makes their payloads bitwise identical. The
/// [`SelectStrategy`] engines are bitwise-identical too, so `select`
/// changes cost only (`sel` is radix scratch).
fn send_segment(
    m_seg: &[f32],
    v_seg: &mut [f32],
    all_idx: Vec<u32>,
    all_val: Vec<f32>,
    k: usize,
    track_dirty: bool,
    select: SelectStrategy,
    sel: &mut SelectScratch,
) -> (SparseVec, Vec<u32>) {
    let mut dirty = Vec::new();
    // Secondary compression bites only when the diff is denser than the
    // budget (Alg. 2 lines 5-11); at or under budget everything goes.
    let sv = if all_idx.len() > k {
        let (idx, val) = topk_pairs_with(select, &all_idx, &all_val, k, sel);
        if track_dirty {
            scatter_track_dirty(m_seg, v_seg, &idx, &val, &all_idx, &mut dirty);
        } else {
            scatter_pairs(v_seg, &idx, &val);
        }
        SparseVec { idx, val }
    } else {
        if track_dirty {
            scatter_track_dirty(m_seg, v_seg, &all_idx, &all_val, &all_idx, &mut dirty);
        } else {
            scatter_pairs(v_seg, &all_idx, &all_val);
        }
        SparseVec { idx: all_idx, val: all_val }
    };
    (sv, dirty)
}

/// A serialisable snapshot of the server's entire state, for
/// checkpoint/restore (fault tolerance a production PS deployment needs;
/// the paper's algorithms are otherwise memoryless beyond `M` and `v_k`).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ServerCheckpoint {
    /// Initial model `θ_0`.
    pub theta0: Vec<f32>,
    /// Update accumulator `M_t`.
    pub m: Vec<f32>,
    /// Per-worker delivery accumulators `v_k`.
    pub v: Vec<Vec<f32>>,
    /// Server timestamp `t`.
    pub t: u64,
    /// `prev(k)` timestamps.
    pub prev: Vec<u64>,
}

impl MdtServer {
    /// Captures the full server state (everything needed to resume — the
    /// update log and dirty sets are rebuildable caches and stay out of
    /// the format).
    pub fn checkpoint(&self) -> ServerCheckpoint {
        ServerCheckpoint {
            theta0: self.theta0.clone(),
            m: self.m.clone(),
            v: self.v.clone(),
            t: self.t,
            prev: self.prev.clone(),
        }
    }

    /// Rebuilds a server from a checkpoint. The downlink mode and
    /// partition must match the original configuration; staleness
    /// statistics restart from empty (they are diagnostics, not state).
    ///
    /// The update log restarts empty with everything up to the snapshot
    /// timestamp declared lost; the dirty sets are recomputed exactly from
    /// `M − v_k` (one O(W·dim) scan, cold path), so the restored server's
    /// replies stay bitwise identical to the uninterrupted run.
    pub fn restore(ckpt: ServerCheckpoint, partition: Partition, downlink: Downlink) -> Self {
        partition.check_covers(&ckpt.theta0);
        assert_eq!(ckpt.m.len(), ckpt.theta0.len(), "checkpoint M size");
        if let Downlink::ModelDifference { .. } = downlink {
            assert_eq!(ckpt.v.len(), ckpt.prev.len(), "checkpoint v/prev size");
        }
        let dim = ckpt.theta0.len();
        let model_cache = match downlink {
            Downlink::DenseModel => Some(Arc::new(
                ckpt.theta0.iter().zip(ckpt.m.iter()).map(|(&a, &b)| a + b).collect::<Vec<f32>>(),
            )),
            Downlink::ModelDifference { .. } => None,
        };
        let mut log = UpdateLog::new(if model_cache.is_some() { 0 } else { dim });
        log.forget_through(ckpt.t);
        let workers = ckpt.prev.len();
        let all: Vec<u32> = (0..dim as u32).collect();
        let pending = ckpt
            .v
            .iter()
            .map(|vk| {
                let mut p = Vec::new();
                retain_dirty(&ckpt.m, vk, &all, &mut p);
                p
            })
            .collect();
        MdtServer {
            theta0: ckpt.theta0,
            m: ckpt.m,
            v: ckpt.v,
            partition,
            downlink,
            t: ckpt.t,
            prev: ckpt.prev,
            staleness: StalenessStats::new(),
            damping: StalenessDamping::off(),
            strategy: DiffStrategy::LogMerge,
            select: SelectStrategy::default(),
            log,
            pending,
            model_cache,
            scratch: BufferPool::new(64),
            mask_pool: BufferPool::new(1),
            kernel: Kernel::runtime(),
            pending_valid: vec![true; workers],
            retrack: vec![true; workers],
            par_segments: true,
        }
    }
}

/// Server-side memory breakdown (paper §5.6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerMemoryReport {
    /// Bytes of the update accumulator `M` (≈ one model).
    pub model_bytes: usize,
    /// Bytes of all `v_k` vectors (= workers × model for MDT, 0 for ASGD).
    pub tracking_bytes: usize,
    /// Bytes retained by the applied-update log (≤ capacity × 4 plus
    /// per-entry headers; capacity defaults to one index per coordinate)
    /// and its pooled candidate-merge bitmap (`dim/8` once warm).
    pub log_bytes: usize,
    /// Bytes of the per-worker dirty sets (bounded by the live diff
    /// supports, typically ≪ one model).
    pub pending_bytes: usize,
    /// Bytes of the dense-model reply cache (one model for ASGD, 0 for
    /// MDT).
    pub cache_bytes: usize,
    /// Number of workers tracked.
    pub workers: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::UpPayload;

    fn part2() -> Partition {
        Partition::from_layer_sizes([("a", 3), ("b", 3)])
    }

    fn sparse_up(part: &Partition, flat: &[f32]) -> UpMsg {
        UpMsg {
            payload: UpPayload::Sparse(SparseUpdate::from_nonzero(flat, part)),
            train_loss: 0.0,
        }
    }

    #[test]
    fn dense_downlink_ships_model() {
        let theta0 = vec![1.0f32; 6];
        let mut s = MdtServer::new(theta0, part2(), 2, Downlink::DenseModel);
        let up = UpMsg { payload: UpPayload::Dense(vec![0.5; 6]), train_loss: 0.0 };
        let reply = s.handle_update(0, &up);
        match reply {
            DownMsg::DenseModel(model) => {
                assert!(model.iter().all(|&x| (x - 0.5).abs() < 1e-6));
            }
            _ => panic!("expected dense model"),
        }
        assert_eq!(s.timestamp(), 1);
    }

    #[test]
    fn dense_downlink_cache_tracks_current_model() {
        // The pooled dense reply must stay in lockstep with the reference
        // θ_0 + M across sparse and dense updates.
        let part = part2();
        let mut s = MdtServer::new(vec![0.5f32; 6], part.clone(), 2, Downlink::DenseModel);
        for step in 0..6 {
            let mut g = vec![0.0f32; 6];
            g[step % 6] = 0.25 * (step + 1) as f32;
            let reply = s.handle_update(step % 2, &sparse_up(&part, &g));
            let reference: Vec<f32> =
                s.theta0.iter().zip(s.m().iter()).map(|(&a, &b)| a + b).collect();
            match reply {
                DownMsg::DenseModel(model) => {
                    for (i, (&c, &r)) in model.iter().zip(reference.iter()).enumerate() {
                        assert!((c - r).abs() < 1e-6, "coord {i}: cache {c} vs ref {r}");
                    }
                }
                _ => panic!("expected dense model"),
            }
            assert_eq!(s.current_model(), reply_model(&s));
        }
    }

    fn reply_model(s: &MdtServer) -> Vec<f32> {
        s.model_cache.as_ref().expect("dense cache").as_ref().clone()
    }

    #[test]
    fn mdt_equals_asgd_without_secondary() {
        // Invariant 1 / Eq. 5: after receiving G, a worker's model (θ0 +
        // applied Gs) equals the server's current model.
        let part = part2();
        let theta0 = vec![2.0f32, -1.0, 0.0, 3.0, 0.5, -0.5];
        let mut s = MdtServer::new(
            theta0.clone(),
            part.clone(),
            2,
            Downlink::ModelDifference { secondary_ratio: None },
        );
        let mut worker_model = theta0.clone();
        // Interleave updates from two workers; track worker 0's model.
        for step in 0..10 {
            // Worker 1 pushes an update we never see the reply of (stale!).
            let mut other = vec![0.0f32; 6];
            other[step % 6] = 0.3;
            s.handle_update(1, &sparse_up(&part, &other));
            // Worker 0 pushes and applies its reply.
            let mut mine = vec![0.0f32; 6];
            mine[(step * 2) % 6] = -0.2;
            let reply = s.handle_update(0, &sparse_up(&part, &mine));
            if let DownMsg::SparseDiff(g) = reply {
                g.apply_add(&mut worker_model, &part, 1.0);
            }
            // Exactness: worker model == server model after each receive.
            let server_model = s.current_model();
            for i in 0..6 {
                assert!(
                    (worker_model[i] - server_model[i]).abs() < 1e-5,
                    "step {step} coord {i}: worker {} vs server {}",
                    worker_model[i],
                    server_model[i]
                );
            }
            // v_0 tracks worker model − θ0 (same additions, so any
            // discrepancy is only the float error of the θ0 subtraction).
            for i in 0..6 {
                assert!(
                    (s.v(0)[i] - (worker_model[i] - theta0[i])).abs() < 1e-5,
                    "v tracking broken at {i}"
                );
            }
        }
        assert_eq!(s.timestamp(), 20);
    }

    #[test]
    fn v_bookkeeping_without_secondary_lands_on_m() {
        // Invariant 2: v_k == M after every non-secondary send.
        let part = part2();
        let mut s = MdtServer::new(
            vec![0.0; 6],
            part.clone(),
            1,
            Downlink::ModelDifference { secondary_ratio: None },
        );
        for step in 0..5 {
            let mut g = vec![0.0f32; 6];
            g[step % 6] = 1.0 + step as f32;
            s.handle_update(0, &sparse_up(&part, &g));
            for i in 0..6 {
                assert!((s.v(0)[i] - s.m()[i]).abs() < 1e-6, "v and M diverge at {i}");
            }
        }
    }

    #[test]
    fn secondary_compression_bounds_reply_size() {
        let part = Partition::single(100);
        let mut s = MdtServer::new(
            vec![0.0; 100],
            part.clone(),
            2,
            Downlink::ModelDifference { secondary_ratio: Some(0.05) },
        );
        // Worker 1 floods the model with many updates.
        for step in 0..30 {
            let mut g = vec![0.0f32; 100];
            for j in 0..10 {
                g[(step * 7 + j * 3) % 100] = 0.1 * (j + 1) as f32;
            }
            s.handle_update(1, &sparse_up(&part, &g));
        }
        // Worker 0's next reply must carry at most k = 5 values even though
        // M − v_0 has far more nonzeros.
        let reply = s.handle_update(0, &sparse_up(&part, &[0.0; 100]));
        match reply {
            DownMsg::SparseDiff(g) => assert!(g.nnz() <= 5, "nnz {}", g.nnz()),
            _ => panic!(),
        }
    }

    #[test]
    fn secondary_compression_residual_eventually_delivered() {
        // The held-back difference is implicitly accumulated and keeps
        // flowing: after enough quiet rounds the worker catches up with M.
        let part = Partition::single(20);
        let mut s = MdtServer::new(
            vec![0.0; 20],
            part.clone(),
            2,
            Downlink::ModelDifference { secondary_ratio: Some(0.1) }, // k=2
        );
        let mut big = vec![0.0f32; 20];
        for (i, b) in big.iter_mut().enumerate() {
            *b = (i + 1) as f32;
        }
        s.handle_update(1, &sparse_up(&part, &big));
        // Worker 0 receives k=2 coords per round; after 10 quiet rounds the
        // whole difference must have been delivered.
        let mut worker_model = vec![0.0f32; 20];
        for _ in 0..10 {
            let reply = s.handle_update(0, &sparse_up(&part, &[0.0; 20]));
            if let DownMsg::SparseDiff(g) = reply {
                g.apply_add(&mut worker_model, &part, 1.0);
            }
        }
        let server_model = s.current_model();
        for i in 0..20 {
            assert!(
                (worker_model[i] - server_model[i]).abs() < 1e-5,
                "coord {i} not caught up: {} vs {}",
                worker_model[i],
                server_model[i]
            );
        }
    }

    /// Drives two identically configured servers — one per strategy —
    /// through the same update schedule and asserts every reply is
    /// bitwise identical on the wire.
    fn assert_strategies_bitwise_equal(
        secondary_ratio: Option<f64>,
        log_capacity: Option<usize>,
        schedule: impl Iterator<Item = usize>,
    ) {
        let part = Partition::from_layer_sizes([("a", 13), ("b", 7), ("c", 20)]);
        let dim = 40;
        let theta0 = vec![0.0f32; dim];
        let downlink = Downlink::ModelDifference { secondary_ratio };
        let mut log_srv = MdtServer::new(theta0.clone(), part.clone(), 3, downlink);
        if let Some(cap) = log_capacity {
            log_srv.set_log_capacity(cap);
        }
        let mut dense_srv = MdtServer::new(theta0, part.clone(), 3, downlink);
        dense_srv.set_diff_strategy(DiffStrategy::DenseScan);
        for (step, w) in schedule.enumerate() {
            let mut g = vec![0.0f32; dim];
            for j in 0..4 {
                let i = (step * 11 + j * 7 + w) % dim;
                g[i] = ((step * 31 + j * 13 + w) as f32 * 0.37).sin();
            }
            let up = sparse_up(&part, &g);
            let ra = log_srv.handle_update(w, &up);
            let rb = dense_srv.handle_update(w, &up);
            match (ra, rb) {
                (DownMsg::SparseDiff(da), DownMsg::SparseDiff(db)) => {
                    assert_eq!(
                        da.encode(),
                        db.encode(),
                        "step {step} worker {w}: wire payloads diverge"
                    );
                }
                _ => panic!("expected sparse diffs"),
            }
        }
        assert_eq!(log_srv.m(), dense_srv.m(), "M accumulators diverge");
        for w in 0..3 {
            assert_eq!(log_srv.v(w), dense_srv.v(w), "v_{w} diverges");
        }
    }

    #[test]
    fn select_strategies_bitwise_equal_on_the_wire() {
        // Eight servers spanning {LogMerge, DenseScan} × {Comparator,
        // Radix} × {Scalar, Simd} through identical secondary-compressed
        // traffic: every reply must be byte-identical regardless of the
        // selection engine or compute backend.
        let part = Partition::from_layer_sizes([("a", 13), ("b", 7), ("c", 20)]);
        let dim = 40;
        let downlink = Downlink::ModelDifference { secondary_ratio: Some(0.1) };
        let mut servers: Vec<MdtServer> = (0..8)
            .map(|i| {
                let mut s = MdtServer::new(vec![0.0f32; dim], part.clone(), 3, downlink);
                if i % 4 >= 2 {
                    s.set_diff_strategy(DiffStrategy::DenseScan);
                }
                let select =
                    if i % 2 == 0 { SelectStrategy::Comparator } else { SelectStrategy::Radix };
                s.set_select_strategy(select);
                assert_eq!(s.select_strategy(), select);
                let kernel = if i < 4 { Kernel::Scalar } else { Kernel::Simd };
                s.set_kernel(kernel);
                assert_eq!(s.kernel(), kernel);
                s
            })
            .collect();
        for step in 0..60 {
            let w = (step * 2) % 3;
            let mut g = vec![0.0f32; dim];
            for j in 0..4 {
                let i = (step * 11 + j * 7 + w) % dim;
                g[i] = ((step * 31 + j * 13 + w) as f32 * 0.37).sin();
            }
            let up = sparse_up(&part, &g);
            let replies: Vec<_> = servers
                .iter_mut()
                .map(|s| match s.handle_update(w, &up) {
                    DownMsg::SparseDiff(d) => d.encode(),
                    _ => panic!("expected sparse diff"),
                })
                .collect();
            for (i, r) in replies.iter().enumerate().skip(1) {
                assert_eq!(r, &replies[0], "step {step}: server {i} payload diverges");
            }
        }
        for s in &servers[1..] {
            assert_eq!(s.m(), servers[0].m(), "M accumulators diverge");
        }
    }

    #[test]
    fn log_and_dense_strategies_bitwise_equal_plain() {
        assert_strategies_bitwise_equal(None, None, (0..60).map(|s| s % 3));
    }

    #[test]
    fn log_and_dense_strategies_bitwise_equal_secondary() {
        assert_strategies_bitwise_equal(Some(0.1), None, (0..60).map(|s| (s * 2) % 3));
    }

    #[test]
    fn log_truncation_fallback_stays_bitwise_equal() {
        // A 6-index budget overflows constantly (each update logs 4), so
        // stragglers keep falling off the log and exercising the dense
        // fallback — which must be invisible on the wire.
        let skewed = (0..80).map(|s: usize| if s % 8 == 7 { 2 } else { s % 2 });
        assert_strategies_bitwise_equal(Some(0.15), Some(6), skewed);
    }

    #[test]
    fn strategy_switch_midrun_stays_bitwise_equal() {
        let part = Partition::single(30);
        let downlink = Downlink::ModelDifference { secondary_ratio: Some(0.2) };
        let mut a = MdtServer::new(vec![0.0; 30], part.clone(), 2, downlink);
        let mut b = MdtServer::new(vec![0.0; 30], part.clone(), 2, downlink);
        for step in 0..40 {
            // Server `a` flips strategy every 10 steps; `b` stays on the
            // default. Payloads must never diverge.
            if step % 10 == 0 {
                let next = if (step / 10) % 2 == 0 {
                    DiffStrategy::DenseScan
                } else {
                    DiffStrategy::LogMerge
                };
                a.set_diff_strategy(next);
            }
            let mut g = vec![0.0f32; 30];
            g[(step * 7) % 30] = 1.0 + step as f32;
            g[(step * 3 + 1) % 30] = -0.5;
            let up = sparse_up(&part, &g);
            let (ra, rb) = (a.handle_update(step % 2, &up), b.handle_update(step % 2, &up));
            match (ra, rb) {
                (DownMsg::SparseDiff(da), DownMsg::SparseDiff(db)) => {
                    assert_eq!(da.encode(), db.encode(), "step {step}");
                }
                _ => panic!("expected sparse diffs"),
            }
        }
    }

    #[test]
    fn degenerate_density_hysteresis_stays_bitwise_equal() {
        // Above PAR_THRESHOLD the density hysteresis is live: flooding the
        // model under tight secondary compression must drive the log-strategy
        // server into untracked dense scans (pending invalidated, retrack
        // off) without ever changing the wire payload.
        let dim = 2 * PAR_THRESHOLD;
        let part = Partition::single(dim);
        let downlink = Downlink::ModelDifference { secondary_ratio: Some(0.001) };
        let mut log_srv = MdtServer::new(vec![0.0; dim], part.clone(), 2, downlink);
        let mut dense_srv = MdtServer::new(vec![0.0; dim], part.clone(), 2, downlink);
        dense_srv.set_diff_strategy(DiffStrategy::DenseScan);
        for step in 0..24 {
            // Each update touches dim/16 coordinates while the downlink
            // returns only ~dim/1000, so nnz(M − v_k) quickly outgrows the
            // dim/8 hysteresis threshold and then the dim/4 merge guard.
            let mut g = vec![0.0f32; dim];
            for j in 0..dim / 16 {
                g[(step * 97 + j * 16) % dim] = ((step + j) as f32 * 0.61).cos();
            }
            let up = sparse_up(&part, &g);
            let w = step % 2;
            let (ra, rb) = (log_srv.handle_update(w, &up), dense_srv.handle_update(w, &up));
            match (ra, rb) {
                (DownMsg::SparseDiff(da), DownMsg::SparseDiff(db)) => {
                    assert_eq!(da.encode(), db.encode(), "step {step}");
                }
                _ => panic!("expected sparse diffs"),
            }
        }
        for w in 0..2 {
            assert!(!log_srv.pending_valid[w], "worker {w} should be degenerate");
            assert!(!log_srv.retrack[w], "worker {w} should have tracking off");
            assert!(log_srv.pending[w].is_empty(), "stale pending should be dropped");
        }
        assert_eq!(log_srv.m(), dense_srv.m());
    }

    #[test]
    fn resync_worker_restores_tracking_invariant() {
        let part = part2();
        let mut s = MdtServer::new(
            vec![0.25; 6],
            part.clone(),
            2,
            Downlink::ModelDifference { secondary_ratio: Some(0.34) }, // k=1/chunk
        );
        // Build up undelivered residue for worker 0.
        for step in 0..5 {
            let mut g = vec![0.0f32; 6];
            g[step % 6] = 1.0 + step as f32;
            g[(step + 3) % 6] = -2.0;
            s.handle_update(1, &sparse_up(&part, &g));
        }
        s.handle_update(0, &sparse_up(&part, &[0.0; 6]));
        assert!(!s.pending[0].is_empty(), "secondary compression must hold residue back");
        // Resync: the worker receives θ_0 + M and the server's tracking
        // matches it exactly.
        let model = match s.resync_worker(0) {
            DownMsg::DenseModel(m) => m,
            other => panic!("expected dense model, got {other:?}"),
        };
        assert_eq!(model.as_slice(), s.current_model().as_slice());
        assert_eq!(s.v(0), s.m(), "v_0 must land on M");
        assert!(s.pending[0].is_empty() && s.pending_valid[0]);
        // Training resumes normally: the next reply to worker 0 carries
        // only differences accumulated after the resync.
        let mut g = vec![0.0f32; 6];
        g[2] = 0.5;
        let reply = s.handle_update(0, &sparse_up(&part, &g));
        match reply {
            DownMsg::SparseDiff(d) => assert!(d.nnz() <= 2, "post-resync diff nnz {}", d.nnz()),
            other => panic!("expected sparse diff, got {other:?}"),
        }
    }

    #[test]
    fn staleness_recorded() {
        let part = part2();
        let mut s = MdtServer::new(
            vec![0.0; 6],
            part.clone(),
            2,
            Downlink::ModelDifference { secondary_ratio: None },
        );
        let up = sparse_up(&part, &[1.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        s.handle_update(0, &up); // staleness 0
        s.handle_update(1, &up); // staleness 1 (missed worker 0's update)
        s.handle_update(0, &up); // staleness 1 (missed worker 1's update)
        assert_eq!(s.staleness().count(), 3);
        assert_eq!(s.staleness().max(), 1);
        assert!((s.staleness().mean() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn memory_report_scales_with_workers() {
        let part = Partition::single(1000);
        let mdt = MdtServer::new(
            vec![0.0; 1000],
            part.clone(),
            8,
            Downlink::ModelDifference { secondary_ratio: None },
        );
        let rep = mdt.memory_report();
        assert_eq!(rep.model_bytes, 4000);
        assert_eq!(rep.tracking_bytes, 8 * 4000);
        assert_eq!(rep.cache_bytes, 0);
        let asgd = MdtServer::new(vec![0.0; 1000], part, 8, Downlink::DenseModel);
        let arep = asgd.memory_report();
        assert_eq!(arep.tracking_bytes, 0);
        assert_eq!(arep.log_bytes, 0);
        assert_eq!(arep.cache_bytes, 4000);
    }

    #[test]
    fn memory_report_tracks_log_and_pending() {
        let part = Partition::single(50);
        let mut s = MdtServer::new(
            vec![0.0; 50],
            part.clone(),
            2,
            Downlink::ModelDifference { secondary_ratio: Some(0.04) }, // k=2
        );
        let mut g = vec![0.0f32; 50];
        for i in 0..10 {
            g[i * 5] = (i + 1) as f32;
        }
        s.handle_update(0, &sparse_up(&part, &g));
        let rep = s.memory_report();
        assert!(rep.log_bytes > 0, "applied update must be logged");
        // Worker 0 got k=2 of its 10-nonzero diff: 8 coords stay dirty.
        assert!(rep.pending_bytes >= 8 * 4, "pending {} too small", rep.pending_bytes);
    }

    #[test]
    fn downlink_factory() {
        assert_eq!(Downlink::for_method(Method::Asgd, None), Downlink::DenseModel);
        assert_eq!(
            Downlink::for_method(Method::Dgs, Some(0.01)),
            Downlink::ModelDifference { secondary_ratio: Some(0.01) }
        );
        assert_eq!(
            Downlink::for_method(Method::GdAsync, None),
            Downlink::ModelDifference { secondary_ratio: None }
        );
    }

    #[test]
    #[should_panic(expected = "single-node")]
    fn downlink_rejects_msgd() {
        Downlink::for_method(Method::Msgd, None);
    }

    #[test]
    fn damping_scales_by_staleness() {
        assert_eq!(StalenessDamping::off().scale(100), 1.0);
        let d = StalenessDamping { alpha: 1.0 };
        assert_eq!(d.scale(0), 1.0);
        assert!((d.scale(1) - 0.5).abs() < 1e-6);
        assert!((d.scale(3) - 0.25).abs() < 1e-6);
        let soft = StalenessDamping { alpha: 0.5 };
        assert!(soft.scale(3) > d.scale(3));
    }

    #[test]
    fn damped_server_applies_scaled_updates() {
        let part = part2();
        let mut s = MdtServer::new(
            vec![0.0; 6],
            part.clone(),
            2,
            Downlink::ModelDifference { secondary_ratio: None },
        );
        s.set_damping(StalenessDamping { alpha: 1.0 });
        let mut g = vec![0.0f32; 6];
        g[0] = 1.0;
        // Worker 0's first update: staleness 0, full scale.
        s.handle_update(0, &sparse_up(&part, &g));
        assert!((s.m()[0] + 1.0).abs() < 1e-6);
        // Worker 1's first update arrives at t=1 with prev=0: staleness 1,
        // applied at half scale.
        let mut g2 = vec![0.0f32; 6];
        g2[1] = 1.0;
        s.handle_update(1, &sparse_up(&part, &g2));
        assert!((s.m()[1] + 0.5).abs() < 1e-6, "damped update: {}", s.m()[1]);
    }

    #[test]
    fn checkpoint_restore_resumes_identically() {
        let part = part2();
        let downlink = Downlink::ModelDifference { secondary_ratio: None };
        let mut a = MdtServer::new(vec![1.0; 6], part.clone(), 2, downlink);
        // Some traffic.
        for step in 0..7 {
            let mut g = vec![0.0f32; 6];
            g[step % 6] = 0.5;
            a.handle_update(step % 2, &sparse_up(&part, &g));
        }
        // Snapshot, serialise, restore.
        let json = serde_json::to_string(&a.checkpoint()).unwrap();
        let ckpt: ServerCheckpoint = serde_json::from_str(&json).unwrap();
        let mut b = MdtServer::restore(ckpt, part.clone(), downlink);
        assert_eq!(a.timestamp(), b.timestamp());
        assert_eq!(a.current_model(), b.current_model());
        // Both servers process the same subsequent update identically.
        let mut g = vec![0.0f32; 6];
        g[3] = -0.25;
        let up = sparse_up(&part, &g);
        let ra = a.handle_update(1, &up);
        let rb = b.handle_update(1, &up);
        match (ra, rb) {
            (DownMsg::SparseDiff(da), DownMsg::SparseDiff(db)) => assert_eq!(da, db),
            _ => panic!("expected sparse diffs"),
        }
        assert_eq!(a.current_model(), b.current_model());
    }

    #[test]
    fn checkpoint_restore_exact_under_secondary_compression() {
        // The restored server has no update log, but its rebuilt dirty
        // sets must keep replies bitwise identical to the uninterrupted
        // server even while secondary compression holds residuals back.
        let part = Partition::from_layer_sizes([("a", 10), ("b", 15)]);
        let downlink = Downlink::ModelDifference { secondary_ratio: Some(0.12) };
        let mut a = MdtServer::new(vec![0.5; 25], part.clone(), 3, downlink);
        for step in 0..17 {
            let mut g = vec![0.0f32; 25];
            g[(step * 9) % 25] = 0.3 * (step + 1) as f32;
            g[(step * 4 + 2) % 25] = -0.7;
            a.handle_update(step % 3, &sparse_up(&part, &g));
        }
        let ckpt = a.checkpoint();
        let mut b = MdtServer::restore(ckpt, part.clone(), downlink);
        for step in 0..12 {
            let mut g = vec![0.0f32; 25];
            g[(step * 6 + 1) % 25] = 0.1 * (step + 1) as f32;
            let up = sparse_up(&part, &g);
            let (ra, rb) = (a.handle_update(step % 3, &up), b.handle_update(step % 3, &up));
            match (ra, rb) {
                (DownMsg::SparseDiff(da), DownMsg::SparseDiff(db)) => {
                    assert_eq!(da.encode(), db.encode(), "step {step} after restore");
                }
                _ => panic!("expected sparse diffs"),
            }
        }
        assert_eq!(a.m(), b.m());
    }

    #[test]
    #[should_panic(expected = "checkpoint M size")]
    fn restore_rejects_mismatched_checkpoint() {
        let part = part2();
        let ckpt = ServerCheckpoint {
            theta0: vec![0.0; 6],
            m: vec![0.0; 5],
            v: vec![],
            t: 0,
            prev: vec![],
        };
        MdtServer::restore(ckpt, part, Downlink::DenseModel);
    }
}
