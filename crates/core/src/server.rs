//! The Model-Difference-Tracking parameter server (paper Alg. 2, Eq. 1-6).
//!
//! The server never stores the global model directly; it keeps
//!
//! * `M_t` — the accumulation of all applied updates (`θ_t = θ_0 + M_t`,
//!   Eq. 2), updated as `M ← M − g` on every received update (Eq. 1);
//! * `v_k` — per worker, the accumulation of everything already *sent* to
//!   worker `k`, so the downlink payload is the difference
//!   `G_{k} = M − v_k` (Eq. 3).
//!
//! Without secondary compression the full difference goes out and
//! `v_k ← v_k + G` lands exactly on `M` (Eq. 3); with secondary compression
//! only the per-layer Top-k of `G` goes out and `v_k` advances by just that
//! part (Eq. 6), leaving the remainder implicitly accumulated server-side.
//!
//! The crucial tracking property: the server updates `v_k` with the *same*
//! elementwise scatter-adds the worker applies to its local model, so
//! `θ_0 + v_k` reproduces the worker's model to within a single f32
//! rounding step — the server always knows what every worker holds, which
//! is what makes the difference meaningful under asynchrony.

use crate::method::Method;
use crate::protocol::{DownMsg, UpMsg, UpPayload};
use dgs_psim::StalenessStats;
use dgs_sparsify::{k_for_ratio, Partition, SparseUpdate, SparseVec};

/// Staleness mitigation applied by the server when folding updates into
/// `M` — a gap-aware damping in the spirit of Barkai et al. (cited by the
/// paper as its momentum-ASGD reference): an update whose staleness is `s`
/// is scaled by `1/(1+s)^alpha`, so badly stale gradients move the model
/// less. `alpha = 0` disables it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StalenessDamping {
    /// Damping exponent; 0 disables, 1 is full gap-aware scaling.
    pub alpha: f64,
}

impl StalenessDamping {
    /// No damping (the paper's plain ASGD/DGS behaviour).
    pub fn off() -> Self {
        StalenessDamping { alpha: 0.0 }
    }

    /// The scale applied to an update of staleness `s`.
    pub fn scale(&self, staleness: u64) -> f32 {
        if self.alpha == 0.0 {
            1.0
        } else {
            (1.0 / (1.0 + staleness as f64).powf(self.alpha)) as f32
        }
    }
}

impl Default for StalenessDamping {
    fn default() -> Self {
        StalenessDamping::off()
    }
}

/// Downlink behaviour of the server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Downlink {
    /// Ship the whole dense model every round (vanilla ASGD).
    DenseModel,
    /// Ship the sparse model difference `G = M − v_k` (MDT).
    ModelDifference {
        /// Apply per-layer Top-k to `G` before sending (Alg. 2 lines 5-11).
        secondary_ratio: Option<f64>,
    },
}

impl Downlink {
    /// The downlink the paper pairs with each method.
    pub fn for_method(method: Method, secondary: Option<f64>) -> Self {
        match method {
            Method::Msgd => panic!("MSGD trains single-node; no server involved"),
            Method::Asgd => Downlink::DenseModel,
            _ => Downlink::ModelDifference { secondary_ratio: secondary },
        }
    }
}

/// The parameter server.
pub struct MdtServer {
    theta0: Vec<f32>,
    /// `M_t`: accumulated updates; global model = `θ_0 + M`.
    m: Vec<f32>,
    /// `v_k`: per-worker accumulated deliveries; worker k's model =
    /// `θ_0 + v_k` (exactly, see module docs).
    v: Vec<Vec<f32>>,
    partition: Partition,
    downlink: Downlink,
    /// Server timestamp `t`: number of updates applied.
    t: u64,
    /// `prev(k)`: timestamp of the last update delivered to worker k.
    prev: Vec<u64>,
    staleness: StalenessStats,
    damping: StalenessDamping,
}

impl MdtServer {
    /// Creates a server for `workers` workers from the initial model.
    pub fn new(theta0: Vec<f32>, partition: Partition, workers: usize, downlink: Downlink) -> Self {
        partition.check_covers(&theta0);
        let dim = theta0.len();
        let v = match downlink {
            // Dense-model downlink needs no per-worker tracking.
            Downlink::DenseModel => Vec::new(),
            Downlink::ModelDifference { .. } => vec![vec![0.0f32; dim]; workers],
        };
        MdtServer {
            theta0,
            m: vec![0.0; dim],
            v,
            partition,
            downlink,
            t: 0,
            prev: vec![0; workers],
            staleness: StalenessStats::new(),
            damping: StalenessDamping::off(),
        }
    }

    /// Enables gap-aware staleness damping (see [`StalenessDamping`]).
    pub fn set_damping(&mut self, damping: StalenessDamping) {
        self.damping = damping;
    }

    /// Number of parameters.
    pub fn dim(&self) -> usize {
        self.m.len()
    }

    /// Current server timestamp `t` (updates applied so far).
    pub fn timestamp(&self) -> u64 {
        self.t
    }

    /// The current global model `θ_t = θ_0 + M_t`.
    pub fn current_model(&self) -> Vec<f32> {
        self.theta0.iter().zip(self.m.iter()).map(|(&a, &b)| a + b).collect()
    }

    /// The update accumulator `M_t` (for tests).
    pub fn m(&self) -> &[f32] {
        &self.m
    }

    /// Worker `k`'s delivery accumulator `v_k` (for tests). Panics for the
    /// dense-model downlink, which keeps none.
    pub fn v(&self, worker: usize) -> &[f32] {
        &self.v[worker]
    }

    /// Observed staleness statistics.
    pub fn staleness(&self) -> &StalenessStats {
        &self.staleness
    }

    /// Processes one worker update and produces the reply — the body of the
    /// paper's Alg. 2 receive loop.
    pub fn handle_update(&mut self, worker: usize, up: &UpMsg) -> DownMsg {
        let staleness = self.t - self.prev[worker];
        let scale = self.damping.scale(staleness);
        // M_{t+1} = M_t − scale·g (Eq. 1; scale = 1 without damping).
        // Updates arrive lr-scaled.
        match &up.payload {
            UpPayload::Dense(g) => {
                assert_eq!(g.len(), self.m.len(), "dense update size");
                for (m, &gi) in self.m.iter_mut().zip(g.iter()) {
                    *m -= scale * gi;
                }
            }
            UpPayload::Sparse(s) => {
                s.apply_add(&mut self.m, &self.partition, -scale);
            }
            UpPayload::TernarySparse(t) => {
                t.dequantize().apply_add(&mut self.m, &self.partition, -scale);
            }
        }
        self.t += 1;
        self.staleness.record(staleness);
        self.prev[worker] = self.t;

        match self.downlink {
            Downlink::DenseModel => DownMsg::DenseModel(self.current_model()),
            Downlink::ModelDifference { secondary_ratio } => {
                let reply = self.make_diff(worker, secondary_ratio);
                DownMsg::SparseDiff(reply)
            }
        }
    }

    /// Builds `G = M − v_k`, optionally secondary-compressed, and advances
    /// `v_k` by exactly what is sent.
    fn make_diff(&mut self, worker: usize, secondary_ratio: Option<f64>) -> SparseUpdate {
        let vk = &mut self.v[worker];
        let mut chunks = Vec::with_capacity(self.partition.num_segments());
        for si in 0..self.partition.num_segments() {
            let range = self.partition.segments()[si].range();
            let m_seg = &self.m[range.clone()];
            let v_seg = &mut vk[range];
            // Dense per-layer difference.
            let diff: Vec<f32> =
                m_seg.iter().zip(v_seg.iter()).map(|(&m, &v)| m - v).collect();
            let sv = match secondary_ratio {
                None => SparseVec::from_nonzero(&diff),
                Some(ratio) => {
                    let nnz_all = diff.iter().filter(|&&d| d != 0.0).count();
                    let k = k_for_ratio(diff.len(), ratio);
                    if nnz_all <= k {
                        // Already sparser than the budget: send everything.
                        SparseVec::from_nonzero(&diff)
                    } else {
                        SparseVec::from_topk(&diff, k)
                    }
                }
            };
            // v_k ← v_k + G with the same scatter-adds the worker performs,
            // keeping θ_0 + v_k bitwise equal to the worker model.
            sv.apply_add(v_seg, 1.0);
            chunks.push(sv);
        }
        SparseUpdate { chunks }
    }

    /// §5.6.2 memory accounting: bytes of per-worker tracking state
    /// (`Σ_k |v_k|`) plus the accumulator `M`.
    pub fn memory_report(&self) -> ServerMemoryReport {
        let f = std::mem::size_of::<f32>();
        ServerMemoryReport {
            model_bytes: self.m.len() * f,
            tracking_bytes: self.v.iter().map(|v| v.len() * f).sum(),
            workers: self.prev.len(),
        }
    }
}

/// A serialisable snapshot of the server's entire state, for
/// checkpoint/restore (fault tolerance a production PS deployment needs;
/// the paper's algorithms are otherwise memoryless beyond `M` and `v_k`).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ServerCheckpoint {
    /// Initial model `θ_0`.
    pub theta0: Vec<f32>,
    /// Update accumulator `M_t`.
    pub m: Vec<f32>,
    /// Per-worker delivery accumulators `v_k`.
    pub v: Vec<Vec<f32>>,
    /// Server timestamp `t`.
    pub t: u64,
    /// `prev(k)` timestamps.
    pub prev: Vec<u64>,
}

impl MdtServer {
    /// Captures the full server state (everything needed to resume).
    pub fn checkpoint(&self) -> ServerCheckpoint {
        ServerCheckpoint {
            theta0: self.theta0.clone(),
            m: self.m.clone(),
            v: self.v.clone(),
            t: self.t,
            prev: self.prev.clone(),
        }
    }

    /// Rebuilds a server from a checkpoint. The downlink mode and
    /// partition must match the original configuration; staleness
    /// statistics restart from empty (they are diagnostics, not state).
    pub fn restore(
        ckpt: ServerCheckpoint,
        partition: Partition,
        downlink: Downlink,
    ) -> Self {
        partition.check_covers(&ckpt.theta0);
        assert_eq!(ckpt.m.len(), ckpt.theta0.len(), "checkpoint M size");
        if let Downlink::ModelDifference { .. } = downlink {
            assert_eq!(ckpt.v.len(), ckpt.prev.len(), "checkpoint v/prev size");
        }
        MdtServer {
            theta0: ckpt.theta0,
            m: ckpt.m,
            v: ckpt.v,
            partition,
            downlink,
            t: ckpt.t,
            prev: ckpt.prev,
            staleness: StalenessStats::new(),
            damping: StalenessDamping::off(),
        }
    }
}

/// Server-side memory breakdown (paper §5.6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerMemoryReport {
    /// Bytes of the update accumulator `M` (≈ one model).
    pub model_bytes: usize,
    /// Bytes of all `v_k` vectors (= workers × model for MDT, 0 for ASGD).
    pub tracking_bytes: usize,
    /// Number of workers tracked.
    pub workers: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part2() -> Partition {
        Partition::from_layer_sizes([("a", 3), ("b", 3)])
    }

    fn sparse_up(part: &Partition, flat: &[f32]) -> UpMsg {
        UpMsg {
            payload: UpPayload::Sparse(SparseUpdate::from_nonzero(flat, part)),
            train_loss: 0.0,
        }
    }

    #[test]
    fn dense_downlink_ships_model() {
        let theta0 = vec![1.0f32; 6];
        let mut s = MdtServer::new(theta0, part2(), 2, Downlink::DenseModel);
        let up = UpMsg { payload: UpPayload::Dense(vec![0.5; 6]), train_loss: 0.0 };
        let reply = s.handle_update(0, &up);
        match reply {
            DownMsg::DenseModel(model) => {
                assert!(model.iter().all(|&x| (x - 0.5).abs() < 1e-6));
            }
            _ => panic!("expected dense model"),
        }
        assert_eq!(s.timestamp(), 1);
    }

    #[test]
    fn mdt_equals_asgd_without_secondary() {
        // Invariant 1 / Eq. 5: after receiving G, a worker's model (θ0 +
        // applied Gs) equals the server's current model.
        let part = part2();
        let theta0 = vec![2.0f32, -1.0, 0.0, 3.0, 0.5, -0.5];
        let mut s = MdtServer::new(
            theta0.clone(),
            part.clone(),
            2,
            Downlink::ModelDifference { secondary_ratio: None },
        );
        let mut worker_model = theta0.clone();
        // Interleave updates from two workers; track worker 0's model.
        for step in 0..10 {
            // Worker 1 pushes an update we never see the reply of (stale!).
            let mut other = vec![0.0f32; 6];
            other[step % 6] = 0.3;
            s.handle_update(1, &sparse_up(&part, &other));
            // Worker 0 pushes and applies its reply.
            let mut mine = vec![0.0f32; 6];
            mine[(step * 2) % 6] = -0.2;
            let reply = s.handle_update(0, &sparse_up(&part, &mine));
            if let DownMsg::SparseDiff(g) = reply {
                g.apply_add(&mut worker_model, &part, 1.0);
            }
            // Exactness: worker model == server model after each receive.
            let server_model = s.current_model();
            for i in 0..6 {
                assert!(
                    (worker_model[i] - server_model[i]).abs() < 1e-5,
                    "step {step} coord {i}: worker {} vs server {}",
                    worker_model[i],
                    server_model[i]
                );
            }
            // v_0 tracks worker model − θ0 (same additions, so any
            // discrepancy is only the float error of the θ0 subtraction).
            for i in 0..6 {
                assert!(
                    (s.v(0)[i] - (worker_model[i] - theta0[i])).abs() < 1e-5,
                    "v tracking broken at {i}"
                );
            }
        }
        assert_eq!(s.timestamp(), 20);
    }

    #[test]
    fn v_bookkeeping_without_secondary_lands_on_m() {
        // Invariant 2: v_k == M after every non-secondary send.
        let part = part2();
        let mut s = MdtServer::new(
            vec![0.0; 6],
            part.clone(),
            1,
            Downlink::ModelDifference { secondary_ratio: None },
        );
        for step in 0..5 {
            let mut g = vec![0.0f32; 6];
            g[step % 6] = 1.0 + step as f32;
            s.handle_update(0, &sparse_up(&part, &g));
            for i in 0..6 {
                assert!(
                    (s.v(0)[i] - s.m()[i]).abs() < 1e-6,
                    "v and M diverge at {i}"
                );
            }
        }
    }

    #[test]
    fn secondary_compression_bounds_reply_size() {
        let part = Partition::single(100);
        let mut s = MdtServer::new(
            vec![0.0; 100],
            part.clone(),
            2,
            Downlink::ModelDifference { secondary_ratio: Some(0.05) },
        );
        // Worker 1 floods the model with many updates.
        for step in 0..30 {
            let mut g = vec![0.0f32; 100];
            for j in 0..10 {
                g[(step * 7 + j * 3) % 100] = 0.1 * (j + 1) as f32;
            }
            s.handle_update(1, &sparse_up(&part, &g));
        }
        // Worker 0's next reply must carry at most k = 5 values even though
        // M − v_0 has far more nonzeros.
        let reply = s.handle_update(0, &sparse_up(&part, &[0.0; 100]));
        match reply {
            DownMsg::SparseDiff(g) => assert!(g.nnz() <= 5, "nnz {}", g.nnz()),
            _ => panic!(),
        }
    }

    #[test]
    fn secondary_compression_residual_eventually_delivered() {
        // The held-back difference is implicitly accumulated and keeps
        // flowing: after enough quiet rounds the worker catches up with M.
        let part = Partition::single(20);
        let mut s = MdtServer::new(
            vec![0.0; 20],
            part.clone(),
            2,
            Downlink::ModelDifference { secondary_ratio: Some(0.1) }, // k=2
        );
        let mut big = vec![0.0f32; 20];
        for (i, b) in big.iter_mut().enumerate() {
            *b = (i + 1) as f32;
        }
        s.handle_update(1, &sparse_up(&part, &big));
        // Worker 0 receives k=2 coords per round; after 10 quiet rounds the
        // whole difference must have been delivered.
        let mut worker_model = vec![0.0f32; 20];
        for _ in 0..10 {
            let reply = s.handle_update(0, &sparse_up(&part, &[0.0; 20]));
            if let DownMsg::SparseDiff(g) = reply {
                g.apply_add(&mut worker_model, &part, 1.0);
            }
        }
        let server_model = s.current_model();
        for i in 0..20 {
            assert!(
                (worker_model[i] - server_model[i]).abs() < 1e-5,
                "coord {i} not caught up: {} vs {}",
                worker_model[i],
                server_model[i]
            );
        }
    }

    #[test]
    fn staleness_recorded() {
        let part = part2();
        let mut s = MdtServer::new(
            vec![0.0; 6],
            part.clone(),
            2,
            Downlink::ModelDifference { secondary_ratio: None },
        );
        let up = sparse_up(&part, &[1.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        s.handle_update(0, &up); // staleness 0
        s.handle_update(1, &up); // staleness 1 (missed worker 0's update)
        s.handle_update(0, &up); // staleness 1 (missed worker 1's update)
        assert_eq!(s.staleness().count(), 3);
        assert_eq!(s.staleness().max(), 1);
        assert!((s.staleness().mean() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn memory_report_scales_with_workers() {
        let part = Partition::single(1000);
        let mdt = MdtServer::new(
            vec![0.0; 1000],
            part.clone(),
            8,
            Downlink::ModelDifference { secondary_ratio: None },
        );
        let rep = mdt.memory_report();
        assert_eq!(rep.model_bytes, 4000);
        assert_eq!(rep.tracking_bytes, 8 * 4000);
        let asgd = MdtServer::new(vec![0.0; 1000], part, 8, Downlink::DenseModel);
        assert_eq!(asgd.memory_report().tracking_bytes, 0);
    }

    #[test]
    fn downlink_factory() {
        assert_eq!(Downlink::for_method(Method::Asgd, None), Downlink::DenseModel);
        assert_eq!(
            Downlink::for_method(Method::Dgs, Some(0.01)),
            Downlink::ModelDifference { secondary_ratio: Some(0.01) }
        );
        assert_eq!(
            Downlink::for_method(Method::GdAsync, None),
            Downlink::ModelDifference { secondary_ratio: None }
        );
    }

    #[test]
    #[should_panic(expected = "single-node")]
    fn downlink_rejects_msgd() {
        Downlink::for_method(Method::Msgd, None);
    }

    #[test]
    fn damping_scales_by_staleness() {
        assert_eq!(StalenessDamping::off().scale(100), 1.0);
        let d = StalenessDamping { alpha: 1.0 };
        assert_eq!(d.scale(0), 1.0);
        assert!((d.scale(1) - 0.5).abs() < 1e-6);
        assert!((d.scale(3) - 0.25).abs() < 1e-6);
        let soft = StalenessDamping { alpha: 0.5 };
        assert!(soft.scale(3) > d.scale(3));
    }

    #[test]
    fn damped_server_applies_scaled_updates() {
        let part = part2();
        let mut s = MdtServer::new(
            vec![0.0; 6],
            part.clone(),
            2,
            Downlink::ModelDifference { secondary_ratio: None },
        );
        s.set_damping(StalenessDamping { alpha: 1.0 });
        let mut g = vec![0.0f32; 6];
        g[0] = 1.0;
        // Worker 0's first update: staleness 0, full scale.
        s.handle_update(0, &sparse_up(&part, &g));
        assert!((s.m()[0] + 1.0).abs() < 1e-6);
        // Worker 1's first update arrives at t=1 with prev=0: staleness 1,
        // applied at half scale.
        let mut g2 = vec![0.0f32; 6];
        g2[1] = 1.0;
        s.handle_update(1, &sparse_up(&part, &g2));
        assert!((s.m()[1] + 0.5).abs() < 1e-6, "damped update: {}", s.m()[1]);
    }

    #[test]
    fn checkpoint_restore_resumes_identically() {
        let part = part2();
        let downlink = Downlink::ModelDifference { secondary_ratio: None };
        let mut a = MdtServer::new(vec![1.0; 6], part.clone(), 2, downlink);
        // Some traffic.
        for step in 0..7 {
            let mut g = vec![0.0f32; 6];
            g[step % 6] = 0.5;
            a.handle_update(step % 2, &sparse_up(&part, &g));
        }
        // Snapshot, serialise, restore.
        let json = serde_json::to_string(&a.checkpoint()).unwrap();
        let ckpt: ServerCheckpoint = serde_json::from_str(&json).unwrap();
        let mut b = MdtServer::restore(ckpt, part.clone(), downlink);
        assert_eq!(a.timestamp(), b.timestamp());
        assert_eq!(a.current_model(), b.current_model());
        // Both servers process the same subsequent update identically.
        let mut g = vec![0.0f32; 6];
        g[3] = -0.25;
        let up = sparse_up(&part, &g);
        let ra = a.handle_update(1, &up);
        let rb = b.handle_update(1, &up);
        match (ra, rb) {
            (DownMsg::SparseDiff(da), DownMsg::SparseDiff(db)) => assert_eq!(da, db),
            _ => panic!("expected sparse diffs"),
        }
        assert_eq!(a.current_model(), b.current_model());
    }

    #[test]
    #[should_panic(expected = "checkpoint M size")]
    fn restore_rejects_mismatched_checkpoint() {
        let part = part2();
        let ckpt = ServerCheckpoint {
            theta0: vec![0.0; 6],
            m: vec![0.0; 5],
            v: vec![],
            t: 0,
            prev: vec![],
        };
        MdtServer::restore(ckpt, part, Downlink::DenseModel);
    }
}
