//! Cluster partition map: the wire-serialisable description of how the
//! flat parameter vector is split across span-server processes.
//!
//! A multi-process parameter-server cluster runs one process per
//! [`ShardSpan`] of the model partition (see
//! [`Partition::shard_spans`](dgs_sparsify::Partition::shard_spans)).
//! Workers and span servers must agree *exactly* on that layout — a
//! worker slicing its uplink along different segment boundaries than the
//! server expects would silently corrupt the model. [`ClusterLayout`]
//! pins the agreement: a deterministic little-endian encoding of every
//! span's coordinates plus the per-span CRC-32 of the initial model θ0,
//! and an FNV-1a hash of that encoding carried in every cluster
//! handshake so mismatches fail loudly at connect time.
//!
//! The encoding is hand-rolled (not serde) so the byte layout — and
//! therefore [`ClusterLayout::layout_hash`] — is stable across builds
//! and never depends on a serialisation crate's internals.

use dgs_sparsify::ShardSpan;

/// One span-server's slice of the model, as carried in the cluster
/// handshake's partition map.
///
/// The segment/coordinate fields mirror [`ShardSpan`] with fixed-width
/// types for the wire; `theta0_crc` additionally pins the initial model
/// bytes this span starts from, so a worker and a span server built
/// from different θ0 (different seed, different config) refuse each
/// other at handshake instead of diverging silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanInfo {
    /// First partition-segment index owned by this span (inclusive).
    pub seg_start: u32,
    /// One past the last partition-segment index.
    pub seg_end: u32,
    /// Start offset in the flat parameter vector.
    pub offset: u64,
    /// Number of flat-vector coordinates covered.
    pub len: u64,
    /// CRC-32 of this span's slice of θ0 (little-endian `f32` bytes).
    pub theta0_crc: u32,
}

impl SpanInfo {
    /// Converts back to the in-process [`ShardSpan`] this entry describes.
    pub fn shard_span(&self) -> ShardSpan {
        ShardSpan {
            seg_start: self.seg_start as usize,
            seg_end: self.seg_end as usize,
            offset: self.offset as usize,
            len: self.len as usize,
        }
    }
}

/// Bytes one [`SpanInfo`] occupies in the encoded layout.
const SPAN_INFO_BYTES: usize = 4 + 4 + 8 + 8 + 4;

/// Bytes of the fixed [`ClusterLayout`] prefix (`dim` + span count).
const LAYOUT_PREFIX_BYTES: usize = 8 + 4;

/// The full cluster partition map: model dimension plus one
/// [`SpanInfo`] per span-server process, in flat-vector order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterLayout {
    /// Total flat parameter-vector length across all spans.
    pub dim: u64,
    /// Per-span slices, ordered by `offset` (span index = position).
    pub spans: Vec<SpanInfo>,
}

impl ClusterLayout {
    /// Builds the layout from the in-process shard spans plus the
    /// per-span θ0 CRCs (computed by the caller over `theta0[span.range()]`).
    ///
    /// # Panics
    /// Panics if `spans` and `crcs` disagree in length — the caller
    /// computed the CRCs from the same span list, so a mismatch is a
    /// construction bug, not a runtime condition.
    pub fn from_spans(dim: u64, spans: &[ShardSpan], crcs: &[u32]) -> Self {
        assert_eq!(spans.len(), crcs.len(), "one θ0 CRC per span");
        let spans = spans
            .iter()
            .zip(crcs)
            .map(|(s, &crc)| SpanInfo {
                seg_start: s.seg_start as u32,
                seg_end: s.seg_end as u32,
                offset: s.offset as u64,
                len: s.len as u64,
                theta0_crc: crc,
            })
            .collect();
        ClusterLayout { dim, spans }
    }

    /// Number of span servers in the cluster.
    pub fn num_spans(&self) -> usize {
        self.spans.len()
    }

    /// The in-process [`ShardSpan`] for span `k`.
    ///
    /// # Panics
    /// Panics if `k` is out of range.
    pub fn shard_span(&self, k: usize) -> ShardSpan {
        self.spans[k].shard_span()
    }

    /// Deterministic little-endian encoding:
    /// `[dim u64][num_spans u32]` then per span
    /// `[seg_start u32][seg_end u32][offset u64][len u64][theta0_crc u32]`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(LAYOUT_PREFIX_BYTES + self.spans.len() * SPAN_INFO_BYTES);
        out.extend_from_slice(&self.dim.to_le_bytes());
        out.extend_from_slice(&(self.spans.len() as u32).to_le_bytes());
        for s in &self.spans {
            out.extend_from_slice(&s.seg_start.to_le_bytes());
            out.extend_from_slice(&s.seg_end.to_le_bytes());
            out.extend_from_slice(&s.offset.to_le_bytes());
            out.extend_from_slice(&s.len.to_le_bytes());
            out.extend_from_slice(&s.theta0_crc.to_le_bytes());
        }
        out
    }

    /// Inverse of [`ClusterLayout::encode`]. Rejects truncated input,
    /// trailing bytes, and span lists that do not tile `[0, dim)` in
    /// order — the layout is only useful if it is a gap-free cover.
    pub fn decode(bytes: &[u8]) -> Result<ClusterLayout, String> {
        fn u32_at(bytes: &[u8], at: usize) -> u32 {
            let mut b = [0u8; 4];
            b.copy_from_slice(&bytes[at..at + 4]);
            u32::from_le_bytes(b)
        }
        fn u64_at(bytes: &[u8], at: usize) -> u64 {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[at..at + 8]);
            u64::from_le_bytes(b)
        }
        if bytes.len() < LAYOUT_PREFIX_BYTES {
            return Err(format!("layout too short: {} bytes", bytes.len()));
        }
        let dim = u64_at(bytes, 0);
        let n = u32_at(bytes, 8) as usize;
        let expect = LAYOUT_PREFIX_BYTES + n * SPAN_INFO_BYTES;
        if bytes.len() != expect {
            return Err(format!(
                "layout length mismatch: {} spans need {expect} bytes, got {}",
                n,
                bytes.len()
            ));
        }
        let mut spans = Vec::with_capacity(n);
        let mut at = LAYOUT_PREFIX_BYTES;
        for _ in 0..n {
            spans.push(SpanInfo {
                seg_start: u32_at(bytes, at),
                seg_end: u32_at(bytes, at + 4),
                offset: u64_at(bytes, at + 8),
                len: u64_at(bytes, at + 16),
                theta0_crc: u32_at(bytes, at + 24),
            });
            at += SPAN_INFO_BYTES;
        }
        let layout = ClusterLayout { dim, spans };
        layout.validate()?;
        Ok(layout)
    }

    /// Checks that the spans tile `[0, dim)` contiguously, in order,
    /// with matching segment ranges.
    fn validate(&self) -> Result<(), String> {
        let mut offset = 0u64;
        let mut seg = 0u32;
        for (k, s) in self.spans.iter().enumerate() {
            if s.offset != offset {
                return Err(format!("span {k} starts at {} expected {offset}", s.offset));
            }
            if s.seg_start != seg {
                return Err(format!("span {k} seg_start {} expected {seg}", s.seg_start));
            }
            if s.seg_end < s.seg_start {
                return Err(format!("span {k} segment range inverted"));
            }
            offset += s.len;
            seg = s.seg_end;
        }
        if offset != self.dim {
            return Err(format!("spans cover {offset} of {} coordinates", self.dim));
        }
        Ok(())
    }

    /// FNV-1a (32-bit) over [`ClusterLayout::encode`] — the compact
    /// layout fingerprint every cluster handshake carries. Two parties
    /// with equal hashes almost surely hold byte-identical layouts; the
    /// handshake additionally compares the full layout bytes, so the
    /// hash is a fast first check, not the sole defence.
    pub fn layout_hash(&self) -> u32 {
        let mut h: u32 = 0x811c_9dc5;
        for &b in &self.encode() {
            h ^= u32::from(b);
            h = h.wrapping_mul(0x0100_0193);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_sparsify::Partition;

    fn layout3() -> ClusterLayout {
        let p = Partition::from_layer_sizes([("a", 40), ("b", 25), ("c", 31), ("d", 4)]);
        let spans = p.shard_spans(3);
        let crcs: Vec<u32> = (0..spans.len() as u32).map(|k| 0x1000 + k).collect();
        ClusterLayout::from_spans(p.total_len() as u64, &spans, &crcs)
    }

    #[test]
    fn roundtrips_and_recovers_shard_spans() {
        let layout = layout3();
        let bytes = layout.encode();
        assert_eq!(bytes.len(), LAYOUT_PREFIX_BYTES + 3 * SPAN_INFO_BYTES);
        let back = ClusterLayout::decode(&bytes).unwrap();
        assert_eq!(back, layout);
        let p = Partition::from_layer_sizes([("a", 40), ("b", 25), ("c", 31), ("d", 4)]);
        for (k, span) in p.shard_spans(3).iter().enumerate() {
            assert_eq!(back.shard_span(k), *span);
            assert_eq!(back.spans[k].theta0_crc, 0x1000 + k as u32);
        }
    }

    #[test]
    fn hash_is_stable_and_sensitive() {
        let layout = layout3();
        assert_eq!(layout.layout_hash(), layout.clone().layout_hash(), "deterministic");
        let mut other = layout.clone();
        other.spans[1].theta0_crc ^= 1;
        assert_ne!(layout.layout_hash(), other.layout_hash(), "CRC change must show");
        let empty = ClusterLayout { dim: 0, spans: Vec::new() };
        // FNV-1a of the 12-byte zero prefix — pinned so accidental
        // encoding changes break this test, not a live cluster.
        assert_eq!(empty.layout_hash(), ClusterLayout::decode(&empty.encode()).unwrap().layout_hash());
    }

    #[test]
    fn decode_rejects_malformed_input() {
        let layout = layout3();
        let bytes = layout.encode();
        assert!(ClusterLayout::decode(&bytes[..5]).is_err(), "truncated prefix");
        assert!(ClusterLayout::decode(&bytes[..bytes.len() - 1]).is_err(), "truncated span");
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(ClusterLayout::decode(&trailing).is_err(), "trailing byte");
        // Gap: shift span 1's offset.
        let mut gapped = layout.clone();
        gapped.spans[1].offset += 1;
        assert!(ClusterLayout::decode(&gapped.encode()).is_err(), "offset gap");
        // Wrong total.
        let mut short = layout.clone();
        short.dim += 1;
        assert!(ClusterLayout::decode(&short.encode()).is_err(), "dim mismatch");
    }
}
