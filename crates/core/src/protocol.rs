//! Worker↔server messages with byte-exact wire sizes.
//!
//! Wire sizes drive both the traffic statistics and the DES transfer times,
//! so they follow the encodings exactly: dense vectors cost `4·n` bytes
//! plus the frame header, sparse updates cost what
//! [`SparseUpdate::wire_bytes`](dgs_sparsify::SparseUpdate::wire_bytes)
//! reports (4 bytes of header plus 8 per nonzero). These are not
//! estimates: `dgs-net` encodes every message to exactly these sizes
//! (`encode(msg).len() == msg.wire_bytes()`, enforced by a compile-time
//! assert on the header and per-variant codec tests), so simulated and
//! real traffic counters agree byte-for-byte.

use dgs_sparsify::{SparseUpdate, SparseVec, TernaryUpdate, TernaryVec};
use std::sync::Arc;

/// Fixed per-message framing overhead. This is the exact `dgs-net` frame
/// header: magic (4) + version (1) + msg type (1) + worker id (2) +
/// sequence (4) + payload length (4) + payload CRC-32 (4) = 20 bytes.
/// `dgs_net::frame` statically asserts its header length equals this
/// constant, so the two cannot drift apart.
pub const HEADER_BYTES: usize = 20;

/// Wire cost of the training-loss scalar carried by every uplink message
/// (an 8-byte f64 prefix of the payload). Real deployments ship this
/// metric too — it is how the coordinator plots training curves without a
/// second channel — so it is wire-counted.
pub const UP_LOSS_BYTES: usize = 8;

/// Payload of a worker→server message: the worker's (learning-rate-scaled)
/// model update for this iteration.
#[derive(Debug, Clone)]
pub enum UpPayload {
    /// Dense update — vanilla ASGD.
    Dense(Vec<f32>),
    /// Sparse Top-k update — GD-async / DGC-async / DGS.
    Sparse(SparseUpdate),
    /// Ternary-quantized sparse update — the DGS × TernGrad combination
    /// the paper lists as future work (§6).
    TernarySparse(TernaryUpdate),
}

impl UpPayload {
    /// Exact bytes this payload occupies on the wire.
    pub fn wire_bytes(&self) -> usize {
        match self {
            UpPayload::Dense(v) => HEADER_BYTES + 4 * v.len(),
            UpPayload::Sparse(s) => HEADER_BYTES + s.wire_bytes(),
            UpPayload::TernarySparse(t) => HEADER_BYTES + t.wire_bytes(),
        }
    }

    /// Number of update coordinates carried.
    pub fn nnz(&self) -> usize {
        match self {
            UpPayload::Dense(v) => v.len(),
            UpPayload::Sparse(s) => s.nnz(),
            UpPayload::TernarySparse(t) => t.nnz(),
        }
    }

    /// Borrows the full payload as an [`UpPayloadView`] covering every
    /// partition segment.
    pub fn view(&self) -> UpPayloadView<'_> {
        match self {
            UpPayload::Dense(v) => UpPayloadView::Dense(v),
            UpPayload::Sparse(s) => UpPayloadView::Sparse(&s.chunks),
            UpPayload::TernarySparse(t) => UpPayloadView::TernarySparse(&t.chunks),
        }
    }
}

/// A borrowed slice of an [`UpPayload`].
///
/// The sharded server splits one uplink across shards without copying:
/// sparse and ternary payloads carry one chunk per partition segment and
/// shards own whole segments, so a shard's share is a contiguous
/// chunk-slice; a dense payload's share is the flat sub-range. The
/// single-lock server passes the whole payload through
/// [`UpPayload::view`]. Views carry no wire accounting — byte counters
/// are always charged against the full owned payload.
#[derive(Debug, Clone, Copy)]
pub enum UpPayloadView<'a> {
    /// A dense coordinate range.
    Dense(&'a [f32]),
    /// Per-segment sparse chunks (segment-local `u32` indices).
    Sparse(&'a [SparseVec]),
    /// Per-segment ternary-quantized chunks.
    TernarySparse(&'a [TernaryVec]),
}

/// A worker→server message.
#[derive(Debug, Clone)]
pub struct UpMsg {
    /// The model update.
    pub payload: UpPayload,
    /// Minibatch training loss, shipped as an 8-byte payload prefix
    /// (counted via [`UP_LOSS_BYTES`]).
    pub train_loss: f64,
}

impl UpMsg {
    /// Exact bytes on the wire (payload + loss prefix; the frame header is
    /// inside the payload's accounting).
    pub fn wire_bytes(&self) -> usize {
        self.payload.wire_bytes() + UP_LOSS_BYTES
    }
}

/// A server→worker message.
#[derive(Debug, Clone)]
pub enum DownMsg {
    /// The entire global model, dense — vanilla ASGD's downlink. Shared
    /// (`Arc`) so the server replies with a refcount bump instead of an
    /// O(dim) clone per round; wire accounting still charges the full
    /// dense payload.
    DenseModel(Arc<Vec<f32>>),
    /// The model difference `G = M − v_k`, sparse-encoded — the
    /// model-difference-tracking downlink (with or without secondary
    /// compression).
    SparseDiff(SparseUpdate),
}

impl DownMsg {
    /// Exact bytes on the wire.
    pub fn wire_bytes(&self) -> usize {
        match self {
            DownMsg::DenseModel(v) => HEADER_BYTES + 4 * v.len(),
            DownMsg::SparseDiff(s) => HEADER_BYTES + s.wire_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_sparsify::Partition;

    #[test]
    fn header_matches_frame_layout() {
        // magic + version + type + worker + seq + len + crc — the dgs-net
        // frame header, also statically asserted in dgs_net::frame.
        assert_eq!(HEADER_BYTES, 4 + 1 + 1 + 2 + 4 + 4 + 4);
        assert_eq!(UP_LOSS_BYTES, std::mem::size_of::<f64>());
    }

    #[test]
    fn dense_up_bytes() {
        let up = UpMsg { payload: UpPayload::Dense(vec![0.0; 100]), train_loss: 1.0 };
        assert_eq!(up.wire_bytes(), HEADER_BYTES + UP_LOSS_BYTES + 400);
        assert_eq!(up.payload.nnz(), 100);
    }

    #[test]
    fn sparse_up_bytes_match_encoder() {
        let flat: Vec<f32> = (0..50).map(|i| i as f32 - 25.0).collect();
        let part = Partition::single(50);
        let s = SparseUpdate::from_topk(&flat, &part, 0.1);
        let expect = HEADER_BYTES + UP_LOSS_BYTES + s.wire_bytes();
        let up = UpMsg { payload: UpPayload::Sparse(s), train_loss: 0.0 };
        assert_eq!(up.wire_bytes(), expect);
    }

    #[test]
    fn down_variants_bytes() {
        let dense = DownMsg::DenseModel(Arc::new(vec![0.0; 10]));
        assert_eq!(dense.wire_bytes(), HEADER_BYTES + 40);
        let part = Partition::single(10);
        let sparse = DownMsg::SparseDiff(SparseUpdate::from_nonzero(&[0.0; 10], &part));
        // Empty sparse diff: update header (4) + one empty chunk (4).
        assert_eq!(sparse.wire_bytes(), HEADER_BYTES + 8);
    }

    #[test]
    fn sparse_down_smaller_than_dense_for_sparse_content() {
        let mut flat = vec![0.0f32; 1000];
        flat[3] = 1.0;
        flat[500] = -2.0;
        let part = Partition::single(1000);
        let sparse = DownMsg::SparseDiff(SparseUpdate::from_nonzero(&flat, &part));
        let dense = DownMsg::DenseModel(Arc::new(flat));
        assert!(sparse.wire_bytes() < dense.wire_bytes() / 10);
    }
}
