//! The lock-striped sharded MDT server.
//!
//! [`ShardedMdtServer`] splits one [`MdtServer`] into independent shards
//! along [`Partition`] segment boundaries ([`Partition::shard_spans`]):
//! each shard is a complete `MdtServer` over its own sub-partition — its
//! slice of `θ_0`, `M`, every `v_k`, its own bounded update log, dirty
//! sets, and buffer-pool scratch — behind its own lock. Concurrent worker
//! requests that land on different shards (or the same shard at different
//! times) proceed without a global critical section; the only shared
//! mutable state is a tiny *front* lock holding the global clock, worker
//! cursors, and staleness statistics, held just long enough to stamp the
//! update.
//!
//! # Bitwise equivalence with the single-lock server
//!
//! For any pinned schedule (updates applied in a fixed order) the sharded
//! server's replies are **bitwise identical** to the global
//! [`MdtServer`]'s, by construction:
//!
//! * Uplink chunks map 1:1 onto partition segments and shards own whole
//!   segments, so splitting an update is slicing its chunk array — no
//!   index arithmetic, no re-encoding.
//! * Each shard applies the same `m[i] −= scale·g[i]` and emits the same
//!   `m[i] − v[i]` subtractions over the same segments as the global
//!   server; concatenating shard chunk-lists in shard order reproduces
//!   the global per-segment chunk order exactly.
//! * The damping scale is computed **once** at the front from the global
//!   clock and passed to every shard ([`MdtServer::handle_scaled`]).
//!   Shard-local clocks advance once per update — every update visits
//!   every shard, possibly with empty chunks — so under sequential replay
//!   each shard clock equals the global clock and per-shard staleness
//!   bookkeeping (log coverage, cursor math) matches the global server's.
//! * Every remaining per-shard decision (log merge vs dense fallback,
//!   selection engine, density hysteresis) is payload-invariant, so
//!   shards diverging from the global server's *cost* choices cannot
//!   change the wire bytes. `tests/shard_equivalence.rs` proves all of
//!   this by differential replay.
//!
//! Under real concurrency the interleaving of updates is nondeterministic
//! (as it already is for the single-lock server), but each shard still
//! serializes its own state, so every interleaving is *some* valid
//! sequential schedule and the MDT tracking invariant
//! (`θ_worker = θ_0 + v_k`) holds coordinatewise.
//!
//! # Deadlock freedom
//!
//! Shard locks are only ever taken one at a time by the rayon fan-out
//! closures; no code path holds two shard locks. Shards run with
//! [`MdtServer::set_par_segments`] off, so a thread holding a shard lock
//! never reaches a rayon join point where work-stealing could hand it a
//! sibling task that blocks on another shard. The front lock is released
//! before any shard lock is taken.

use crate::protocol::{DownMsg, UpMsg, UpPayload, UpPayloadView};
use crate::server::{DiffStrategy, Downlink, MdtServer, ServerMemoryReport, StalenessDamping};
use crate::PAR_THRESHOLD;
use dgs_psim::StalenessStats;
use dgs_sparsify::{Kernel, Partition, SelectStrategy, ShardSpan, SparseUpdate};
use rayon::prelude::*;
use std::sync::{Arc, Mutex, MutexGuard};

/// Global bookkeeping shared by all shards: the Alg. 2 clock and worker
/// cursors, which exist once per server, not once per shard. Guarded by
/// its own short-lived lock — never held while a shard lock is held.
struct Front {
    /// Global timestamp `t` (updates applied).
    t: u64,
    /// `prev(k)`: global timestamp of the last delivery to worker k.
    prev: Vec<u64>,
    staleness: StalenessStats,
    damping: StalenessDamping,
}

/// A lock-striped [`MdtServer`]: same algorithm, same wire bytes,
/// per-shard locks instead of one global critical section. See the
/// module docs for the equivalence and deadlock-freedom arguments.
pub struct ShardedMdtServer {
    shards: Vec<Mutex<MdtServer>>,
    spans: Vec<ShardSpan>,
    front: Mutex<Front>,
    partition: Partition,
    downlink: Downlink,
    dim: usize,
}

impl ShardedMdtServer {
    /// Creates a server striped over at most `max_shards` locks (capped by
    /// the partition's segment count; `1` reproduces the global server
    /// behind a single lock).
    pub fn new(
        theta0: Vec<f32>,
        partition: Partition,
        workers: usize,
        downlink: Downlink,
        max_shards: usize,
    ) -> Self {
        partition.check_covers(&theta0);
        assert!(partition.num_segments() > 0, "sharded server needs at least one segment");
        let dim = theta0.len();
        let spans = partition.shard_spans(max_shards);
        let shards = spans
            .iter()
            .map(|span| {
                let sub = partition.subpartition(span);
                let mut shard =
                    MdtServer::new(theta0[span.range()].to_vec(), sub, workers, downlink);
                shard.set_par_segments(false);
                Mutex::new(shard)
            })
            .collect();
        ShardedMdtServer {
            shards,
            spans,
            front: Mutex::new(Front {
                t: 0,
                prev: vec![0; workers],
                staleness: StalenessStats::new(),
                damping: StalenessDamping::off(),
            }),
            partition,
            downlink,
            dim,
        }
    }

    /// Locks the front counters. A poisoned lock is recovered rather
    /// than propagated: a sibling update's panic must not take down
    /// every connection thread with it. The poison flag itself is left
    /// set, so [`Self::poisoned`] keeps reporting the damage and
    /// transport handlers answer with an error frame instead of
    /// serving torn state.
    fn lock_front(&self) -> MutexGuard<'_, Front> {
        self.front.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Locks shard `i`; recovers a poisoned lock (see [`Self::lock_front`]).
    fn lock_shard(&self, i: usize) -> MutexGuard<'_, MdtServer> {
        self.shards[i].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of shards actually created.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of parameters.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The shard layout over the partition.
    pub fn spans(&self) -> &[ShardSpan] {
        &self.spans
    }

    /// Global server timestamp `t` (updates applied so far).
    pub fn timestamp(&self) -> u64 {
        self.lock_front().t
    }

    /// Snapshot of the observed staleness statistics.
    pub fn staleness(&self) -> StalenessStats {
        self.lock_front().staleness.clone()
    }

    /// Enables gap-aware staleness damping (see [`StalenessDamping`]).
    pub fn set_damping(&mut self, damping: StalenessDamping) {
        self.front.get_mut().expect("front lock poisoned").damping = damping;
    }

    /// Selects the secondary-compression Top-k engine on every shard
    /// (payload-invariant, see [`MdtServer::set_select_strategy`]).
    pub fn set_select_strategy(&mut self, select: SelectStrategy) {
        for shard in &mut self.shards {
            shard.get_mut().expect("shard lock poisoned").set_select_strategy(select);
        }
    }

    /// Selects the diff-construction strategy on every shard
    /// (payload-invariant, see [`MdtServer::set_diff_strategy`]).
    pub fn set_diff_strategy(&mut self, strategy: DiffStrategy) {
        for shard in &mut self.shards {
            shard.get_mut().expect("shard lock poisoned").set_diff_strategy(strategy);
        }
    }

    /// Selects the compute backend on every shard (payload-invariant, see
    /// [`MdtServer::set_kernel`]).
    pub fn set_kernel(&mut self, kernel: Kernel) {
        for shard in &mut self.shards {
            shard.get_mut().expect("shard lock poisoned").set_kernel(kernel);
        }
    }

    /// Splits a total update-log budget across shards proportionally to
    /// their coordinate share, using largest-remainder apportionment so
    /// the per-shard capacities sum to exactly `capacity` — the sharded
    /// `--server-log-nnz` budget (and the `memory_report` accounting
    /// built on it) means the same thing it does on the global server.
    /// See [`apportion_log_capacity`] for the one documented exception
    /// (`capacity < num_shards`). `0` restores each shard's automatic
    /// default of one index per owned coordinate — summed over shards
    /// that equals the global default.
    pub fn set_log_capacity(&mut self, capacity: usize) {
        let caps = if capacity == 0 {
            vec![0; self.shards.len()]
        } else {
            apportion_log_capacity(capacity, &self.spans, self.dim)
        };
        for (shard, cap) in self.shards.iter_mut().zip(caps) {
            shard.get_mut().expect("shard lock poisoned").set_log_capacity(cap);
        }
    }

    /// Has any lock been poisoned by a panicking update? Transport
    /// handlers check this to answer with an error frame instead of
    /// propagating the panic into a connection thread.
    pub fn poisoned(&self) -> bool {
        self.front.is_poisoned() || self.shards.iter().any(|s| s.is_poisoned())
    }

    /// Concatenation of the shards' initial models — the global `θ_0`,
    /// used by the cross-process handshake fingerprint.
    pub fn theta0(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.dim);
        for si in 0..self.shards.len() {
            out.extend_from_slice(self.lock_shard(si).theta0());
        }
        out
    }

    /// The current global model `θ_t = θ_0 + M_t`, shard slices
    /// concatenated in shard order. Shards are locked one at a time, so a
    /// concurrent snapshot is a *consistent cut* per shard, not across
    /// shards — same guarantee evals already had under the global lock,
    /// where updates could land between the reply and the eval.
    pub fn current_model(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.dim);
        for si in 0..self.shards.len() {
            out.extend(self.lock_shard(si).current_model());
        }
        out
    }

    /// Processes one worker update and produces the reply — identical
    /// wire bytes to [`MdtServer::handle_update`] for the same schedule.
    /// Also returns the global timestamp stamped on this update, so
    /// callers can trigger cadence work (evals) exactly once per tick
    /// without re-locking the front.
    pub fn handle_update_timed(&self, worker: usize, up: &UpMsg) -> (DownMsg, u64) {
        let (scale, t) = {
            let mut front = self.lock_front();
            let staleness = front.t - front.prev[worker];
            let scale = front.damping.scale(staleness);
            front.t += 1;
            front.prev[worker] = front.t;
            front.staleness.record(staleness);
            (scale, front.t)
        };
        let replies = self.fan_out(worker, &up.payload, scale);
        (self.assemble(replies), t)
    }

    /// [`ShardedMdtServer::handle_update_timed`] without the timestamp.
    pub fn handle_update(&self, worker: usize, up: &UpMsg) -> DownMsg {
        self.handle_update_timed(worker, up).0
    }

    /// Applies one update to every shard and collects the per-shard
    /// replies in shard order. Rayon carries the fan-out for large models;
    /// each closure takes exactly one shard lock (see module docs).
    fn fan_out(&self, worker: usize, payload: &UpPayload, scale: f32) -> Vec<DownMsg> {
        let run = |si: usize| -> DownMsg {
            let span = &self.spans[si];
            let view = match payload {
                UpPayload::Dense(g) => UpPayloadView::Dense(&g[span.range()]),
                UpPayload::Sparse(s) => UpPayloadView::Sparse(&s.chunks[span.seg_range()]),
                UpPayload::TernarySparse(t) => {
                    UpPayloadView::TernarySparse(&t.chunks[span.seg_range()])
                }
            };
            self.lock_shard(si).handle_scaled(worker, view, scale)
        };
        if self.shards.len() > 1 && self.dim >= PAR_THRESHOLD {
            (0..self.shards.len()).into_par_iter().map(run).collect()
        } else {
            (0..self.shards.len()).map(run).collect()
        }
    }

    /// Concatenates per-shard replies into the global reply. Shard order
    /// equals segment order, so sparse chunk-lists concatenate into
    /// exactly the global server's chunk layout and dense slices into the
    /// global model.
    fn assemble(&self, replies: Vec<DownMsg>) -> DownMsg {
        // A shard replying the wrong shape is impossible by construction —
        // every shard shares the global downlink config — so the odd arm
        // is contained as a no-op fold (debug builds assert) rather than
        // a panic on a connection thread.
        match self.downlink {
            Downlink::DenseModel => {
                let mut model = Vec::with_capacity(self.dim);
                for reply in replies {
                    match reply {
                        DownMsg::DenseModel(m) => model.extend_from_slice(&m),
                        DownMsg::SparseDiff(_) => {
                            debug_assert!(false, "dense downlink shard replied sparse");
                        }
                    }
                }
                DownMsg::DenseModel(Arc::new(model))
            }
            Downlink::ModelDifference { .. } => {
                let mut chunks = Vec::with_capacity(self.partition.num_segments());
                for reply in replies {
                    match reply {
                        DownMsg::SparseDiff(d) => chunks.extend(d.chunks),
                        DownMsg::DenseModel(_) => {
                            debug_assert!(false, "diff downlink shard replied dense");
                        }
                    }
                }
                DownMsg::SparseDiff(SparseUpdate { chunks })
            }
        }
    }

    /// Recovery path for a worker whose reply was lost (see
    /// [`MdtServer::resync_worker`]): full current model, per-shard
    /// tracking reset, cursor advanced to now.
    ///
    /// The front cursor `prev[worker]` is recorded *after* the shard
    /// sweep, so updates from other workers that land mid-sweep are
    /// counted as delivered rather than left to inflate this worker's
    /// next staleness reading. The accounting is still approximate
    /// around a concurrent resync — a shard locked early in the sweep
    /// serves a slightly older slice than the final cursor claims — but
    /// the skew is bounded by the sweep itself, affects only the
    /// staleness statistics and damping input, and never the wire bytes
    /// or the per-shard tracking state (each shard resets its own `v_k`
    /// under its own lock). Under sequential replay no update can land
    /// mid-sweep, so this is bitwise identical to the global server.
    pub fn resync_worker(&self, worker: usize) -> DownMsg {
        let mut model = Vec::with_capacity(self.dim);
        for si in 0..self.shards.len() {
            let m = self.lock_shard(si).resync_model(worker);
            model.extend_from_slice(&m);
        }
        {
            let mut front = self.lock_front();
            let t = front.t;
            front.prev[worker] = t;
        }
        DownMsg::DenseModel(Arc::new(model))
    }

    /// §5.6.2 memory accounting summed over shards (the front lock's
    /// cursors are negligible and uncounted, as `prev` already was in the
    /// global server).
    pub fn memory_report(&self) -> ServerMemoryReport {
        let mut total = ServerMemoryReport {
            model_bytes: 0,
            tracking_bytes: 0,
            log_bytes: 0,
            pending_bytes: 0,
            cache_bytes: 0,
            workers: self.lock_front().prev.len(),
        };
        for si in 0..self.shards.len() {
            let rep = self.lock_shard(si).memory_report();
            total.model_bytes += rep.model_bytes;
            total.tracking_bytes += rep.tracking_bytes;
            total.log_bytes += rep.log_bytes;
            total.pending_bytes += rep.pending_bytes;
            total.cache_bytes += rep.cache_bytes;
        }
        total
    }
}

/// Largest-remainder apportionment of a total update-log budget over the
/// shard spans: each shard's quota `capacity·len/dim` is floored, then
/// the rounding shortfall goes one slot at a time to the largest
/// fractional remainders (ties broken by lower shard index), so the
/// per-shard capacities sum to **exactly** `capacity` — naive per-shard
/// flooring can drift by up to `num_shards − 1` slots, which would make
/// the sharded memory budget incomparable to the global server's in the
/// 1:1 benchmarks.
///
/// One deviation remains: a shard cannot be handed an explicit `0`
/// (that means "automatic default" downstream), so shards whose quota
/// rounds to zero are raised to one slot, paid for by shaving the
/// largest allocations. Only when `capacity < num_shards` is that debt
/// unpayable and the sum becomes `num_shards` instead of `capacity`.
fn apportion_log_capacity(capacity: usize, spans: &[ShardSpan], dim: usize) -> Vec<usize> {
    let dim = dim.max(1);
    let mut caps: Vec<usize> = spans.iter().map(|s| capacity * s.len / dim).collect();
    // Σ floor(c·len_i/dim) undershoots `capacity` by at most n−1, so one
    // pass over the remainder-sorted order settles the shortfall.
    let shortfall = capacity.saturating_sub(caps.iter().sum());
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(capacity * spans[i].len % dim), i));
    for &i in order.iter().take(shortfall) {
        caps[i] += 1;
    }
    let mut debt = 0usize;
    for c in caps.iter_mut() {
        if *c == 0 {
            *c = 1;
            debt += 1;
        }
    }
    while debt > 0 {
        // Shave the largest allocation (ties to the lower index) without
        // creating a new zero.
        let donor = caps
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 1)
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
            .map(|(i, _)| i);
        match donor {
            Some(i) => {
                caps[i] -= 1;
                debt -= 1;
            }
            // capacity < num_shards: every shard keeps its single slot.
            None => break,
        }
    }
    caps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::UpPayload;
    use dgs_sparsify::{SparseUpdate, TernaryUpdate};
    use std::sync::Arc;
    use std::thread;

    fn part4() -> Partition {
        Partition::from_layer_sizes([("a", 13), ("b", 7), ("c", 20), ("d", 9)])
    }

    fn sparse_up(part: &Partition, flat: &[f32]) -> UpMsg {
        UpMsg {
            payload: UpPayload::Sparse(SparseUpdate::from_nonzero(flat, part)),
            train_loss: 0.0,
        }
    }

    /// Replays one pinned schedule through the global server and sharded
    /// servers at several stripe counts, asserting every reply is bitwise
    /// identical on the wire. The heavyweight cross-method version lives
    /// in `tests/shard_equivalence.rs`; this is the in-crate smoke.
    #[test]
    fn sharded_replay_is_bitwise_identical() {
        let part = part4();
        let dim = part.total_len();
        let downlink = Downlink::ModelDifference { secondary_ratio: Some(0.1) };
        let mut global = MdtServer::new(vec![0.0; dim], part.clone(), 3, downlink);
        let sharded: Vec<ShardedMdtServer> = [2, 3, 4]
            .iter()
            .map(|&n| ShardedMdtServer::new(vec![0.0; dim], part.clone(), 3, downlink, n))
            .collect();
        for step in 0..60 {
            let w = (step * 2) % 3;
            let mut g = vec![0.0f32; dim];
            for j in 0..5 {
                g[(step * 11 + j * 7 + w) % dim] = ((step * 31 + j * 13 + w) as f32 * 0.37).sin();
            }
            let up = sparse_up(&part, &g);
            let reference = match global.handle_update(w, &up) {
                DownMsg::SparseDiff(d) => d.encode(),
                _ => panic!("expected sparse diff"),
            };
            for (si, s) in sharded.iter().enumerate() {
                let (reply, t) = s.handle_update_timed(w, &up);
                assert_eq!(t, global.timestamp(), "clock diverges");
                match reply {
                    DownMsg::SparseDiff(d) => {
                        assert_eq!(
                            d.encode(),
                            reference,
                            "step {step}: sharded[{si}] payload diverges"
                        );
                    }
                    _ => panic!("expected sparse diff"),
                }
            }
        }
        for s in &sharded {
            assert_eq!(s.current_model(), global.current_model(), "models diverge");
            assert_eq!(s.staleness().count(), global.staleness().count());
            assert_eq!(s.staleness().max(), global.staleness().max());
        }
    }

    #[test]
    fn sharded_dense_downlink_matches_global() {
        let part = part4();
        let dim = part.total_len();
        let mut global = MdtServer::new(vec![0.25; dim], part.clone(), 2, Downlink::DenseModel);
        let sharded =
            ShardedMdtServer::new(vec![0.25; dim], part.clone(), 2, Downlink::DenseModel, 3);
        for step in 0..20 {
            let g: Vec<f32> = (0..dim).map(|i| ((step * 17 + i) as f32 * 0.23).cos()).collect();
            let up = UpMsg { payload: UpPayload::Dense(g), train_loss: 0.0 };
            let w = step % 2;
            let (ra, rb) = (global.handle_update(w, &up), sharded.handle_update(w, &up));
            match (ra, rb) {
                (DownMsg::DenseModel(a), DownMsg::DenseModel(b)) => {
                    let a: Vec<u32> = a.iter().map(|x| x.to_bits()).collect();
                    let b: Vec<u32> = b.iter().map(|x| x.to_bits()).collect();
                    assert_eq!(a, b, "step {step}: dense models diverge");
                }
                _ => panic!("expected dense models"),
            }
        }
    }

    #[test]
    fn sharded_ternary_and_resync_match_global() {
        let part = part4();
        let dim = part.total_len();
        let downlink = Downlink::ModelDifference { secondary_ratio: None };
        let mut global = MdtServer::new(vec![0.0; dim], part.clone(), 2, downlink);
        let sharded = ShardedMdtServer::new(vec![0.0; dim], part.clone(), 2, downlink, 4);
        for step in 0..24 {
            let mut g = vec![0.0f32; dim];
            for j in 0..6 {
                g[(step * 7 + j * 5) % dim] = ((step + j) as f32 * 0.41).sin();
            }
            let up = UpMsg {
                payload: UpPayload::TernarySparse(TernaryUpdate::quantize(
                    &SparseUpdate::from_topk(&g, &part, 0.2),
                    step as u64,
                )),
                train_loss: 0.0,
            };
            let w = step % 2;
            let (ra, rb) = (global.handle_update(w, &up), sharded.handle_update(w, &up));
            match (ra, rb) {
                (DownMsg::SparseDiff(a), DownMsg::SparseDiff(b)) => {
                    assert_eq!(a.encode(), b.encode(), "step {step}: ternary replies diverge");
                }
                _ => panic!("expected sparse diffs"),
            }
            if step == 11 {
                let (ra, rb) = (global.resync_worker(1), sharded.resync_worker(1));
                match (ra, rb) {
                    (DownMsg::DenseModel(a), DownMsg::DenseModel(b)) => {
                        assert_eq!(a.as_slice(), b.as_slice(), "resync models diverge");
                    }
                    _ => panic!("expected dense resync"),
                }
            }
        }
        assert_eq!(sharded.memory_report().model_bytes, global.memory_report().model_bytes);
        assert_eq!(sharded.memory_report().tracking_bytes, global.memory_report().tracking_bytes);
    }

    /// Multi-worker contention smoke (the target of the TSan CI job): real
    /// threads hammer one sharded server, then the MDT tracking invariant
    /// is checked bitwise. All update values are dyadic (±0.5/±1.0/±2.0)
    /// and damping is off, so every f32 accumulation is exact and
    /// order-independent — the final check does not depend on the
    /// nondeterministic interleaving.
    #[test]
    fn concurrent_updates_preserve_mdt_invariant() {
        let workers = 4;
        let rounds = 25;
        let part = Partition::from_layer_sizes([("a", 40), ("b", 25), ("c", 31)]);
        let dim = part.total_len();
        let theta0 = vec![0.5f32; dim];
        let server = Arc::new(ShardedMdtServer::new(
            theta0.clone(),
            part.clone(),
            workers,
            Downlink::ModelDifference { secondary_ratio: None },
            3,
        ));
        let models: Vec<Vec<f32>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let server = Arc::clone(&server);
                    let part = part.clone();
                    let mut model = theta0.clone();
                    scope.spawn(move || {
                        let vals = [1.0f32, -0.5, 2.0, -1.0, 0.5, -2.0];
                        for round in 0..rounds {
                            let mut g = vec![0.0f32; dim];
                            for j in 0..4 {
                                g[(round * 13 + j * 29 + w * 7) % dim] =
                                    vals[(round + j + w) % vals.len()];
                            }
                            let reply = server.handle_update(w, &sparse_up(&part, &g));
                            match reply {
                                DownMsg::SparseDiff(d) => d.apply_add(&mut model, &part, 1.0),
                                _ => panic!("expected sparse diff"),
                            }
                        }
                        model
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
        });
        assert_eq!(server.timestamp(), (workers * rounds) as u64);
        assert_eq!(server.staleness().count(), (workers * rounds) as u64);
        // Drain each worker sequentially: after a zero update the reply
        // delivers M − v_k, landing the local model exactly on θ_0 + M.
        let zero = vec![0.0f32; dim];
        let reference = server.current_model();
        for (w, mut model) in models.into_iter().enumerate() {
            match server.handle_update(w, &sparse_up(&part, &zero)) {
                DownMsg::SparseDiff(d) => d.apply_add(&mut model, &part, 1.0),
                _ => panic!("expected sparse diff"),
            }
            let got: Vec<u32> = model.iter().map(|x| x.to_bits()).collect();
            let want: Vec<u32> = reference.iter().map(|x| x.to_bits()).collect();
            assert_eq!(got, want, "worker {w} model diverges from server");
        }
    }

    /// Same smoke through the rayon fan-out path (dim ≥ PAR_THRESHOLD):
    /// shard locks inside rayon tasks must not deadlock or race.
    #[test]
    fn concurrent_updates_with_rayon_fanout() {
        let workers = 3;
        let rounds = 6;
        let seg = PAR_THRESHOLD / 2;
        let part = Partition::from_layer_sizes([("a", seg), ("b", seg), ("c", seg), ("d", seg)]);
        let dim = part.total_len();
        let server = Arc::new(ShardedMdtServer::new(
            vec![0.0f32; dim],
            part.clone(),
            workers,
            Downlink::ModelDifference { secondary_ratio: None },
            4,
        ));
        thread::scope(|scope| {
            for w in 0..workers {
                let server = Arc::clone(&server);
                let part = part.clone();
                scope.spawn(move || {
                    for round in 0..rounds {
                        let mut g = vec![0.0f32; dim];
                        for j in 0..64 {
                            g[(round * 4099 + j * 257 + w * 31) % dim] = 1.0;
                        }
                        server.handle_update(w, &sparse_up(&part, &g));
                    }
                });
            }
        });
        assert_eq!(server.timestamp(), (workers * rounds) as u64);
        assert!(!server.poisoned());
    }

    #[test]
    fn single_shard_degenerates_to_global() {
        let part = part4();
        let dim = part.total_len();
        let s = ShardedMdtServer::new(vec![0.0; dim], part, 1, Downlink::DenseModel, 1);
        assert_eq!(s.num_shards(), 1);
        assert_eq!(s.dim(), dim);
        assert_eq!(s.spans()[0].range(), 0..dim);
    }

    #[test]
    fn log_capacity_split_is_proportional_and_nonzero() {
        let part = Partition::from_layer_sizes([("a", 100), ("b", 1), ("c", 100)]);
        let mut s = ShardedMdtServer::new(
            vec![0.0; 201],
            part,
            1,
            Downlink::ModelDifference { secondary_ratio: None },
            3,
        );
        // Must not panic and must leave every shard with a usable log —
        // apportionment raises a tiny shard's zero quota to one slot.
        s.set_log_capacity(10);
        s.set_log_capacity(0);
        s.set_damping(StalenessDamping { alpha: 0.5 });
        s.set_select_strategy(SelectStrategy::Comparator);
        s.set_diff_strategy(DiffStrategy::DenseScan);
        assert!(!s.poisoned());
    }

    /// Per-shard log capacities must sum to exactly the requested budget
    /// (the 1:1 sharded-vs-global memory comparisons depend on it), with
    /// the single documented exception of `capacity < num_shards`.
    #[test]
    fn log_capacity_apportionment_sums_exactly() {
        // Many tiny segments: naive flooring with a per-shard `.max(1)`
        // floor would overshoot (8×1 for small budgets) or undershoot
        // (dropped remainders for large ones).
        let tiny = Partition::from_layer_sizes([
            ("a", 3),
            ("b", 2),
            ("c", 3),
            ("d", 2),
            ("e", 3),
            ("f", 2),
            ("g", 3),
            ("h", 2),
        ]);
        let spans = tiny.shard_spans(8);
        assert_eq!(spans.len(), 8);
        for capacity in [8usize, 9, 13, 20, 100, 1_000_003] {
            let caps = apportion_log_capacity(capacity, &spans, tiny.total_len());
            assert_eq!(caps.iter().sum::<usize>(), capacity, "budget {capacity} drifted");
            assert!(caps.iter().all(|&c| c >= 1), "budget {capacity} left a zero shard");
        }
        // Skewed spans stay proportional: the big shards carry the bulk,
        // the one-coordinate shard still gets its floor slot.
        let skew = Partition::from_layer_sizes([("a", 100), ("b", 1), ("c", 100)]);
        let spans = skew.shard_spans(3);
        let caps = apportion_log_capacity(11, &spans, skew.total_len());
        assert_eq!(caps.iter().sum::<usize>(), 11);
        assert_eq!(caps[1], 1);
        assert!(caps[0].abs_diff(caps[2]) <= 1, "equal spans must split evenly: {caps:?}");
        // Documented deviation: fewer slots than shards — every shard
        // keeps one (an explicit 0 would mean "automatic default"), so
        // the sum is num_shards, not capacity.
        assert_eq!(apportion_log_capacity(2, &spans, skew.total_len()), vec![1, 1, 1]);
    }
}
