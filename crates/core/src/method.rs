//! The five training methods and their technique matrix (paper Table 5).

use serde::{Deserialize, Serialize};

/// A training method evaluated in the paper.
///
/// ```
/// use dgs_core::method::Method;
///
/// let m: Method = "dgs".parse().unwrap();
/// assert_eq!(m, Method::Dgs);
/// assert!(m.uses_model_difference());
/// assert_eq!(m.techniques().momentum, "SAMomentum");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Single-node momentum SGD — the accuracy baseline.
    Msgd,
    /// Vanilla asynchronous SGD: dense gradients up, dense model down.
    Asgd,
    /// Gradient Dropping made asynchronous via model-difference tracking
    /// (Alg. 1): Top-k up, residual accumulation, no momentum.
    GdAsync,
    /// Deep Gradient Compression made asynchronous: Top-k with momentum
    /// correction, momentum factor masking, warm-up ramp, and clipping.
    DgcAsync,
    /// The paper's method: dual-way sparsification with SAMomentum (Alg. 3).
    Dgs,
}

impl Method {
    /// All methods, in the paper's presentation order.
    pub const ALL: [Method; 5] =
        [Method::Msgd, Method::Asgd, Method::GdAsync, Method::DgcAsync, Method::Dgs];

    /// The asynchronous methods (everything but the single-node baseline).
    pub const ASYNC: [Method; 4] = [Method::Asgd, Method::GdAsync, Method::DgcAsync, Method::Dgs];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Msgd => "MSGD",
            Method::Asgd => "ASGD",
            Method::GdAsync => "GD-async",
            Method::DgcAsync => "DGC-async",
            Method::Dgs => "DGS",
        }
    }

    /// Whether the uplink is Top-k sparsified.
    pub fn sparsifies_uplink(&self) -> bool {
        !matches!(self, Method::Msgd | Method::Asgd)
    }

    /// Whether the downlink uses model-difference tracking (sparse).
    pub fn uses_model_difference(&self) -> bool {
        self.sparsifies_uplink()
    }

    /// Table 5 row: the set of techniques the method combines.
    pub fn techniques(&self) -> TechniqueRow {
        match self {
            Method::Msgd => TechniqueRow {
                method: self.name(),
                sparsification: "none",
                momentum: "vanilla",
                momentum_correction: false,
                residual_accumulation: false,
            },
            Method::Asgd => TechniqueRow {
                method: self.name(),
                sparsification: "none",
                momentum: "none",
                momentum_correction: false,
                residual_accumulation: false,
            },
            Method::GdAsync => TechniqueRow {
                method: self.name(),
                sparsification: "dual-way (MDT)",
                momentum: "none",
                momentum_correction: false,
                residual_accumulation: true,
            },
            Method::DgcAsync => TechniqueRow {
                method: self.name(),
                sparsification: "dual-way (MDT)",
                momentum: "vanilla",
                momentum_correction: true,
                residual_accumulation: true,
            },
            Method::Dgs => TechniqueRow {
                method: self.name(),
                sparsification: "dual-way (MDT)",
                momentum: "SAMomentum",
                momentum_correction: false,
                residual_accumulation: false,
            },
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Method {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "msgd" => Ok(Method::Msgd),
            "asgd" => Ok(Method::Asgd),
            "gd" | "gd-async" | "gdasync" => Ok(Method::GdAsync),
            "dgc" | "dgc-async" | "dgcasync" => Ok(Method::DgcAsync),
            "dgs" => Ok(Method::Dgs),
            other => Err(format!("unknown method '{other}'")),
        }
    }
}

/// One row of the paper's Table 5.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TechniqueRow {
    /// Method name.
    pub method: &'static str,
    /// Sparsification scheme.
    pub sparsification: &'static str,
    /// Momentum variant.
    pub momentum: &'static str,
    /// Whether DGC-style momentum correction is applied.
    pub momentum_correction: bool,
    /// Whether unsent gradients are accumulated in a residual buffer.
    pub residual_accumulation: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn names_match_paper() {
        assert_eq!(Method::Dgs.name(), "DGS");
        assert_eq!(Method::GdAsync.name(), "GD-async");
        assert_eq!(Method::DgcAsync.to_string(), "DGC-async");
    }

    #[test]
    fn parse_round_trip() {
        for m in Method::ALL {
            assert_eq!(Method::from_str(m.name()).unwrap(), m);
        }
        assert!(Method::from_str("bogus").is_err());
    }

    #[test]
    fn technique_matrix_matches_table5() {
        // DGS: SAMomentum, no correction, no residuals.
        let dgs = Method::Dgs.techniques();
        assert_eq!(dgs.momentum, "SAMomentum");
        assert!(!dgs.momentum_correction);
        assert!(!dgs.residual_accumulation);
        // DGC-async: vanilla momentum + correction + residuals.
        let dgc = Method::DgcAsync.techniques();
        assert_eq!(dgc.momentum, "vanilla");
        assert!(dgc.momentum_correction);
        assert!(dgc.residual_accumulation);
        // GD-async: no momentum, residuals only.
        let gd = Method::GdAsync.techniques();
        assert_eq!(gd.momentum, "none");
        assert!(gd.residual_accumulation);
        // ASGD: nothing.
        let asgd = Method::Asgd.techniques();
        assert_eq!(asgd.sparsification, "none");
    }

    #[test]
    fn sparsification_flags() {
        assert!(!Method::Msgd.sparsifies_uplink());
        assert!(!Method::Asgd.sparsifies_uplink());
        assert!(Method::GdAsync.sparsifies_uplink());
        assert!(Method::DgcAsync.uses_model_difference());
        assert!(Method::Dgs.uses_model_difference());
    }
}
