//! §5.6.2 memory accounting: where each method keeps its state.
//!
//! The paper's claim: DGS moves memory from workers to the server — the
//! server keeps one `v_k` per worker (N × model), while each DGS worker
//! keeps only the SAMomentum velocity (1 × model) instead of vanilla
//! momentum *plus* a residual buffer (2 × model for DGC). Total memory is
//! unchanged; its placement differs.

use crate::method::Method;
use serde::{Deserialize, Serialize};

/// Memory footprint of one training configuration, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryReport {
    /// Method.
    pub method: Method,
    /// Number of workers.
    pub workers: usize,
    /// Bytes of one model's parameters.
    pub model_bytes: usize,
    /// Server: update accumulator `M` (or the model for ASGD).
    pub server_model_bytes: usize,
    /// Server: per-worker tracking state `Σ_k v_k`.
    pub server_tracking_bytes: usize,
    /// Per worker: local model copy.
    pub worker_model_bytes: usize,
    /// Per worker: auxiliary buffers (residual and/or velocity).
    pub worker_aux_bytes: usize,
}

impl MemoryReport {
    /// Builds the analytic report for a method (matches what the live
    /// server/worker objects report; the integration tests cross-check).
    pub fn analytic(method: Method, workers: usize, model_bytes: usize) -> Self {
        let (tracking, aux) = match method {
            Method::Msgd => (0, model_bytes), // single-node velocity
            Method::Asgd => (0, 0),
            Method::GdAsync => (workers * model_bytes, model_bytes), // residual
            Method::DgcAsync => (workers * model_bytes, 2 * model_bytes), // u + r
            Method::Dgs => (workers * model_bytes, model_bytes),     // u only
        };
        MemoryReport {
            method,
            workers,
            model_bytes,
            server_model_bytes: model_bytes,
            server_tracking_bytes: tracking,
            worker_model_bytes: model_bytes,
            worker_aux_bytes: aux,
        }
    }

    /// Total bytes at the server.
    pub fn server_total(&self) -> usize {
        self.server_model_bytes + self.server_tracking_bytes
    }

    /// Total bytes per worker.
    pub fn worker_total(&self) -> usize {
        self.worker_model_bytes + self.worker_aux_bytes
    }

    /// Total cluster bytes (server + all workers).
    pub fn cluster_total(&self) -> usize {
        self.server_total() + self.workers * self.worker_total()
    }

    /// How many workers a server with `server_budget` bytes can track —
    /// the paper's ">300 ResNet-18 workers on a 16 GB V100" calculation.
    pub fn max_workers_for_budget(model_bytes: usize, server_budget: usize) -> usize {
        server_budget.saturating_sub(model_bytes) / model_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: usize = 1 << 20;

    #[test]
    fn dgs_moves_memory_to_server() {
        let dgs = MemoryReport::analytic(Method::Dgs, 8, 46 * MB);
        let dgc = MemoryReport::analytic(Method::DgcAsync, 8, 46 * MB);
        // Same server tracking; DGS workers hold one fewer model buffer.
        assert_eq!(dgs.server_tracking_bytes, dgc.server_tracking_bytes);
        assert_eq!(dgc.worker_aux_bytes - dgs.worker_aux_bytes, 46 * MB);
    }

    #[test]
    fn asgd_has_no_tracking() {
        let r = MemoryReport::analytic(Method::Asgd, 8, 46 * MB);
        assert_eq!(r.server_tracking_bytes, 0);
        assert_eq!(r.worker_aux_bytes, 0);
        assert_eq!(r.server_total(), 46 * MB);
    }

    #[test]
    fn paper_claim_300_resnet_workers() {
        // ResNet-18 ≈ 46 MB; a 16 GB card tracks > 300 workers.
        let n = MemoryReport::max_workers_for_budget(46 * MB, 16 * 1024 * MB);
        assert!(n > 300, "got {n}");
    }

    #[test]
    fn cluster_totals_add_up() {
        let r = MemoryReport::analytic(Method::Dgs, 4, 100);
        assert_eq!(r.server_total(), 100 + 400);
        assert_eq!(r.worker_total(), 200);
        assert_eq!(r.cluster_total(), 500 + 800);
    }
}
