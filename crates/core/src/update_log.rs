//! Bounded applied-update log: the index history behind the server's
//! O(nnz) downlink construction.
//!
//! Every sparse update the server applies to `M` appends one entry —
//! its server timestamp plus the *global* coordinates it touched. When
//! worker `k` (cursor `prev[k]`) pulls, the coordinates where `M` can
//! differ from `v_k` are covered by the union of the worker's dirty set
//! and the log entries newer than its cursor, so `make_diff` only needs
//! to visit those — O(nnz since last pull) instead of O(dim).
//!
//! The log is bounded by a **total-index budget** (`capacity`, counted in
//! logged coordinates, not entries). When it overflows, the oldest entries
//! are evicted and `lost_through` advances: any cursor at or before that
//! watermark can no longer be served from the log ([`UpdateLog::covers`]
//! returns `false`) and the server falls back to the dense reference scan
//! — graceful degradation for extreme stragglers, never a wrong answer.
//!
//! Values are deliberately *not* logged: the diff is always recomputed as
//! `m[i] − v[i]` at pull time, which is what makes the log path bitwise
//! identical to the dense scan (and immune to secondary-compression
//! residual drift). Entry buffers are recycled through an internal spare
//! list so the steady-state hot path performs no allocation.
//!
//! Std-only on purpose, so standalone differential harnesses can compile
//! this file directly.

use std::collections::VecDeque;

/// Retain at most this many evicted index buffers for reuse.
const MAX_SPARE: usize = 8;

#[derive(Debug)]
struct LogEntry {
    /// Server timestamp of the update (the value of `t` *after* applying).
    t: u64,
    /// Global coordinates the update touched (unsorted, may repeat).
    idx: Vec<u32>,
}

/// Ring log of applied sparse updates, bounded by total logged indices.
#[derive(Debug)]
pub struct UpdateLog {
    entries: VecDeque<LogEntry>,
    /// Sum of `idx.len()` over `entries`.
    stored: usize,
    /// Total-index budget.
    capacity: usize,
    /// Highest timestamp that may have been evicted: cursors `<=` this
    /// cannot be served from the log. Starts at 0 (cursor 0 needs nothing
    /// older than the first entry, so a fresh log covers it).
    lost_through: u64,
    /// Recycled index buffers.
    spare: Vec<Vec<u32>>,
}

impl UpdateLog {
    /// Creates a log that retains at most `capacity` total indices.
    /// A sensible default is the model dimension: the log then never
    /// outweighs one `u32` model replica and a full-log merge never costs
    /// more than the dense scan it replaces.
    pub fn new(capacity: usize) -> Self {
        UpdateLog {
            entries: VecDeque::new(),
            stored: 0,
            capacity,
            lost_through: 0,
            spare: Vec::new(),
        }
    }

    /// The total-index budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of indices currently retained.
    pub fn stored(&self) -> usize {
        self.stored
    }

    /// Number of retained entries.
    pub fn entries(&self) -> usize {
        self.entries.len()
    }

    /// Highest timestamp that may have been evicted.
    pub fn lost_through(&self) -> u64 {
        self.lost_through
    }

    /// Hands out a cleared index buffer (recycled from a prior eviction
    /// when available) for the caller to fill and pass to [`record`].
    ///
    /// [`record`]: UpdateLog::record
    pub fn begin(&mut self) -> Vec<u32> {
        self.spare.pop().unwrap_or_default()
    }

    /// Appends the entry for update `t` (timestamps must be strictly
    /// increasing), evicting from the front until the budget holds.
    pub fn record(&mut self, t: u64, idx: Vec<u32>) {
        debug_assert!(self.entries.back().map_or(true, |e| e.t < t));
        if idx.len() > self.capacity {
            // A single oversized update flushes everything, itself included.
            self.forget_through(t);
            self.recycle(idx);
            return;
        }
        while self.stored + idx.len() > self.capacity {
            self.evict_front();
        }
        self.stored += idx.len();
        self.entries.push_back(LogEntry { t, idx });
    }

    /// Records a dense update at timestamp `t`: it touches every
    /// coordinate, so no cursor older than `t` can be log-served.
    pub fn mark_dense(&mut self, t: u64) {
        self.forget_through(t);
    }

    /// Drops every entry and declares all timestamps `<= through` lost.
    /// Used by [`mark_dense`], checkpoint restore (`through = t + 1`, which
    /// forces one dense fallback per worker because the restored server has
    /// no dirty sets), and live capacity changes (`through = t`, sound
    /// because the dirty sets are still intact).
    ///
    /// [`mark_dense`]: UpdateLog::mark_dense
    pub fn forget_through(&mut self, through: u64) {
        while let Some(e) = self.entries.pop_front() {
            self.stored -= e.idx.len();
            self.recycle(e.idx);
        }
        debug_assert_eq!(self.stored, 0);
        self.lost_through = self.lost_through.max(through);
    }

    /// Can a worker whose cursor is `since` be served from the log?
    /// (Are all entries with `t > since` still present?)
    pub fn covers(&self, since: u64) -> bool {
        since >= self.lost_through
    }

    /// Appends to `out` every index touched by entries newer than `since`.
    /// Output is unsorted and may repeat; the caller sort-dedups. Walks
    /// from the back so the cost is O(indices newer than `since`).
    ///
    /// Callers must check [`covers`] first; collecting an uncovered range
    /// silently yields an incomplete set.
    ///
    /// [`covers`]: UpdateLog::covers
    pub fn collect_since(&self, since: u64, out: &mut Vec<u32>) {
        debug_assert!(self.covers(since));
        for e in self.entries.iter().rev() {
            if e.t <= since {
                break;
            }
            out.extend_from_slice(&e.idx);
        }
    }

    /// Number of indices (with repeats) entries newer than `since` hold —
    /// the exact length [`collect_since`] would append. Lets the server
    /// size-check a merge *before* assembling the candidate set, so the
    /// degenerate-merge guard costs O(entries) instead of O(indices).
    ///
    /// [`collect_since`]: UpdateLog::collect_since
    pub fn count_since(&self, since: u64) -> usize {
        let mut n = 0usize;
        for e in self.entries.iter().rev() {
            if e.t <= since {
                break;
            }
            n += e.idx.len();
        }
        n
    }

    /// Approximate heap footprint in bytes (index storage at capacity
    /// granularity plus per-entry headers).
    pub fn bytes(&self) -> usize {
        let idx_bytes: usize =
            self.entries.iter().map(|e| e.idx.capacity() * std::mem::size_of::<u32>()).sum();
        idx_bytes + self.entries.len() * std::mem::size_of::<LogEntry>()
    }

    fn evict_front(&mut self) {
        if let Some(e) = self.entries.pop_front() {
            self.stored -= e.idx.len();
            self.lost_through = self.lost_through.max(e.t);
            self.recycle(e.idx);
        } else {
            debug_assert_eq!(self.stored, 0);
        }
    }

    fn recycle(&mut self, mut idx: Vec<u32>) {
        if self.spare.len() < MAX_SPARE && idx.capacity() > 0 {
            idx.clear();
            self.spare.push(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_log_covers_zero_cursor() {
        let log = UpdateLog::new(16);
        assert!(log.covers(0));
        let mut out = Vec::new();
        log.collect_since(0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn collect_since_returns_only_newer_entries() {
        let mut log = UpdateLog::new(100);
        log.record(1, vec![3, 5]);
        log.record(2, vec![5, 9]);
        log.record(3, vec![0]);
        let mut out = Vec::new();
        log.collect_since(1, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 5, 9]);
        out.clear();
        log.collect_since(3, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn count_since_matches_collect_since() {
        let mut log = UpdateLog::new(100);
        log.record(1, vec![3, 5]);
        log.record(2, vec![5, 9, 9]);
        log.record(3, vec![0]);
        for since in 0..4u64 {
            let mut out = Vec::new();
            log.collect_since(since, &mut out);
            assert_eq!(log.count_since(since), out.len(), "since {since}");
        }
    }

    #[test]
    fn eviction_advances_lost_through() {
        let mut log = UpdateLog::new(4);
        log.record(1, vec![0, 1]);
        log.record(2, vec![2, 3]);
        assert!(log.covers(0));
        log.record(3, vec![4]); // evicts entry t=1
        assert_eq!(log.lost_through(), 1);
        assert!(!log.covers(0)); // would need the evicted t=1 entry
        assert!(log.covers(1)); // needs only t>1, all present
        assert!(log.covers(2));
        let mut out = Vec::new();
        log.collect_since(2, &mut out);
        assert_eq!(out, vec![4]);
        assert_eq!(log.stored(), 3);
    }

    #[test]
    fn oversized_update_flushes_log() {
        let mut log = UpdateLog::new(3);
        log.record(1, vec![0]);
        log.record(2, vec![0, 1, 2, 3]); // larger than the whole budget
        assert_eq!(log.stored(), 0);
        assert_eq!(log.entries(), 0);
        assert!(!log.covers(1));
        assert!(log.covers(2));
    }

    #[test]
    fn mark_dense_invalidates_older_cursors_only() {
        let mut log = UpdateLog::new(100);
        log.record(1, vec![7]);
        log.mark_dense(2);
        assert!(!log.covers(1));
        assert!(log.covers(2));
        log.record(3, vec![9]);
        let mut out = Vec::new();
        log.collect_since(2, &mut out);
        assert_eq!(out, vec![9]);
    }

    #[test]
    fn forget_through_never_regresses() {
        let mut log = UpdateLog::new(100);
        log.record(1, vec![0]);
        log.record(2, vec![1]);
        log.record(3, vec![2]);
        log.record(4, vec![3]);
        log.forget_through(4);
        log.forget_through(2); // lower watermark must not re-cover 3..4
        assert!(!log.covers(3));
        assert!(log.covers(4));
    }

    #[test]
    fn begin_recycles_evicted_buffers() {
        let mut log = UpdateLog::new(2);
        let mut b = log.begin();
        b.extend_from_slice(&[10, 11]);
        log.record(1, b);
        log.record(2, vec![12, 13]); // evicts t=1; its buffer goes spare
        let reused = log.begin();
        assert!(reused.is_empty());
        assert!(reused.capacity() >= 2, "evicted buffer should be recycled");
    }

    #[test]
    fn bytes_tracks_stored_indices() {
        let mut log = UpdateLog::new(100);
        assert_eq!(log.bytes(), 0);
        log.record(1, vec![1, 2, 3]);
        assert!(log.bytes() >= 3 * std::mem::size_of::<u32>());
    }
}
