//! Experiment configuration: method, cluster geometry, optimisation
//! hyper-parameters, learning-rate schedules, and the DGC warm-up ramp.

use crate::method::Method;
use serde::{Deserialize, Serialize};

/// Step-decay learning-rate schedule: multiply by `factor` at each listed
/// epoch (the paper decays by 10× at 60% and 80% of the epoch budget).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LrSchedule {
    /// Base learning rate.
    pub base_lr: f32,
    /// Epochs at which the rate is multiplied by `factor`.
    pub decay_epochs: Vec<usize>,
    /// Multiplicative decay factor (paper: 0.1).
    pub factor: f32,
}

impl LrSchedule {
    /// The paper's schedule: decay 10× at 60% and 80% of `total_epochs`.
    pub fn paper_default(base_lr: f32, total_epochs: usize) -> Self {
        LrSchedule {
            base_lr,
            decay_epochs: vec![(total_epochs * 3) / 5, (total_epochs * 4) / 5],
            factor: 0.1,
        }
    }

    /// Constant learning rate.
    pub fn constant(base_lr: f32) -> Self {
        LrSchedule { base_lr, decay_epochs: Vec::new(), factor: 1.0 }
    }

    /// Learning rate in effect during `epoch` (0-based).
    pub fn lr_at(&self, epoch: usize) -> f32 {
        let decays = self.decay_epochs.iter().filter(|&&e| epoch >= e).count();
        self.base_lr * self.factor.powi(decays as i32)
    }
}

/// DGC's sparsity warm-up: ramp the kept fraction down exponentially over
/// the first `warmup_epochs` epochs (75% → 93.75% → 98.44% → … dropped),
/// reaching the target ratio afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WarmupRamp {
    /// Final Top-k keep ratio (e.g. 0.01 for 99% sparsity).
    pub target_ratio: f64,
    /// Number of warm-up epochs (paper uses 4).
    pub warmup_epochs: usize,
}

impl WarmupRamp {
    /// Keep ratio in effect during `epoch` (0-based): starts at 25% kept
    /// and divides by 4 each epoch until it reaches the target.
    pub fn ratio_at(&self, epoch: usize) -> f64 {
        if epoch >= self.warmup_epochs {
            return self.target_ratio;
        }
        let ramp = 0.25f64 / 4f64.powi(epoch as i32);
        ramp.max(self.target_ratio)
    }
}

/// Full configuration of one training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Training method.
    pub method: Method,
    /// Number of workers (1 for MSGD).
    pub workers: usize,
    /// Minibatch size per worker.
    pub batch_per_worker: usize,
    /// Logical epochs: total samples processed = epochs × dataset size,
    /// split evenly across workers.
    pub epochs: usize,
    /// Learning-rate schedule.
    pub lr: LrSchedule,
    /// Momentum coefficient `m` (paper: 0.7, reduced for many workers).
    pub momentum: f32,
    #[serde(default)]
    /// L2 weight decay coefficient added to every gradient
    /// (`∇ ← ∇ + wd·θ`); 0 disables it. The paper's experiments omit
    /// decay ("we do not include other training tricks"), so 0 is the
    /// default, but a release-grade trainer supports it.
    pub weight_decay: f32,
    /// Top-k keep ratio `R/100` (paper: 0.01, i.e. 99% sparsity).
    pub sparsity_ratio: f64,
    /// Enable server-side secondary compression of the model difference.
    pub secondary_compression: bool,
    /// Ternary-quantize the sparse uplink (TernGrad combination, paper §6
    /// future work). Ignored by dense methods.
    #[serde(default)]
    pub quantize_uplink: bool,
    /// Gap-aware staleness damping exponent applied at the server
    /// (extension; 0 disables). Stale updates are scaled by
    /// `1/(1+staleness)^alpha`.
    #[serde(default)]
    pub staleness_damping: f64,
    /// Server update-log budget in total logged coordinates, bounding the
    /// O(nnz) downlink construction's memory (see `DESIGN.md` §"Server hot
    /// path"); 0 = automatic (one logged coordinate per model parameter).
    #[serde(default)]
    pub server_log_nnz: usize,
    /// Force the reference O(dim) dense-scan downlink construction instead
    /// of the update-log merge. Debug/benchmark switch: the payloads are
    /// bitwise identical either way.
    #[serde(default)]
    pub server_dense_scan: bool,
    /// DGC gradient-clipping threshold on the global gradient norm
    /// (0 disables clipping). Only DGC-async uses it.
    pub clip_norm: f32,
    /// DGC warm-up epochs (0 disables the ramp). Only DGC-async uses it.
    pub warmup_epochs: usize,
    /// Master seed; worker/data/init seeds derive from it.
    pub seed: u64,
    /// Batch size used for evaluation passes.
    pub eval_batch: usize,
    /// Evaluations per run (curve resolution); at least 1 (final).
    pub evals: usize,
}

impl TrainConfig {
    /// A reasonable default configuration for `method` at `workers`
    /// workers, mirroring the paper's hyper-parameters.
    pub fn paper_default(method: Method, workers: usize, epochs: usize) -> Self {
        TrainConfig {
            method,
            workers: if method == Method::Msgd { 1 } else { workers },
            batch_per_worker: 32,
            epochs,
            lr: LrSchedule::paper_default(0.1, epochs),
            momentum: 0.7,
            weight_decay: 0.0,
            sparsity_ratio: 0.01,
            secondary_compression: false,
            quantize_uplink: false,
            staleness_damping: 0.0,
            server_log_nnz: 0,
            server_dense_scan: false,
            clip_norm: if method == Method::DgcAsync { 5.0 } else { 0.0 },
            warmup_epochs: if method == Method::DgcAsync { 4 } else { 0 },
            seed: 42,
            eval_batch: 64,
            evals: epochs,
        }
    }

    /// Iterations each worker performs so that
    /// `workers × iters × batch ≈ epochs × dataset_len`.
    pub fn iters_per_worker(&self, dataset_len: usize) -> usize {
        let total = self.epochs * dataset_len;
        let per_worker = total / (self.workers * self.batch_per_worker);
        per_worker.max(1)
    }

    /// The epoch a worker is in at local iteration `iter`.
    pub fn epoch_of_iter(&self, iter: usize, dataset_len: usize) -> usize {
        let iters = self.iters_per_worker(dataset_len);
        let per_epoch = (iters / self.epochs.max(1)).max(1);
        (iter / per_epoch).min(self.epochs.saturating_sub(1))
    }

    /// The DGC warm-up ramp for this config.
    pub fn warmup(&self) -> WarmupRamp {
        WarmupRamp { target_ratio: self.sparsity_ratio, warmup_epochs: self.warmup_epochs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lr_schedule_steps() {
        let s = LrSchedule::paper_default(0.1, 50);
        assert_eq!(s.decay_epochs, vec![30, 40]);
        assert!((s.lr_at(0) - 0.1).abs() < 1e-9);
        assert!((s.lr_at(29) - 0.1).abs() < 1e-9);
        assert!((s.lr_at(30) - 0.01).abs() < 1e-9);
        assert!((s.lr_at(40) - 0.001).abs() < 1e-9);
        assert!((s.lr_at(49) - 0.001).abs() < 1e-9);
    }

    #[test]
    fn constant_schedule() {
        let s = LrSchedule::constant(0.05);
        assert_eq!(s.lr_at(0), s.lr_at(100));
    }

    #[test]
    fn warmup_ramp_descends_to_target() {
        let w = WarmupRamp { target_ratio: 0.01, warmup_epochs: 4 };
        assert!((w.ratio_at(0) - 0.25).abs() < 1e-12);
        assert!((w.ratio_at(1) - 0.0625).abs() < 1e-12);
        assert!((w.ratio_at(2) - 0.015625).abs() < 1e-12);
        assert!((w.ratio_at(3) - 0.01).abs() < 1e-12); // clamped at target
        assert!((w.ratio_at(4) - 0.01).abs() < 1e-12);
        assert!((w.ratio_at(100) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn warmup_disabled() {
        let w = WarmupRamp { target_ratio: 0.01, warmup_epochs: 0 };
        assert_eq!(w.ratio_at(0), 0.01);
    }

    #[test]
    fn iters_split_across_workers() {
        let mut cfg = TrainConfig::paper_default(Method::Dgs, 4, 10);
        cfg.batch_per_worker = 25;
        // 10 epochs × 1000 samples / (4 workers × 25 batch) = 100 iters.
        assert_eq!(cfg.iters_per_worker(1000), 100);
        cfg.workers = 8;
        assert_eq!(cfg.iters_per_worker(1000), 50);
    }

    #[test]
    fn epoch_of_iter_progression() {
        let mut cfg = TrainConfig::paper_default(Method::Dgs, 2, 5);
        cfg.batch_per_worker = 10;
        let ds = 400; // iters_per_worker = 5*400/(2*10) = 100, 20 per epoch
        assert_eq!(cfg.epoch_of_iter(0, ds), 0);
        assert_eq!(cfg.epoch_of_iter(19, ds), 0);
        assert_eq!(cfg.epoch_of_iter(20, ds), 1);
        assert_eq!(cfg.epoch_of_iter(99, ds), 4);
        // Clamped at the last epoch even past the end.
        assert_eq!(cfg.epoch_of_iter(1000, ds), 4);
    }

    #[test]
    fn server_fields_default_off_and_deserialize_when_absent() {
        let cfg = TrainConfig::paper_default(Method::Dgs, 4, 10);
        assert_eq!(cfg.server_log_nnz, 0);
        assert!(!cfg.server_dense_scan);
        // Older serialized configs (without the server fields) still load.
        let mut json: serde_json::Value = serde_json::to_value(&cfg).unwrap();
        let obj = json.as_object_mut().unwrap();
        obj.remove("server_log_nnz");
        obj.remove("server_dense_scan");
        let back: TrainConfig = serde_json::from_value(json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn msgd_forces_single_worker() {
        let cfg = TrainConfig::paper_default(Method::Msgd, 8, 10);
        assert_eq!(cfg.workers, 1);
    }

    #[test]
    fn dgc_gets_warmup_and_clipping() {
        let dgc = TrainConfig::paper_default(Method::DgcAsync, 4, 10);
        assert!(dgc.warmup_epochs > 0);
        assert!(dgc.clip_norm > 0.0);
        let dgs = TrainConfig::paper_default(Method::Dgs, 4, 10);
        assert_eq!(dgs.warmup_epochs, 0);
        assert_eq!(dgs.clip_norm, 0.0);
    }
}
