//! Training-curve records and run results, serialisable for EXPERIMENTS.md.

use crate::config::TrainConfig;
use serde::{Deserialize, Serialize};

/// One evaluation point along a training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Logical epoch at this point (1-based at the point of evaluation).
    pub epoch: usize,
    /// Server updates applied so far.
    pub updates: u64,
    /// Mean training loss since the previous point.
    pub train_loss: f64,
    /// Validation cross-entropy loss.
    pub val_loss: f64,
    /// Validation top-1 accuracy in `[0, 1]`.
    pub val_acc: f64,
    /// Virtual seconds elapsed (DES runs; 0 for thread runs).
    pub virtual_time: f64,
    /// Cumulative uplink bytes.
    pub bytes_up: u64,
    /// Cumulative downlink bytes.
    pub bytes_down: u64,
}

/// Outcome of one full training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// The configuration that produced this run.
    pub config: TrainConfig,
    /// Evaluation points in chronological order.
    pub curve: Vec<CurvePoint>,
    /// Final validation top-1 accuracy.
    pub final_acc: f64,
    /// Final validation loss.
    pub final_loss: f64,
    /// Total uplink bytes.
    pub bytes_up: u64,
    /// Total downlink bytes.
    pub bytes_down: u64,
    /// Total virtual time (DES runs; 0 otherwise).
    pub virtual_time: f64,
    /// Host wall-clock seconds the run took.
    pub wall_secs: f64,
    /// Mean observed gradient staleness.
    pub mean_staleness: f64,
    /// Maximum observed gradient staleness.
    pub max_staleness: u64,
    /// Server memory: bytes of per-worker tracking state (`Σ v_k`).
    pub server_tracking_bytes: usize,
    /// Worker memory: auxiliary bytes per worker (residual/velocity).
    pub worker_aux_bytes: usize,
}

impl RunResult {
    /// The method's display name.
    pub fn method_name(&self) -> &'static str {
        self.config.method.name()
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_up + self.bytes_down
    }

    /// First virtual time at which training loss dropped to `target`, if
    /// ever (Fig. 5's time-to-loss metric).
    pub fn time_to_loss(&self, target: f64) -> Option<f64> {
        self.curve.iter().find(|p| p.train_loss <= target).map(|p| p.virtual_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::Method;

    fn dummy_result() -> RunResult {
        let config = TrainConfig::paper_default(Method::Dgs, 4, 3);
        let curve = vec![
            CurvePoint {
                epoch: 1,
                updates: 10,
                train_loss: 2.0,
                val_loss: 2.1,
                val_acc: 0.3,
                virtual_time: 1.0,
                bytes_up: 100,
                bytes_down: 150,
            },
            CurvePoint {
                epoch: 2,
                updates: 20,
                train_loss: 1.0,
                val_loss: 1.2,
                val_acc: 0.6,
                virtual_time: 2.0,
                bytes_up: 200,
                bytes_down: 300,
            },
        ];
        RunResult {
            config,
            curve,
            final_acc: 0.6,
            final_loss: 1.2,
            bytes_up: 200,
            bytes_down: 300,
            virtual_time: 2.0,
            wall_secs: 0.5,
            mean_staleness: 1.5,
            max_staleness: 3,
            server_tracking_bytes: 1024,
            worker_aux_bytes: 256,
        }
    }

    #[test]
    fn time_to_loss_finds_first_crossing() {
        let r = dummy_result();
        assert_eq!(r.time_to_loss(2.5), Some(1.0));
        assert_eq!(r.time_to_loss(1.5), Some(2.0));
        assert_eq!(r.time_to_loss(0.5), None);
    }

    #[test]
    fn totals() {
        let r = dummy_result();
        assert_eq!(r.total_bytes(), 500);
        assert_eq!(r.method_name(), "DGS");
    }

    #[test]
    fn serde_round_trip() {
        let r = dummy_result();
        let json = serde_json::to_string(&r).unwrap();
        let back: RunResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.final_acc, r.final_acc);
        assert_eq!(back.curve.len(), 2);
        assert_eq!(back.config.method, Method::Dgs);
    }
}
