//! Property-based tests for the cluster engines: conservation laws and
//! timing monotonicity of the discrete-event simulator, and exactly-once
//! delivery in the thread engine, for arbitrary cluster geometries.

use dgs_psim::des::{run_des, DesNetwork, DesServer, DesWorker};
use dgs_psim::thread_engine::{run_cluster, ServerLogic, WorkerLogic};
use dgs_psim::NetworkModel;
use proptest::prelude::*;

struct PropServer {
    proc_time: f64,
    reply_bytes: usize,
    arrivals: Vec<f64>,
}

impl DesServer for PropServer {
    type Up = ();
    type Down = ();

    fn handle(&mut self, _w: usize, _s: u64, vtime: f64, _up: ()) -> ((), usize, f64) {
        self.arrivals.push(vtime);
        ((), self.reply_bytes, self.proc_time)
    }
}

struct PropWorker {
    compute: f64,
    bytes: usize,
    applied: usize,
}

impl DesWorker for PropWorker {
    type Up = ();
    type Down = ();

    fn compute(&mut self) -> ((), usize, f64) {
        ((), self.bytes, self.compute)
    }

    fn apply(&mut self, _d: ()) {
        self.applied += 1;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every DES run processes exactly workers × iters iterations, counts
    /// bytes exactly, serves arrivals in nondecreasing virtual time, and
    /// accumulates server-busy time = iterations × proc.
    #[test]
    fn des_conservation(
        workers in 1usize..8,
        iters in 0usize..12,
        compute_ms in 1u32..50,
        proc_us in 0u32..500,
        bytes in 0usize..10_000,
        shared in proptest::bool::ANY,
    ) {
        let mut server = PropServer {
            proc_time: proc_us as f64 * 1e-6,
            reply_bytes: bytes / 2,
            arrivals: Vec::new(),
        };
        let mut ws: Vec<PropWorker> = (0..workers)
            .map(|_| PropWorker { compute: compute_ms as f64 * 1e-3, bytes, applied: 0 })
            .collect();
        let net = if shared {
            DesNetwork::shared(NetworkModel::one_gbps())
        } else {
            DesNetwork::per_worker(NetworkModel::one_gbps())
        };
        let report = run_des(&mut server, &mut ws, iters, net);
        prop_assert_eq!(report.iterations, (workers * iters) as u64);
        prop_assert_eq!(report.bytes_up, (workers * iters * bytes) as u64);
        prop_assert_eq!(report.bytes_down, (workers * iters * (bytes / 2)) as u64);
        prop_assert!(ws.iter().all(|w| w.applied == iters));
        prop_assert!(
            server.arrivals.windows(2).all(|w| w[0] <= w[1]),
            "server arrivals out of order"
        );
        let expect_busy = report.iterations as f64 * proc_us as f64 * 1e-6;
        prop_assert!((report.server_busy - expect_busy).abs() < 1e-9);
        if iters > 0 && workers > 0 {
            // Total time at least one full round trip.
            let min_rt = compute_ms as f64 * 1e-3;
            prop_assert!(report.total_time >= min_rt * iters as f64 * 0.999);
        }
    }

    /// Shared-NIC runs are never faster than per-worker-link runs of the
    /// same workload.
    #[test]
    fn shared_never_faster(
        workers in 1usize..6,
        iters in 1usize..8,
        bytes in 100usize..50_000,
    ) {
        let mk = || PropServer { proc_time: 0.0, reply_bytes: bytes, arrivals: Vec::new() };
        let mk_w = |n: usize| -> Vec<PropWorker> {
            (0..n).map(|_| PropWorker { compute: 1e-4, bytes, applied: 0 }).collect()
        };
        let net = NetworkModel::new(0.01, 10.0);
        let mut s1 = mk();
        let mut w1 = mk_w(workers);
        let shared = run_des(&mut s1, &mut w1, iters, DesNetwork::shared(net));
        let mut s2 = mk();
        let mut w2 = mk_w(workers);
        let private = run_des(&mut s2, &mut w2, iters, DesNetwork::per_worker(net));
        prop_assert!(
            shared.total_time >= private.total_time - 1e-12,
            "sharing cannot speed things up: {} vs {}",
            shared.total_time,
            private.total_time
        );
    }

    /// Thread engine: exactly-once processing for arbitrary geometries.
    #[test]
    fn thread_engine_exactly_once(workers in 1usize..6, iters in 0usize..20) {
        struct CountServer {
            per_worker: Vec<u64>,
        }
        impl ServerLogic for CountServer {
            type Request = usize;
            type Reply = usize;
            fn handle(&mut self, worker: usize, _seq: u64, req: usize) -> usize {
                self.per_worker[worker] += 1;
                req + 1
            }
            fn request_bytes(_: &usize) -> usize { 8 }
            fn reply_bytes(_: &usize) -> usize { 8 }
        }
        struct EchoWorker {
            sent: usize,
            received: usize,
        }
        impl WorkerLogic for EchoWorker {
            type Request = usize;
            type Reply = usize;
            fn step(&mut self, iter: usize) -> usize {
                self.sent += 1;
                iter
            }
            fn apply(&mut self, reply: usize) {
                self.received = reply;
            }
        }
        let server = CountServer { per_worker: vec![0; workers] };
        let ws: Vec<EchoWorker> =
            (0..workers).map(|_| EchoWorker { sent: 0, received: 0 }).collect();
        let report = run_cluster(server, ws, iters);
        prop_assert!(report.server.per_worker.iter().all(|&c| c == iters as u64));
        prop_assert!(report.workers.iter().all(|w| w.sent == iters));
        prop_assert_eq!(report.traffic.msgs_up, (workers * iters) as u64);
        prop_assert_eq!(report.traffic.msgs_down, (workers * iters) as u64);
        if iters > 0 {
            // Last reply echoes the final iteration index + 1.
            prop_assert!(report.workers.iter().all(|w| w.received == iters));
        }
    }
}
