//! Real-thread cluster engine: one OS thread per worker, one server thread.
//!
//! Workers send requests through a shared MPMC channel; the server replies
//! through per-worker channels. This is a faithful small-scale analogue of
//! the paper's parameter-server deployment: workers genuinely race, the
//! interleaving of updates at the server is nondeterministic, and gradient
//! staleness arises for real rather than being injected.

use crate::stats::TrafficStats;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::sync::Arc;

/// Server side of a parameter-server algorithm.
///
/// The engine calls [`handle`](ServerLogic::handle) once per received
/// request, in arrival order, from a single server thread — so
/// implementations need no internal locking.
pub trait ServerLogic: Send {
    /// Worker→server payload.
    type Request: Send + 'static;
    /// Server→worker payload.
    type Reply: Send + 'static;

    /// Processes one request from `worker`, returning the reply. `seq` is
    /// the 0-based global arrival index (the paper's server timestamp `t`).
    fn handle(&mut self, worker: usize, seq: u64, req: Self::Request) -> Self::Reply;

    /// Wire size of a request in bytes (for traffic accounting).
    fn request_bytes(req: &Self::Request) -> usize;

    /// Wire size of a reply in bytes.
    fn reply_bytes(reply: &Self::Reply) -> usize;
}

/// Worker side of a parameter-server algorithm.
pub trait WorkerLogic: Send {
    /// Worker→server payload.
    type Request: Send + 'static;
    /// Server→worker payload.
    type Reply: Send + 'static;

    /// Computes one local iteration (minibatch forward/backward plus
    /// compression) and returns the request to send.
    fn step(&mut self, iter: usize) -> Self::Request;

    /// Applies the server's reply to local state.
    fn apply(&mut self, reply: Self::Reply);
}

/// Outcome of a cluster run.
#[derive(Debug)]
pub struct ClusterReport<S, W> {
    /// The server logic, with whatever state/curves it accumulated.
    pub server: S,
    /// The worker logics, in worker order.
    pub workers: Vec<W>,
    /// Total traffic in both directions.
    pub traffic: crate::stats::TrafficSnapshot,
    /// Wall-clock duration of the run in seconds (host time).
    pub wall_secs: f64,
}

enum Envelope<R> {
    Request { worker: usize, req: R },
    Done,
}

/// Request-channel endpoints, named to keep the engine signature readable.
type ReqChannel<R> = (Sender<Envelope<R>>, Receiver<Envelope<R>>);

/// Runs `workers.len()` worker threads against one server thread until each
/// worker has completed `iters_per_worker` iterations.
///
/// Every request is matched by exactly one reply (synchronous round-trip per
/// worker, as in the paper's Fig. 1 protocol: send gradient, wait for model
/// update, continue). Asynchrony is *across* workers.
pub fn run_cluster<S, W>(
    mut server: S,
    workers: Vec<W>,
    iters_per_worker: usize,
) -> ClusterReport<S, W>
where
    S: ServerLogic + 'static,
    W: WorkerLogic<Request = S::Request, Reply = S::Reply> + 'static,
{
    let start = std::time::Instant::now();
    let n = workers.len();
    let traffic = Arc::new(TrafficStats::new());
    let (req_tx, req_rx): ReqChannel<S::Request> = unbounded();

    // Per-worker reply channels; capacity 1 suffices for the round-trip
    // protocol but a little slack is harmless.
    let mut reply_txs = Vec::with_capacity(n);
    let mut reply_rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = bounded::<S::Reply>(2);
        reply_txs.push(tx);
        reply_rxs.push(rx);
    }

    let worker_handles: Vec<_> = workers
        .into_iter()
        .zip(reply_rxs)
        .enumerate()
        .map(|(wid, (mut logic, reply_rx))| {
            let req_tx = req_tx.clone();
            let traffic = Arc::clone(&traffic);
            std::thread::Builder::new()
                .name(format!("dgs-worker-{wid}"))
                .spawn(move || {
                    for iter in 0..iters_per_worker {
                        let req = logic.step(iter);
                        traffic.record_up(S::request_bytes(&req));
                        req_tx
                            .send(Envelope::Request { worker: wid, req })
                            .expect("server hung up");
                        let reply = reply_rx.recv().expect("server hung up");
                        traffic.record_down(S::reply_bytes(&reply));
                        logic.apply(reply);
                    }
                    req_tx.send(Envelope::Done).ok();
                    logic
                })
                .expect("spawn worker thread")
        })
        .collect();
    drop(req_tx);

    // Server loop on the calling thread: arrival order defines `seq`.
    let mut remaining = n;
    let mut seq = 0u64;
    while remaining > 0 {
        match req_rx.recv().expect("all workers hung up") {
            Envelope::Request { worker, req } => {
                let reply = server.handle(worker, seq, req);
                seq += 1;
                // A send can only fail if the worker already exited, which
                // the protocol precludes; surface violations loudly.
                reply_txs[worker].send(reply).expect("worker hung up mid-round-trip");
            }
            Envelope::Done => remaining -= 1,
        }
    }

    let workers: Vec<W> =
        worker_handles.into_iter().map(|h| h.join().expect("worker panicked")).collect();

    ClusterReport {
        server,
        workers,
        traffic: traffic.snapshot(),
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::Arc;

    /// Toy protocol: workers send `+1`, server accumulates into a counter
    /// and replies with the current total.
    struct CountServer {
        total: u64,
        per_worker: Vec<u64>,
        seqs: Vec<u64>,
    }

    impl ServerLogic for CountServer {
        type Request = u64;
        type Reply = u64;

        fn handle(&mut self, worker: usize, seq: u64, req: u64) -> u64 {
            self.total += req;
            self.per_worker[worker] += 1;
            self.seqs.push(seq);
            self.total
        }

        fn request_bytes(_: &u64) -> usize {
            8
        }

        fn reply_bytes(_: &u64) -> usize {
            8
        }
    }

    struct CountWorker {
        last_seen: u64,
        observed: Arc<Mutex<Vec<u64>>>,
    }

    impl WorkerLogic for CountWorker {
        type Request = u64;
        type Reply = u64;

        fn step(&mut self, _iter: usize) -> u64 {
            1
        }

        fn apply(&mut self, reply: u64) {
            // Replies must be monotone from this worker's perspective.
            assert!(reply > self.last_seen, "replies should be increasing");
            self.last_seen = reply;
            self.observed.lock().push(reply);
        }
    }

    #[test]
    fn all_iterations_processed_exactly_once() {
        let n = 4;
        let iters = 50;
        let observed = Arc::new(Mutex::new(Vec::new()));
        let server = CountServer { total: 0, per_worker: vec![0; n], seqs: Vec::new() };
        let workers: Vec<CountWorker> =
            (0..n).map(|_| CountWorker { last_seen: 0, observed: Arc::clone(&observed) }).collect();
        let report = run_cluster(server, workers, iters);
        assert_eq!(report.server.total, (n * iters) as u64);
        assert!(report.server.per_worker.iter().all(|&c| c == iters as u64));
        // seq is a contiguous 0..N*iters sequence.
        assert_eq!(report.server.seqs, (0..(n * iters) as u64).collect::<Vec<_>>());
        // Traffic: every message counted.
        assert_eq!(report.traffic.msgs_up, (n * iters) as u64);
        assert_eq!(report.traffic.msgs_down, (n * iters) as u64);
        assert_eq!(report.traffic.bytes_up, (n * iters * 8) as u64);
    }

    #[test]
    fn single_worker_degenerates_to_sequential() {
        let observed = Arc::new(Mutex::new(Vec::new()));
        let server = CountServer { total: 0, per_worker: vec![0; 1], seqs: Vec::new() };
        let workers = vec![CountWorker { last_seen: 0, observed: Arc::clone(&observed) }];
        let report = run_cluster(server, workers, 10);
        assert_eq!(report.server.total, 10);
        // With one worker the observed totals are exactly 1..=10.
        assert_eq!(*observed.lock(), (1..=10).collect::<Vec<u64>>());
    }

    #[test]
    fn zero_iterations_terminates() {
        let server = CountServer { total: 0, per_worker: vec![0; 2], seqs: Vec::new() };
        let observed = Arc::new(Mutex::new(Vec::new()));
        let workers: Vec<CountWorker> =
            (0..2).map(|_| CountWorker { last_seen: 0, observed: Arc::clone(&observed) }).collect();
        let report = run_cluster(server, workers, 0);
        assert_eq!(report.server.total, 0);
        assert_eq!(report.traffic.msgs_up, 0);
    }

    #[test]
    fn many_workers_stress() {
        let n = 16;
        let iters = 25;
        let observed = Arc::new(Mutex::new(Vec::new()));
        let server = CountServer { total: 0, per_worker: vec![0; n], seqs: Vec::new() };
        let workers: Vec<CountWorker> =
            (0..n).map(|_| CountWorker { last_seen: 0, observed: Arc::clone(&observed) }).collect();
        let report = run_cluster(server, workers, iters);
        assert_eq!(report.server.total, (n * iters) as u64);
        assert!(report.wall_secs >= 0.0);
    }
}
