#![warn(missing_docs)]

//! # dgs-psim
//!
//! Parameter-server cluster simulation infrastructure for the DGS
//! reproduction. Two execution engines share the same worker/server logic
//! traits so the algorithms in `dgs-core` run unchanged on both:
//!
//! * [`thread_engine`] — one OS thread per worker plus a server thread over
//!   crossbeam channels. Real asynchrony: workers race, updates interleave
//!   nondeterministically, exactly like the paper's PyTorch/gloo cluster.
//!   Used for the accuracy experiments.
//! * [`des`] — a deterministic discrete-event simulator with a virtual
//!   clock and a bandwidth/latency [`network::NetworkModel`]. Used for the
//!   wall-clock experiments (paper Figs. 5 and 6), where what matters is
//!   the *ratio* of compute time to bytes-on-the-wire, not host speed.
//!
//! Plus:
//!
//! * [`network`] — link model mapping message bytes to transfer seconds.
//! * [`stats`] — lock-free traffic counters and staleness histograms.
//! * [`straggler`] — heterogeneous/jittery worker compute-time model (the
//!   paper's motivation for asynchrony: synchronous SGD "may suffer from
//!   worker lags").

pub mod des;
pub mod network;
pub mod stats;
pub mod straggler;
pub mod thread_engine;

pub use des::{
    run_des, run_des_budget, run_des_faulty, Budget, DesNetwork, DesReport, DesServer, DesWorker,
    WorkerFailure,
};
pub use network::NetworkModel;
pub use stats::{StalenessStats, TrafficStats};
pub use straggler::StragglerModel;
pub use thread_engine::{run_cluster, ClusterReport, ServerLogic, WorkerLogic};
