//! Deterministic discrete-event simulation of a parameter-server cluster.
//!
//! The DES reproduces the paper's wall-clock experiments (training loss vs
//! time at 1 Gbps, speedup vs worker count at two bandwidths) without real
//! hardware: every worker's iteration costs a modelled compute time, every
//! message costs `latency + bytes/bandwidth`, and the single-threaded server
//! processes gradients strictly in virtual-arrival order. Same seed ⇒ same
//! event trace ⇒ identical results, which the test suite checks.
//!
//! ## Link topology
//!
//! By default the server's NIC is a **shared** resource
//! ([`DesNetwork::shared_server_link`]): all uplink transfers serialise on
//! one inbound channel and all downlink transfers on one outbound channel,
//! both at the configured bandwidth (full duplex). This is what makes dense
//! ASGD collapse as workers are added — the paper's "bottleneck of
//! communication" — while sparse DGS traffic leaves the channel mostly
//! idle. Per-worker independent links are available for ablations.
//!
//! Event flow per worker round-trip:
//!
//! ```text
//! ReplyArrive(k) --apply+compute--> SendReady(k)
//! SendReady(k)   --up channel-->    GradArrive(k)
//! GradArrive(k)  --server queue-->  ReplyReady(k)
//! ReplyReady(k)  --down channel-->  ReplyArrive(k)
//! ```

use crate::network::NetworkModel;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Worker side of a DES run.
pub trait DesWorker {
    /// Worker→server payload.
    type Up;
    /// Server→worker payload.
    type Down;

    /// Computes one local iteration. Returns the payload, its wire size in
    /// bytes, and the modelled compute time in seconds.
    fn compute(&mut self) -> (Self::Up, usize, f64);

    /// Applies the server's reply to local state.
    fn apply(&mut self, down: Self::Down);
}

/// Server side of a DES run. Called in virtual-arrival order.
pub trait DesServer {
    /// Worker→server payload.
    type Up;
    /// Server→worker payload.
    type Down;

    /// Processes one gradient arriving at virtual time `vtime`. Returns the
    /// reply, its wire size in bytes, and the modelled server processing
    /// time in seconds.
    fn handle(
        &mut self,
        worker: usize,
        seq: u64,
        vtime: f64,
        up: Self::Up,
    ) -> (Self::Down, usize, f64);
}

/// Network configuration of a DES run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesNetwork {
    /// Per-message link model (latency + bandwidth).
    pub model: NetworkModel,
    /// When true (the default and the physically faithful setting), all
    /// transfers serialise on the server's NIC — one inbound and one
    /// outbound channel at `model.bandwidth_bps`.
    pub shared_server_link: bool,
}

impl DesNetwork {
    /// Shared-NIC topology (the default).
    pub fn shared(model: NetworkModel) -> Self {
        DesNetwork { model, shared_server_link: true }
    }

    /// Independent per-worker links (infinite server NIC) — for ablations.
    pub fn per_worker(model: NetworkModel) -> Self {
        DesNetwork { model, shared_server_link: false }
    }
}

impl From<NetworkModel> for DesNetwork {
    fn from(model: NetworkModel) -> Self {
        DesNetwork::shared(model)
    }
}

/// Outcome of a DES run.
#[derive(Debug, Clone, PartialEq)]
pub struct DesReport {
    /// Virtual time at which the last worker finished, in seconds.
    pub total_time: f64,
    /// Total worker→server bytes.
    pub bytes_up: u64,
    /// Total server→worker bytes.
    pub bytes_down: u64,
    /// Total iterations processed across workers.
    pub iterations: u64,
    /// Virtual time the server spent busy processing, in seconds.
    pub server_busy: f64,
    /// Virtual time the shared uplink channel was occupied.
    pub uplink_busy: f64,
    /// Virtual time the shared downlink channel was occupied.
    pub downlink_busy: f64,
}

enum EventKind<U, D> {
    SendReady { worker: usize, up: U, bytes: usize },
    GradArrive { worker: usize, up: U },
    ReplyReady { worker: usize, down: D, bytes: usize },
    ReplyArrive { worker: usize, down: D },
}

struct Event<U, D> {
    time: f64,
    seq: u64,
    kind: EventKind<U, D>,
}

impl<U, D> PartialEq for Event<U, D> {
    fn eq(&self, other: &Self) -> bool {
        // Must agree with `Ord::cmp` — float `==` would make a NaN-timed
        // event unequal to itself, breaking the Eq/Ord consistency the
        // BinaryHeap relies on. Delegating keeps one source of truth.
        self.cmp(other) == Ordering::Equal
    }
}

impl<U, D> Eq for Event<U, D> {}

impl<U, D> Ord for Event<U, D> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse for earliest-first, with the
        // insertion sequence as a deterministic tie-break. `total_cmp`
        // keeps this a total order even for NaN timestamps (a NaN compute
        // time must not collapse the heap ordering), and `seq` breaks
        // every remaining tie deterministically.
        other.time.total_cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<U, D> PartialOrd for Event<U, D> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// How much work a DES run performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Every worker performs exactly this many round-trips (a quota; the
    /// run ends when the *slowest* worker finishes — fig. 6's fixed-work
    /// throughput protocol).
    PerWorker(usize),
    /// The cluster performs this many round-trips in total, first-come
    /// first-served: fast workers naturally contribute more. This is how
    /// an asynchronous cluster actually consumes an epoch budget, and what
    /// lets it shrug off stragglers.
    Total(usize),
}

/// Runs the simulation until every worker has completed
/// `iters_per_worker` round-trips.
pub fn run_des<S, W>(
    server: &mut S,
    workers: &mut [W],
    iters_per_worker: usize,
    net: impl Into<DesNetwork>,
) -> DesReport
where
    S: DesServer,
    W: DesWorker<Up = S::Up, Down = S::Down>,
{
    run_des_budget(server, workers, Budget::PerWorker(iters_per_worker), net)
}

/// Fault injection: worker `worker` stops participating after completing
/// `after_iters` round-trips (a crash; already-sent messages still arrive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerFailure {
    /// Which worker fails.
    pub worker: usize,
    /// Round-trips it completes before crashing.
    pub after_iters: usize,
}

/// Runs the simulation until the given [`Budget`] is exhausted.
pub fn run_des_budget<S, W>(
    server: &mut S,
    workers: &mut [W],
    budget: Budget,
    net: impl Into<DesNetwork>,
) -> DesReport
where
    S: DesServer,
    W: DesWorker<Up = S::Up, Down = S::Down>,
{
    run_des_faulty(server, workers, budget, net, &[])
}

/// [`run_des_budget`] with crash-fault injection. With [`Budget::Total`],
/// surviving workers absorb a crashed worker's share — the fault-tolerance
/// behaviour a parameter-server deployment relies on (state lives in `M` /
/// `v_k`, so no worker is load-bearing).
pub fn run_des_faulty<S, W>(
    server: &mut S,
    workers: &mut [W],
    budget: Budget,
    net: impl Into<DesNetwork>,
    failures: &[WorkerFailure],
) -> DesReport
where
    S: DesServer,
    W: DesWorker<Up = S::Up, Down = S::Down>,
{
    let net = net.into();
    let n = workers.len();
    let mut queue: BinaryHeap<Event<S::Up, S::Down>> = BinaryHeap::new();
    let mut event_seq = 0u64;
    let mut server_seq = 0u64;
    let mut server_free = 0.0f64;
    let mut up_free = 0.0f64;
    let mut down_free = 0.0f64;
    let (per_worker_quota, mut total_remaining) = match budget {
        Budget::PerWorker(iters) => (iters, n.saturating_mul(iters)),
        Budget::Total(total) => (usize::MAX, total),
    };
    let mut remaining_iters: Vec<usize> = vec![per_worker_quota; n];
    // Apply failure caps: a worker that crashes after k iterations behaves
    // exactly like one whose quota is k.
    for f in failures {
        if f.worker < n {
            remaining_iters[f.worker] = remaining_iters[f.worker].min(f.after_iters);
        }
    }
    let mut report = DesReport {
        total_time: 0.0,
        bytes_up: 0,
        bytes_down: 0,
        iterations: 0,
        server_busy: 0.0,
        uplink_busy: 0.0,
        downlink_busy: 0.0,
    };
    let tx_time = |bytes: usize| (bytes as f64 * 8.0) / net.model.bandwidth_bps;

    // Kick off: every worker computes its first gradient starting at t = 0.
    for (wid, worker) in workers.iter_mut().enumerate() {
        if remaining_iters[wid] == 0 || total_remaining == 0 {
            break;
        }
        total_remaining -= 1;
        let (up, bytes, compute) = worker.compute();
        report.bytes_up += bytes as u64;
        queue.push(Event {
            time: compute,
            seq: event_seq,
            kind: EventKind::SendReady { worker: wid, up, bytes },
        });
        event_seq += 1;
    }

    while let Some(Event { time, kind, .. }) = queue.pop() {
        match kind {
            EventKind::SendReady { worker, up, bytes } => {
                let occupancy = tx_time(bytes);
                let start = if net.shared_server_link { up_free.max(time) } else { time };
                up_free = start + occupancy;
                report.uplink_busy += occupancy;
                queue.push(Event {
                    time: start + net.model.latency_s + occupancy,
                    seq: event_seq,
                    kind: EventKind::GradArrive { worker, up },
                });
                event_seq += 1;
            }
            EventKind::GradArrive { worker, up } => {
                let start = server_free.max(time);
                let (down, bytes, proc) = server.handle(worker, server_seq, start, up);
                server_seq += 1;
                report.server_busy += proc;
                server_free = start + proc;
                report.bytes_down += bytes as u64;
                queue.push(Event {
                    time: server_free,
                    seq: event_seq,
                    kind: EventKind::ReplyReady { worker, down, bytes },
                });
                event_seq += 1;
            }
            EventKind::ReplyReady { worker, down, bytes } => {
                let occupancy = tx_time(bytes);
                let start = if net.shared_server_link { down_free.max(time) } else { time };
                down_free = start + occupancy;
                report.downlink_busy += occupancy;
                queue.push(Event {
                    time: start + net.model.latency_s + occupancy,
                    seq: event_seq,
                    kind: EventKind::ReplyArrive { worker, down },
                });
                event_seq += 1;
            }
            EventKind::ReplyArrive { worker, down } => {
                workers[worker].apply(down);
                report.iterations += 1;
                remaining_iters[worker] = remaining_iters[worker].saturating_sub(1);
                report.total_time = report.total_time.max(time);
                if remaining_iters[worker] > 0 && total_remaining > 0 {
                    total_remaining -= 1;
                    let (up, bytes, compute) = workers[worker].compute();
                    report.bytes_up += bytes as u64;
                    queue.push(Event {
                        time: time + compute,
                        seq: event_seq,
                        kind: EventKind::SendReady { worker, up, bytes },
                    });
                    event_seq += 1;
                }
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy protocol: payloads are unit gradients; fixed compute/proc time.
    struct ToyServer {
        compute_log: Vec<(usize, f64)>,
        proc_time: f64,
        reply_bytes: usize,
    }

    impl DesServer for ToyServer {
        type Up = ();
        type Down = ();

        fn handle(&mut self, worker: usize, _seq: u64, vtime: f64, _up: ()) -> ((), usize, f64) {
            self.compute_log.push((worker, vtime));
            ((), self.reply_bytes, self.proc_time)
        }
    }

    struct ToyWorker {
        compute_time: f64,
        up_bytes: usize,
        applied: usize,
    }

    impl DesWorker for ToyWorker {
        type Up = ();
        type Down = ();

        fn compute(&mut self) -> ((), usize, f64) {
            ((), self.up_bytes, self.compute_time)
        }

        fn apply(&mut self, _down: ()) {
            self.applied += 1;
        }
    }

    fn toy_workers(n: usize, compute: f64, bytes: usize) -> Vec<ToyWorker> {
        (0..n).map(|_| ToyWorker { compute_time: compute, up_bytes: bytes, applied: 0 }).collect()
    }

    #[test]
    fn single_worker_timing_exact() {
        // compute 1s, transfer 0.5s each way, proc 0.1s, 3 iters:
        // each round trip = 1 + 0.5 + 0.1 + 0.5 = 2.1s
        let net = NetworkModel { bandwidth_bps: 16.0, latency_s: 0.0 }; // 1 byte = 0.5s
        let mut server = ToyServer { compute_log: Vec::new(), proc_time: 0.1, reply_bytes: 1 };
        let mut workers = toy_workers(1, 1.0, 1);
        let report = run_des(&mut server, &mut workers, 3, net);
        assert!((report.total_time - 6.3).abs() < 1e-9, "total {}", report.total_time);
        assert_eq!(report.iterations, 3);
        assert_eq!(workers[0].applied, 3);
        assert!((report.server_busy - 0.3).abs() < 1e-12);
        assert!((report.uplink_busy - 1.5).abs() < 1e-12);
        assert!((report.downlink_busy - 1.5).abs() < 1e-12);
    }

    #[test]
    fn server_arrival_order_is_virtual_time_order() {
        // Two workers with different compute times: the faster one's
        // gradients must be processed first.
        let net = NetworkModel::infinite();
        let mut server = ToyServer { compute_log: Vec::new(), proc_time: 0.0, reply_bytes: 0 };
        let mut workers = vec![
            ToyWorker { compute_time: 1.0, up_bytes: 0, applied: 0 },
            ToyWorker { compute_time: 0.4, up_bytes: 0, applied: 0 },
        ];
        run_des(&mut server, &mut workers, 2, net);
        // Arrivals: w1@0.4, w1@0.8, w0@1.0, w0@2.0
        let order: Vec<usize> = server.compute_log.iter().map(|&(w, _)| w).collect();
        assert_eq!(order, vec![1, 1, 0, 0]);
        let times: Vec<f64> = server.compute_log.iter().map(|&(_, t)| t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "times sorted: {times:?}");
    }

    #[test]
    fn bandwidth_bottleneck_dominates_when_slow() {
        // Large messages on a slow link: doubling bandwidth should roughly
        // halve total time when transfer dominates.
        let mut s1 = ToyServer { compute_log: Vec::new(), proc_time: 0.0, reply_bytes: 1_000_000 };
        let mut w1 = toy_workers(1, 0.001, 1_000_000);
        let slow = run_des(&mut s1, &mut w1, 5, NetworkModel::new(0.1, 0.0));
        let mut s2 = ToyServer { compute_log: Vec::new(), proc_time: 0.0, reply_bytes: 1_000_000 };
        let mut w2 = toy_workers(1, 0.001, 1_000_000);
        let fast = run_des(&mut s2, &mut w2, 5, NetworkModel::new(0.2, 0.0));
        let ratio = slow.total_time / fast.total_time;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut s = ToyServer { compute_log: Vec::new(), proc_time: 0.01, reply_bytes: 100 };
            let mut w = toy_workers(4, 0.1, 200);
            let r = run_des(&mut s, &mut w, 10, NetworkModel::one_gbps());
            (r, s.compute_log)
        };
        let (r1, log1) = run();
        let (r2, log2) = run();
        assert_eq!(r1, r2);
        assert_eq!(log1.len(), log2.len());
        for (a, b) in log1.iter().zip(log2.iter()) {
            assert_eq!(a.0, b.0);
            assert!((a.1 - b.1).abs() < 1e-12);
        }
    }

    #[test]
    fn byte_accounting() {
        let mut s = ToyServer { compute_log: Vec::new(), proc_time: 0.0, reply_bytes: 7 };
        let mut w = toy_workers(3, 0.01, 11);
        let r = run_des(&mut s, &mut w, 4, NetworkModel::ten_gbps());
        assert_eq!(r.bytes_up, 3 * 4 * 11);
        assert_eq!(r.bytes_down, 3 * 4 * 7);
        assert_eq!(r.iterations, 12);
    }

    #[test]
    fn zero_iters_empty_report() {
        let mut s = ToyServer { compute_log: Vec::new(), proc_time: 0.0, reply_bytes: 0 };
        let mut w = toy_workers(2, 0.1, 10);
        let r = run_des(&mut s, &mut w, 0, NetworkModel::ten_gbps());
        assert_eq!(r.iterations, 0);
        assert_eq!(r.total_time, 0.0);
    }

    #[test]
    fn server_serialisation_limits_throughput() {
        // 8 workers, zero compute/transfer, proc 0.1s: server is the only
        // resource, so total time ≈ iters * workers * 0.1.
        let mut s = ToyServer { compute_log: Vec::new(), proc_time: 0.1, reply_bytes: 0 };
        let mut w = toy_workers(8, 0.0, 0);
        let r = run_des(&mut s, &mut w, 5, NetworkModel::infinite());
        assert!((r.total_time - 4.0).abs() < 1e-6, "total {}", r.total_time);
        assert!((r.server_busy - 4.0).abs() < 1e-6);
    }

    #[test]
    fn total_budget_lets_fast_workers_compensate() {
        // Worker 0 is 8x slower. With a total budget, the fast worker
        // absorbs most of the work and the run finishes far sooner than
        // with rigid per-worker quotas.
        let mk_workers = || {
            vec![
                ToyWorker { compute_time: 0.8, up_bytes: 0, applied: 0 },
                ToyWorker { compute_time: 0.1, up_bytes: 0, applied: 0 },
            ]
        };
        let net = NetworkModel::infinite();
        let mut s1 = ToyServer { compute_log: Vec::new(), proc_time: 0.0, reply_bytes: 0 };
        let mut quota_ws = mk_workers();
        let quota = run_des_budget(&mut s1, &mut quota_ws, Budget::PerWorker(8), net);
        let mut s2 = ToyServer { compute_log: Vec::new(), proc_time: 0.0, reply_bytes: 0 };
        let mut total_ws = mk_workers();
        let total = run_des_budget(&mut s2, &mut total_ws, Budget::Total(16), net);
        assert_eq!(quota.iterations, 16);
        assert_eq!(total.iterations, 16);
        // Quota mode waits for the straggler's 8 iterations (6.4s); total
        // mode lets the fast worker take the lion's share.
        assert!(
            total.total_time < 0.5 * quota.total_time,
            "budget mode should dodge the straggler: {} vs {}",
            total.total_time,
            quota.total_time
        );
        assert!(
            total_ws[1].applied > total_ws[0].applied,
            "fast worker should contribute more: {} vs {}",
            total_ws[1].applied,
            total_ws[0].applied
        );
    }

    #[test]
    fn crashed_worker_share_is_absorbed_under_total_budget() {
        // Worker 0 crashes after 2 iterations; with a total budget of 12
        // the survivor still completes all 12.
        let net = NetworkModel::infinite();
        let mut s = ToyServer { compute_log: Vec::new(), proc_time: 0.0, reply_bytes: 0 };
        let mut w = toy_workers(2, 0.1, 0);
        let failures = [WorkerFailure { worker: 0, after_iters: 2 }];
        let r = run_des_faulty(&mut s, &mut w, Budget::Total(12), net, &failures);
        assert_eq!(r.iterations, 12);
        assert_eq!(w[0].applied, 2, "crashed worker stops at its cap");
        assert_eq!(w[1].applied, 10, "survivor absorbs the remainder");
    }

    #[test]
    fn crashed_worker_truncates_per_worker_quota() {
        // Under per-worker quotas a crash simply loses that worker's tail.
        let net = NetworkModel::infinite();
        let mut s = ToyServer { compute_log: Vec::new(), proc_time: 0.0, reply_bytes: 0 };
        let mut w = toy_workers(3, 0.1, 0);
        let failures = [WorkerFailure { worker: 1, after_iters: 1 }];
        let r = run_des_faulty(&mut s, &mut w, Budget::PerWorker(4), net, &failures);
        assert_eq!(r.iterations, 4 + 1 + 4);
        assert_eq!(w[1].applied, 1);
    }

    #[test]
    fn failure_for_unknown_worker_is_ignored() {
        let net = NetworkModel::infinite();
        let mut s = ToyServer { compute_log: Vec::new(), proc_time: 0.0, reply_bytes: 0 };
        let mut w = toy_workers(2, 0.1, 0);
        let failures = [WorkerFailure { worker: 99, after_iters: 0 }];
        let r = run_des_faulty(&mut s, &mut w, Budget::PerWorker(3), net, &failures);
        assert_eq!(r.iterations, 6);
    }

    #[test]
    fn zero_total_budget_is_empty() {
        let mut s = ToyServer { compute_log: Vec::new(), proc_time: 0.0, reply_bytes: 0 };
        let mut w = toy_workers(3, 0.1, 10);
        let r = run_des_budget(&mut s, &mut w, Budget::Total(0), NetworkModel::ten_gbps());
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn event_order_is_total_even_for_nan_times() {
        // Regression: PartialEq used float `==`, so a NaN-timed event was
        // unequal to itself while Ord::cmp said Equal — an Eq/Ord
        // inconsistency under the BinaryHeap. The order must be total:
        // reflexive equality, antisymmetry, and NaN sorting consistently.
        let ev = |time: f64, seq: u64| Event::<(), ()> {
            time,
            seq,
            kind: EventKind::SendReady { worker: 0, up: (), bytes: 0 },
        };
        let nan = ev(f64::NAN, 3);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(nan == nan, "NaN-timed event must equal itself");
        // Same NaN time, different seq: the tie-break still orders them.
        let nan2 = ev(f64::NAN, 4);
        assert_ne!(nan.cmp(&nan2), Ordering::Equal);
        assert_eq!(nan.cmp(&nan2), nan2.cmp(&nan).reverse(), "antisymmetry");
        // NaN vs finite: total_cmp places NaN after +inf; both directions
        // must agree (no partial_cmp-style None collapse).
        let fin = ev(1.0, 1);
        assert_ne!(nan.cmp(&fin), Ordering::Equal);
        assert_eq!(nan.cmp(&fin), fin.cmp(&nan).reverse());
        // Max-heap semantics: the NaN event (largest time under the total
        // order) must NOT be the max — ordering is reversed for
        // earliest-first, so the finite event pops first.
        assert_eq!(fin.cmp(&nan), Ordering::Greater);
    }

    #[test]
    fn nan_compute_time_does_not_lose_events_or_determinism() {
        // A worker whose cost model emits NaN (e.g. 0.0/0.0 from an
        // uncalibrated profile) poisons timestamps. The DES must still
        // process every event exactly once and replay identically — the
        // schedule is garbage, but deterministic garbage, so the bug is
        // observable and debuggable instead of a heap-order heisenbug.
        struct NanWorker {
            applied: usize,
        }
        impl DesWorker for NanWorker {
            type Up = ();
            type Down = ();
            fn compute(&mut self) -> ((), usize, f64) {
                ((), 8, f64::NAN)
            }
            fn apply(&mut self, _d: ()) {
                self.applied += 1;
            }
        }
        let run = || {
            let mut s = ToyServer { compute_log: Vec::new(), proc_time: 0.01, reply_bytes: 4 };
            let mut w =
                vec![NanWorker { applied: 0 }, NanWorker { applied: 0 }, NanWorker { applied: 0 }];
            let r = run_des(&mut s, &mut w, 5, NetworkModel::one_gbps());
            let applied: Vec<usize> = w.iter().map(|x| x.applied).collect();
            let order: Vec<usize> = s.compute_log.iter().map(|&(wid, _)| wid).collect();
            (r.iterations, applied, order)
        };
        let (iters1, applied1, order1) = run();
        assert_eq!(iters1, 15, "every round-trip must complete despite NaN times");
        assert_eq!(applied1, vec![5, 5, 5]);
        let (iters2, applied2, order2) = run();
        assert_eq!(iters1, iters2);
        assert_eq!(applied1, applied2);
        assert_eq!(order1, order2, "NaN schedule must replay bit-identically");
    }

    #[test]
    fn shared_link_serialises_transfers() {
        // 4 workers sending 1-second messages simultaneously on a shared
        // channel: arrivals spread out one second apart.
        let net = NetworkModel { bandwidth_bps: 8.0, latency_s: 0.0 }; // 1 byte/s
        let mut s = ToyServer { compute_log: Vec::new(), proc_time: 0.0, reply_bytes: 0 };
        let mut w = toy_workers(4, 0.0, 1);
        run_des(&mut s, &mut w, 1, DesNetwork::shared(net));
        let times: Vec<f64> = s.compute_log.iter().map(|&(_, t)| t).collect();
        assert_eq!(times.len(), 4);
        for (i, &t) in times.iter().enumerate() {
            assert!((t - (i + 1) as f64).abs() < 1e-9, "arrival {i} at {t}, expected {}", i + 1);
        }
    }

    #[test]
    fn per_worker_links_transfer_in_parallel() {
        // Same setup with independent links: all arrive at t = 1.
        let net = NetworkModel { bandwidth_bps: 8.0, latency_s: 0.0 };
        let mut s = ToyServer { compute_log: Vec::new(), proc_time: 0.0, reply_bytes: 0 };
        let mut w = toy_workers(4, 0.0, 1);
        run_des(&mut s, &mut w, 1, DesNetwork::per_worker(net));
        for &(_, t) in &s.compute_log {
            assert!((t - 1.0).abs() < 1e-9, "arrival at {t}");
        }
    }

    #[test]
    fn shared_link_collapses_dense_scaling() {
        // The Fig. 6 mechanism: with transfer ≫ compute, adding workers on
        // a shared NIC buys (almost) no throughput.
        let net = NetworkModel::new(0.001, 0.0); // 1 Mbps
        let bytes = 12_500; // 0.1 s per transfer
        let run_n = |n: usize| {
            let mut s = ToyServer { compute_log: Vec::new(), proc_time: 0.0, reply_bytes: bytes };
            let mut w = toy_workers(n, 0.001, bytes);
            let r = run_des(&mut s, &mut w, 10, DesNetwork::shared(net));
            // Throughput in iterations/second.
            r.iterations as f64 / r.total_time
        };
        let t1 = run_n(1);
        let t4 = run_n(4);
        let t8 = run_n(8);
        // Full duplex: up and down overlap, so the ceiling is 2× the
        // single-worker throughput — and it is already reached at 4
        // workers; going to 8 buys nothing.
        assert!(
            t8 < t1 * 2.2,
            "shared-link dense traffic must cap at the duplex limit: {t1} vs {t8}"
        );
        assert!((t8 - t4).abs() < 0.15 * t4, "already saturated at 4 workers: {t4} vs {t8}");
    }
}
