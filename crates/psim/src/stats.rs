//! Lock-free traffic counters and staleness accounting.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Byte/message counters for one training run, shared across threads.
///
/// Counters use `Relaxed` ordering: they are pure statistics with no
/// synchronisation role, and the engines join all threads before reading
/// the totals (the join provides the happens-before edge).
#[derive(Debug, Default)]
pub struct TrafficStats {
    bytes_up: AtomicU64,
    bytes_down: AtomicU64,
    msgs_up: AtomicU64,
    msgs_down: AtomicU64,
}

impl TrafficStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        TrafficStats::default()
    }

    /// Records one worker→server message of `bytes`.
    pub fn record_up(&self, bytes: usize) {
        self.bytes_up.fetch_add(bytes as u64, Ordering::Relaxed);
        self.msgs_up.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one server→worker message of `bytes`.
    pub fn record_down(&self, bytes: usize) {
        self.bytes_down.fetch_add(bytes as u64, Ordering::Relaxed);
        self.msgs_down.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the counters.
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            bytes_up: self.bytes_up.load(Ordering::Relaxed),
            bytes_down: self.bytes_down.load(Ordering::Relaxed),
            msgs_up: self.msgs_up.load(Ordering::Relaxed),
            msgs_down: self.msgs_down.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`TrafficStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficSnapshot {
    /// Total worker→server bytes.
    pub bytes_up: u64,
    /// Total server→worker bytes.
    pub bytes_down: u64,
    /// Worker→server message count.
    pub msgs_up: u64,
    /// Server→worker message count.
    pub msgs_down: u64,
}

impl TrafficSnapshot {
    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_up + self.bytes_down
    }
}

/// Histogram of update staleness (server timestamp − worker's model
/// timestamp at gradient arrival), the quantity asynchrony degrades.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StalenessStats {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

impl StalenessStats {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        StalenessStats::default()
    }

    /// Records one observed staleness value.
    pub fn record(&mut self, staleness: u64) {
        let idx = staleness as usize;
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += staleness;
        self.max = self.max.max(staleness);
    }

    /// Mean staleness (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Maximum observed staleness.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Raw histogram buckets (index = staleness value).
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn traffic_counting() {
        let s = TrafficStats::new();
        s.record_up(100);
        s.record_up(50);
        s.record_down(200);
        let snap = s.snapshot();
        assert_eq!(snap.bytes_up, 150);
        assert_eq!(snap.bytes_down, 200);
        assert_eq!(snap.msgs_up, 2);
        assert_eq!(snap.msgs_down, 1);
        assert_eq!(snap.total_bytes(), 350);
    }

    #[test]
    fn traffic_concurrent() {
        let s = Arc::new(TrafficStats::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_up(3);
                        s.record_down(7);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = s.snapshot();
        assert_eq!(snap.bytes_up, 24_000);
        assert_eq!(snap.bytes_down, 56_000);
        assert_eq!(snap.msgs_up, 8_000);
    }

    #[test]
    fn staleness_histogram() {
        let mut st = StalenessStats::new();
        for v in [0u64, 0, 1, 3, 3, 3] {
            st.record(v);
        }
        assert_eq!(st.count(), 6);
        assert_eq!(st.max(), 3);
        assert!((st.mean() - 10.0 / 6.0).abs() < 1e-9);
        assert_eq!(st.buckets(), &[2, 1, 0, 3]);
    }

    #[test]
    fn staleness_empty() {
        let st = StalenessStats::new();
        assert_eq!(st.mean(), 0.0);
        assert_eq!(st.max(), 0);
    }
}
