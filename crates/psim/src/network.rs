//! Link model: bytes on the wire → seconds of transfer time.

use serde::{Deserialize, Serialize};

/// A point-to-point link between a worker and the parameter server.
///
/// Transfer time is the usual first-order model
/// `latency + bytes / bandwidth`. The paper evaluates 10 Gbps and 1 Gbps
/// Ethernet; [`NetworkModel::ten_gbps`] and [`NetworkModel::one_gbps`]
/// reproduce those settings with a LAN-typical latency.
///
/// ```
/// use dgs_psim::NetworkModel;
///
/// let lan = NetworkModel::one_gbps();
/// // A 46 MB ResNet-18 model takes ~0.37 s at 1 Gbps.
/// let t = lan.transfer_time(46_000_000);
/// assert!(t > 0.3 && t < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Link bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// One-way latency in seconds per message.
    pub latency_s: f64,
}

impl NetworkModel {
    /// Creates a link from a bandwidth in Gbps and latency in microseconds.
    pub fn new(bandwidth_gbps: f64, latency_us: f64) -> Self {
        assert!(bandwidth_gbps > 0.0, "bandwidth must be positive");
        assert!(latency_us >= 0.0, "latency must be non-negative");
        NetworkModel { bandwidth_bps: bandwidth_gbps * 1e9, latency_s: latency_us * 1e-6 }
    }

    /// The paper's 10 Gbps Ethernet LAN setting.
    pub fn ten_gbps() -> Self {
        NetworkModel::new(10.0, 50.0)
    }

    /// The paper's throttled 1 Gbps setting (Fig. 5, Fig. 6).
    pub fn one_gbps() -> Self {
        NetworkModel::new(1.0, 50.0)
    }

    /// An effectively infinite link, for isolating compute scaling.
    pub fn infinite() -> Self {
        NetworkModel { bandwidth_bps: f64::INFINITY, latency_s: 0.0 }
    }

    /// Seconds to move `bytes` across the link.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.latency_s + (bytes as f64 * 8.0) / self.bandwidth_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_linear_in_bytes() {
        let net = NetworkModel::new(1.0, 0.0); // 1 Gbps, no latency
                                               // 125 MB at 1 Gbps = 1 second.
        assert!((net.transfer_time(125_000_000) - 1.0).abs() < 1e-9);
        assert!((net.transfer_time(0)).abs() < 1e-12);
    }

    #[test]
    fn latency_additive() {
        let net = NetworkModel::new(10.0, 100.0);
        let t = net.transfer_time(0);
        assert!((t - 100e-6).abs() < 1e-12);
        assert!(net.transfer_time(1000) > t);
    }

    #[test]
    fn presets_ordered() {
        let b = 46_000_000usize; // ~ResNet-18 parameter bytes
        assert!(
            NetworkModel::one_gbps().transfer_time(b) > NetworkModel::ten_gbps().transfer_time(b)
        );
        assert_eq!(NetworkModel::infinite().transfer_time(b), 0.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        NetworkModel::new(0.0, 1.0);
    }
}
