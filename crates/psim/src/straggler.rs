//! Straggler modelling: heterogeneous and jittery worker compute times.
//!
//! The paper's opening motivation for asynchronous training is that
//! synchronous SGD "may suffer from worker lags". This module provides the
//! lag model both engines' virtual-time paths consume: each worker gets a
//! static speed multiplier plus optional per-iteration lognormal jitter,
//! all deterministic per seed.

use serde::{Deserialize, Serialize};

/// A deterministic per-(worker, iteration) compute-time multiplier model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StragglerModel {
    /// Static multiplier per worker (1.0 = nominal speed). Workers beyond
    /// the vector's length use 1.0.
    pub static_multipliers: Vec<f64>,
    /// Sigma of the lognormal per-iteration jitter (0 disables jitter).
    pub jitter_sigma: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl StragglerModel {
    /// A uniform cluster: no stragglers, no jitter.
    pub fn none() -> Self {
        StragglerModel { static_multipliers: Vec::new(), jitter_sigma: 0.0, seed: 0 }
    }

    /// One straggler: worker 0 runs `slowdown`× slower than the rest.
    pub fn one_slow(slowdown: f64) -> Self {
        assert!(slowdown >= 1.0, "slowdown must be >= 1");
        StragglerModel { static_multipliers: vec![slowdown], jitter_sigma: 0.0, seed: 0 }
    }

    /// Uniform cluster with lognormal jitter of the given sigma.
    pub fn jitter(sigma: f64, seed: u64) -> Self {
        StragglerModel { static_multipliers: Vec::new(), jitter_sigma: sigma, seed }
    }

    /// The compute-time multiplier for `worker` at local iteration `iter`.
    ///
    /// Pure function of `(model, worker, iter)` so replays are identical.
    pub fn multiplier(&self, worker: usize, iter: u64) -> f64 {
        let base = self.static_multipliers.get(worker).copied().unwrap_or(1.0);
        if self.jitter_sigma == 0.0 {
            return base;
        }
        // Deterministic gaussian from a SplitMix64 hash of (seed, worker,
        // iter) pushed through Box–Muller.
        let mut z = self
            .seed
            .wrapping_add((worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(iter.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let u1 = ((z >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
        let mut z2 = z.wrapping_mul(0x2545_F491_4F6C_DD1D);
        z2 ^= z2 >> 29;
        let u2 = (z2 >> 11) as f64 / (1u64 << 53) as f64;
        let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        base * (self.jitter_sigma * gauss).exp()
    }

    /// Whether the model is the trivial no-straggler model.
    pub fn is_none(&self) -> bool {
        self.static_multipliers.iter().all(|&m| m == 1.0) && self.jitter_sigma == 0.0
    }
}

impl Default for StragglerModel {
    fn default() -> Self {
        StragglerModel::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        let m = StragglerModel::none();
        assert!(m.is_none());
        for w in 0..8 {
            for i in 0..8 {
                assert_eq!(m.multiplier(w, i), 1.0);
            }
        }
    }

    #[test]
    fn one_slow_targets_worker_zero() {
        let m = StragglerModel::one_slow(4.0);
        assert_eq!(m.multiplier(0, 3), 4.0);
        assert_eq!(m.multiplier(1, 3), 1.0);
        assert_eq!(m.multiplier(7, 0), 1.0);
        assert!(!m.is_none());
    }

    #[test]
    #[should_panic(expected = "slowdown")]
    fn one_slow_rejects_speedup() {
        StragglerModel::one_slow(0.5);
    }

    #[test]
    fn jitter_is_deterministic_and_positive() {
        let m = StragglerModel::jitter(0.3, 42);
        for w in 0..4 {
            for i in 0..16 {
                let a = m.multiplier(w, i);
                let b = m.multiplier(w, i);
                assert_eq!(a, b);
                assert!(a > 0.0);
            }
        }
        // Different (worker, iter) pairs draw different multipliers.
        assert_ne!(m.multiplier(0, 0), m.multiplier(0, 1));
        assert_ne!(m.multiplier(0, 0), m.multiplier(1, 0));
    }

    #[test]
    fn jitter_moments_roughly_lognormal() {
        let sigma = 0.25;
        let m = StragglerModel::jitter(sigma, 7);
        let n = 20_000u64;
        let mean_log: f64 = (0..n).map(|i| m.multiplier(0, i).ln()).sum::<f64>() / n as f64;
        let var_log: f64 =
            (0..n).map(|i| (m.multiplier(0, i).ln() - mean_log).powi(2)).sum::<f64>() / n as f64;
        assert!(mean_log.abs() < 0.02, "log-mean {mean_log}");
        assert!((var_log.sqrt() - sigma).abs() < 0.02, "log-sigma {}", var_log.sqrt());
    }

    #[test]
    fn static_and_jitter_compose() {
        let m = StragglerModel { static_multipliers: vec![1.0, 3.0], jitter_sigma: 0.1, seed: 1 };
        // Worker 1's multipliers are ~3x worker 0's in distribution.
        let n = 5000u64;
        let mean0: f64 = (0..n).map(|i| m.multiplier(0, i)).sum::<f64>() / n as f64;
        let mean1: f64 = (0..n).map(|i| m.multiplier(1, i)).sum::<f64>() / n as f64;
        assert!((mean1 / mean0 - 3.0).abs() < 0.15, "ratio {}", mean1 / mean0);
    }
}
