//! Compressor-step microbenchmarks: the per-iteration worker-side cost of
//! each method's update construction on a 1M-parameter model — DGS's
//! SAMomentum vs DGC's correction+masking vs plain gradient dropping.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dgs_core::compress::{
    Compressor, DenseCompressor, DgcCompressor, GradientDroppingCompressor, SaMomentumCompressor,
    StepCtx,
};
use dgs_sparsify::Partition;

fn bench_compressors(c: &mut Criterion) {
    let dim = 1_000_000;
    let part = Partition::from_layer_sizes(
        (0..20).map(|i| (format!("layer{i}"), dim / 20)).collect::<Vec<_>>(),
    );
    let grad: Vec<f32> = (0..dim).map(|i| ((i as f64 * 0.7391).sin() * 2.0) as f32).collect();
    let ctx = StepCtx { lr: 0.1, ratio: 0.01 };

    let mut group = c.benchmark_group("compressor_step_1M");
    group.bench_function("dense_asgd", |b| {
        let mut comp = DenseCompressor;
        b.iter(|| comp.compress(black_box(&grad), &part, ctx))
    });
    group.bench_function("gradient_dropping", |b| {
        let mut comp = GradientDroppingCompressor::new(dim);
        b.iter(|| comp.compress(black_box(&grad), &part, ctx))
    });
    group.bench_function("dgc", |b| {
        let mut comp = DgcCompressor::new(dim, 0.7, 5.0);
        b.iter(|| comp.compress(black_box(&grad), &part, ctx))
    });
    group.bench_function("samomentum", |b| {
        let mut comp = SaMomentumCompressor::new(dim, 0.7);
        b.iter(|| comp.compress(black_box(&grad), &part, ctx))
    });
    group.finish();
}

criterion_group!(benches, bench_compressors);
criterion_main!(benches);
