//! Top-k selection engine benchmarks: comparator reference vs the radix
//! engine across a (dim × keep-ratio × distribution) grid — the
//! per-iteration selection cost paid on both sparsification ways (worker
//! uplink and server secondary compression). Results are recorded in
//! `BENCH_topk.json` at the repo root.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dgs_sparsify::{
    hierarchical_threshold, radix_topk_indices, sampled_threshold, topk_indices, topk_threshold,
    SelectScratch,
};

/// Smooth heavy-tailed synthetic gradient (cubed sinusoid mix).
fn synth_heavy(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let x = (i as f64 * 0.7391).sin() * 2.0 + (i as f64 * 0.113).cos();
            (x * x * x) as f32
        })
        .collect()
}

/// A one-ulp-band magnitude plateau (every key inside a single two-byte
/// prefix): the radix cascade's adversarial case — it triggers the
/// filtered narrowing pass — and the comparator's best case.
fn synth_uniform(n: usize) -> Vec<f32> {
    (0..n).map(|i| 1.0 + ((i as f64 * 0.618_033_988).fract() * 1e-3) as f32).collect()
}

/// Exponential-ish decay with sign flips: very skewed, top-heavy.
fn synth_skewed(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let mag = (-(i as f64) * 8.0 / n as f64).exp();
            (if i % 3 == 0 { -mag } else { mag }) as f32
        })
        .collect()
}

fn bench_engines(c: &mut Criterion) {
    let dists: [(&str, fn(usize) -> Vec<f32>); 3] =
        [("heavy", synth_heavy), ("uniform", synth_uniform), ("skewed", synth_skewed)];
    for &(dist, gen) in &dists {
        let mut group = c.benchmark_group(format!("select/{dist}"));
        for &n in &[10_000usize, 100_000, 1_000_000] {
            let data = gen(n);
            for &ratio_pct in &[1usize, 10] {
                let k = (n * ratio_pct / 100).max(1);
                let id = format!("{n}x{ratio_pct}pct");
                // Cross-check the engines on the exact bench input before
                // timing anything: CI's `--test` smoke of this bench doubles
                // as a large-input differential check.
                let mut scratch = SelectScratch::new();
                assert_eq!(
                    topk_indices(&data, k),
                    radix_topk_indices(&data, k, &mut scratch),
                    "engines disagree on bench input {dist}/{id}"
                );
                group.bench_with_input(BenchmarkId::new("comparator", &id), &n, |b, _| {
                    b.iter(|| topk_indices(black_box(&data), black_box(k)))
                });
                group.bench_with_input(BenchmarkId::new("radix", &id), &n, |b, _| {
                    b.iter(|| radix_topk_indices(black_box(&data), black_box(k), &mut scratch))
                });
            }
        }
        group.finish();
    }
}

fn bench_thresholds(c: &mut Criterion) {
    let mut group = c.benchmark_group("threshold");
    for &n in &[100_000usize, 1_000_000] {
        let data = synth_heavy(n);
        let k = n / 100;
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            b.iter(|| topk_threshold(black_box(&data), black_box(k)))
        });
        group.bench_with_input(BenchmarkId::new("sampled_1pct", n), &n, |b, _| {
            b.iter(|| sampled_threshold(black_box(&data), black_box(k), n / 100, 42))
        });
        group.bench_with_input(BenchmarkId::new("hierarchical", n), &n, |b, _| {
            b.iter(|| hierarchical_threshold(black_box(&data), black_box(k), n / 100, 0.1, 42))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_thresholds);
criterion_main!(benches);
