//! Top-k selection microbenchmarks: exact selection vs sampled threshold
//! estimation across tensor sizes — the per-iteration cost the paper's
//! worker pays before every transmission.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dgs_sparsify::{hierarchical_threshold, sampled_threshold, topk_indices, topk_threshold};

fn synth(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let x = (i as f64 * 0.7391).sin() * 2.0 + (i as f64 * 0.113).cos();
            (x * x * x) as f32
        })
        .collect()
}

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_indices");
    for &n in &[1_000usize, 10_000, 100_000, 1_000_000] {
        let data = synth(n);
        let k = (n / 100).max(1); // R = 1%
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| topk_indices(black_box(&data), black_box(k)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("threshold");
    for &n in &[100_000usize, 1_000_000] {
        let data = synth(n);
        let k = n / 100;
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            b.iter(|| topk_threshold(black_box(&data), black_box(k)))
        });
        group.bench_with_input(BenchmarkId::new("sampled_1pct", n), &n, |b, _| {
            b.iter(|| sampled_threshold(black_box(&data), black_box(k), n / 100, 42))
        });
        group.bench_with_input(BenchmarkId::new("hierarchical", n), &n, |b, _| {
            b.iter(|| hierarchical_threshold(black_box(&data), black_box(k), n / 100, 0.1, 42))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
