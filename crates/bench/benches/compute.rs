//! Compute-tier benchmarks: blocked/SIMD/parallel GEMM, im2col
//! convolution, and whole-model training steps, scalar backend vs the
//! runtime SIMD tier. Results are recorded in `BENCH_compute.json` at the
//! repo root (measured by a standalone interleaved timing mirror on the
//! 1-core container; see its provenance block).
//!
//! Every timed pair is preceded by a bitwise equivalence assertion on the
//! exact bench input: the backends must agree bit for bit before either
//! one is timed, so a regression in the identity contract fails the bench
//! run rather than silently timing divergent code.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dgs_nn::models::{resnet_lite, tiny_cnn};
use dgs_tensor::conv::{conv2d_backward_with, conv2d_forward_with, Conv2dSpec};
use dgs_tensor::{ComputeScratch, Kernel, Tensor};

/// Gradient-like synthetic values: smooth heavy-tailed mix, no specials
/// (torture values live in the equivalence suites, not the timing loop).
fn synth(n: usize, phase: f64) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let x = (i as f64 * 0.7391 + phase).sin() * 2.0 + (i as f64 * 0.113).cos();
            (x * x * x) as f32
        })
        .collect()
}

/// Backends to time: scalar always, SIMD only where the CPU supports it.
fn backends() -> Vec<(&'static str, Kernel)> {
    let mut b = vec![("scalar", Kernel::Scalar)];
    if Kernel::simd_available() {
        b.push(("simd", Kernel::Simd));
    } else {
        eprintln!("compute: no AVX2 on this CPU — timing scalar legs only");
    }
    b
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("compute/gemm");
    for &dim in &[64usize, 128, 256, 384] {
        let a = synth(dim * dim, 0.0);
        let b_mat = synth(dim * dim, 1.0);
        // Bitwise gate on the exact bench input.
        let mut c_scalar = vec![0.0f32; dim * dim];
        let mut c_rt = vec![0.0f32; dim * dim];
        Kernel::Scalar.gemm(&a, &b_mat, &mut c_scalar, dim, dim, dim);
        Kernel::runtime().gemm(&a, &b_mat, &mut c_rt, dim, dim, dim);
        assert!(
            c_scalar.iter().zip(&c_rt).all(|(x, y)| x.to_bits() == y.to_bits()),
            "gemm backends disagree at dim {dim}"
        );
        let mut out = vec![0.0f32; dim * dim];
        for (name, kernel) in backends() {
            group.bench_with_input(BenchmarkId::new(name, dim), &dim, |bch, _| {
                bch.iter(|| {
                    kernel.gemm(black_box(&a), black_box(&b_mat), &mut out, dim, dim, dim);
                    black_box(&out);
                })
            });
        }
    }
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("compute/conv");
    // (batch, channels, hw, out_channels): a tiny_cnn-like stage and a
    // resnet_lite-like stage.
    for &(n, ch, hw, oc) in &[(8usize, 4usize, 16usize, 8usize), (4, 8, 32, 16)] {
        let spec =
            Conv2dSpec { in_channels: ch, out_channels: oc, kernel: 3, stride: 1, padding: 1 };
        let x = Tensor::from_vec([n, ch, hw, hw], synth(n * ch * hw * hw, 0.0)).unwrap();
        let weight = synth(spec.weight_len(), 1.0);
        let bias = synth(oc, 2.0);
        let label = format!("{n}x{ch}x{hw}x{hw}->{oc}");

        // Bitwise gate: forward and backward on the exact bench input.
        let mut s_scalar = ComputeScratch::new(Kernel::Scalar);
        let mut s_rt = ComputeScratch::new(Kernel::runtime());
        let y_scalar = conv2d_forward_with(&mut s_scalar, &x, &weight, &bias, &spec);
        let y_rt = conv2d_forward_with(&mut s_rt, &x, &weight, &bias, &spec);
        assert!(
            y_scalar.data().iter().zip(y_rt.data()).all(|(a, b)| a.to_bits() == b.to_bits()),
            "conv forward backends disagree at {label}"
        );
        let dy = Tensor::from_vec(y_scalar.shape().clone(), synth(y_scalar.numel(), 3.0)).unwrap();
        let g_scalar = conv2d_backward_with(&mut s_scalar, &x, &weight, &dy, &spec, true);
        let g_rt = conv2d_backward_with(&mut s_rt, &x, &weight, &dy, &spec, true);
        assert!(
            g_scalar.dweight.iter().zip(&g_rt.dweight).all(|(a, b)| a.to_bits() == b.to_bits())
                && g_scalar
                    .dx
                    .data()
                    .iter()
                    .zip(g_rt.dx.data())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
            "conv backward backends disagree at {label}"
        );

        for (name, kernel) in backends() {
            let mut scratch = ComputeScratch::new(kernel);
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/forward"), &label),
                &n,
                |bch, _| {
                    bch.iter(|| {
                        let y = conv2d_forward_with(
                            &mut scratch,
                            black_box(&x),
                            black_box(&weight),
                            black_box(&bias),
                            &spec,
                        );
                        scratch.put_tensor(black_box(y));
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/backward"), &label),
                &n,
                |bch, _| {
                    bch.iter(|| {
                        let g = conv2d_backward_with(
                            &mut scratch,
                            black_box(&x),
                            black_box(&weight),
                            black_box(&dy),
                            &spec,
                            true,
                        );
                        scratch.put_tensor(g.dx);
                        scratch.put(g.dweight);
                        scratch.put(g.dbias);
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("compute/train_step");
    group.sample_size(10);
    let cases: Vec<(&str, Box<dyn Fn() -> dgs_nn::Network>, usize)> = vec![
        ("tiny_cnn", Box::new(|| tiny_cnn(3, 16, 10, 8, 7)), 16),
        ("resnet_lite", Box::new(|| resnet_lite(3, 16, 10, 8, 7)), 8),
    ];
    for (model, build, batch) in cases {
        let shape = {
            let probe = build();
            let mut dims = vec![batch];
            dims.extend_from_slice(probe.input_shape().dims());
            dims
        };
        let x = Tensor::randn(shape, 1.0, 11);
        let labels: Vec<usize> = (0..batch).map(|i| i % 10).collect();

        // Bitwise gate: one step on each backend must produce identical
        // gradient bits before any timing happens.
        let grads: Vec<Vec<u32>> = [Kernel::Scalar, Kernel::runtime()]
            .iter()
            .map(|&k| {
                let mut net = build();
                net.set_kernel(k);
                net.train_step(x.clone(), &labels);
                net.params().grad().iter().map(|v| v.to_bits()).collect()
            })
            .collect();
        assert_eq!(grads[0], grads[1], "train-step gradients diverge across backends ({model})");

        for (name, kernel) in backends() {
            let mut net = build();
            net.set_kernel(kernel);
            // Warm the scratch pools so the timed loop is the steady state.
            for _ in 0..2 {
                net.train_step(x.clone(), &labels);
            }
            group.bench_with_input(BenchmarkId::new(name, model), &batch, |bch, _| {
                bch.iter(|| {
                    black_box(net.train_step(black_box(x.clone()), black_box(&labels)));
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_conv, bench_train_step);
criterion_main!(benches);
