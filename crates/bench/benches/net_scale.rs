//! Transport scalability bench: connections × message-rate grid over the
//! two TCP server backends — thread-per-connection (`serve_cluster`) and
//! the readiness event loop (`serve_cluster_evented`) — measuring
//! round-trip latency percentiles, with and without a synchronized
//! retransmit storm.
//!
//! Every scenario opens `conns` real localhost connections against one
//! server, completes the hello handshake on all of them, then drives
//! `rounds` pipelined exchange rounds: each client thread batch-sends one
//! sparse update per connection it owns, then drains the replies,
//! timing each fresh update from its send to its reply read. In storm
//! rounds (every third round) each connection first re-sends its previous
//! sequence number — a duplicate the server must answer with a dense
//! resync reply, exactly the recovery path a real retransmit hits — so
//! the server absorbs a synchronized wave of `conns` duplicates on top of
//! the fresh traffic.
//!
//! The headline cell is `evented / conns ≥ 1000 / storm`: tens of
//! hundreds of concurrent sockets on ONE server OS thread with bounded
//! p99. The thread-per-connection rows are the oracle baseline (one OS
//! thread per socket). Results are recorded in `BENCH_net.json` at the
//! repo root, with provenance caveats — on a 1-core container every
//! latency includes scheduler serialization, so percentiles are upper
//! bounds and cross-backend *shape*, not absolute numbers, is the signal.
//!
//! Not a criterion bench (`harness = false`, plain `main`): the unit of
//! work is a whole multi-connection session, and we want latency
//! percentiles across individual exchanges, which criterion's
//! throughput-of-one-closure model does not express.
//!
//! Usage: `cargo bench --bench net_scale -- [--quick] [--out PATH]`

use dgs_core::protocol::{DownMsg, UpMsg, UpPayload};
use dgs_net::tcp::ServerOpts;
use dgs_net::{
    serve_cluster_evented, Event, EventedOpts, Hello, MsgType, Sequenced, SharedUpdateHandler,
    WireConn, WireStats,
};
use dgs_sparsify::{Partition, SparseUpdate};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Model dimensionality for the synthetic session. Small on purpose: the
/// bench stresses connection count and frame cadence, not payload
/// bandwidth (the codec benches cover bytes/sec).
const DIM: usize = 1024;
/// Top-k ratio for the uplink updates (~51 of 1024 coordinates).
const RATIO: f64 = 0.05;
/// Shared CRC both sides advertise for θ0 — the handshake only checks
/// that they agree.
const THETA0_CRC: u32 = 0x6d74_6453;
/// Client threads driving the connection pool.
const CLIENT_THREADS: usize = 8;

/// Minimal `SharedUpdateHandler`: per-worker applied counters (atomics, so
/// the threaded backend's connection threads stay lock-free) and canned
/// replies. Fresh updates get a sparse diff; duplicates get the dense
/// resync model, mirroring what `LogicHandler` sends on the real recovery
/// path — so a storm round costs the server real dense-encode traffic.
struct EchoHandler {
    applied: Vec<AtomicU64>,
    reply: DownMsg,
    resync: DownMsg,
}

impl EchoHandler {
    fn new(workers: usize) -> Self {
        let part = Partition::single(DIM);
        let flat: Vec<f32> =
            (0..DIM).map(|i| ((i as f64 * 0.7391).sin() * 2.0) as f32).collect();
        EchoHandler {
            applied: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            reply: DownMsg::SparseDiff(SparseUpdate::from_topk(&flat, &part, RATIO)),
            resync: DownMsg::DenseModel(Arc::new(flat)),
        }
    }
}

impl SharedUpdateHandler for EchoHandler {
    fn handle_sequenced(
        &self,
        worker: u16,
        seq: u32,
        _up: UpMsg,
    ) -> Result<Sequenced, &'static str> {
        let slot = &self.applied[usize::from(worker)];
        let applied = slot.load(Ordering::Acquire);
        Ok(if u64::from(seq) == applied + 1 {
            slot.store(applied + 1, Ordering::Release);
            Sequenced::Applied(self.reply.clone())
        } else if u64::from(seq) <= applied {
            Sequenced::Duplicate(self.resync.clone())
        } else {
            Sequenced::Gap { applied }
        })
    }

    fn handle_resync(&self, _worker: u16) -> Result<DownMsg, &'static str> {
        Ok(self.resync.clone())
    }

    fn applied(&self, worker: u16) -> Result<u64, &'static str> {
        Ok(self.applied[usize::from(worker)].load(Ordering::Acquire))
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Backend {
    Threads,
    Evented,
}

impl Backend {
    fn name(self) -> &'static str {
        match self {
            Backend::Threads => "threads",
            Backend::Evented => "evented",
        }
    }
}

struct Cell {
    backend: Backend,
    conns: usize,
    rounds: usize,
    storm: bool,
    /// Fresh (non-duplicate) exchanges completed.
    messages: usize,
    duplicates: usize,
    elapsed: Duration,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
    server_stats: WireStats,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

/// One client-side connection: framed conn plus its sequence state.
struct Client {
    wire: WireConn<TcpStream>,
    worker: u16,
    seq: u32,
    sent_at: Instant,
}

/// Drives `conns/CLIENT_THREADS`-ish connections through `rounds`
/// pipelined rounds; returns per-exchange RTTs (µs) and the duplicate
/// count this thread injected.
fn drive_clients(
    mut clients: Vec<Client>,
    rounds: usize,
    storm: bool,
    up: &UpMsg,
) -> (Vec<f64>, usize) {
    let mut rtts = Vec::with_capacity(clients.len() * rounds);
    let mut duplicates = 0usize;
    for round in 0..rounds {
        let storm_round = storm && round % 3 == 2;
        // Batch-send phase: every connection this thread owns gets its
        // frame(s) on the wire before any reply is read, so the server
        // sees the whole pool active at once.
        for c in clients.iter_mut() {
            if storm_round && c.seq > 0 {
                // Deliberate retransmit of the already-applied sequence:
                // the server must answer with the dense resync reply.
                c.wire.send_update(c.worker, c.seq, up).expect("send duplicate");
                duplicates += 1;
            }
            c.seq += 1;
            c.sent_at = Instant::now();
            c.wire.send_update(c.worker, c.seq, up).expect("send update");
        }
        // Drain phase: replies come back in per-connection order
        // (duplicate's resync first, then the fresh reply).
        for c in clients.iter_mut() {
            if storm_round && c.seq > 1 {
                match c.wire.read_event().expect("read resync reply") {
                    Event::Reply { .. } => {}
                    other => panic!("unexpected reply to duplicate: {other:?}"),
                }
            }
            match c.wire.read_event().expect("read reply") {
                Event::Reply { seq, .. } => assert_eq!(seq, c.seq, "reply out of order"),
                other => panic!("unexpected event: {other:?}"),
            }
            rtts.push(c.sent_at.elapsed().as_secs_f64() * 1e6);
        }
    }
    // Graceful teardown: shutdown + ack, so the server's exit condition
    // (all expected workers departed) fires without waiting on a timeout.
    for c in clients.iter_mut() {
        c.wire.send_control(MsgType::Shutdown, c.worker).expect("send shutdown");
        match c.wire.read_event().expect("read shutdown ack") {
            Event::ShutdownAck => {}
            other => panic!("unexpected shutdown reply: {other:?}"),
        }
    }
    (rtts, duplicates)
}

fn run_cell(backend: Backend, conns: usize, rounds: usize, storm: bool) -> Cell {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let handler = Arc::new(EchoHandler::new(conns));
    let mut opts = ServerOpts::new(conns, DIM as u64, THETA0_CRC);
    opts.deadline = Some(Duration::from_secs(300));

    let server = std::thread::spawn(move || match backend {
        Backend::Threads => dgs_net::tcp::serve_cluster(listener, handler, opts),
        Backend::Evented => {
            // Budget above the pool size: this grid measures steady-state
            // latency, not the reject path (unit tests cover that).
            let ev = EventedOpts { max_conns: conns + 8, ..EventedOpts::default() };
            serve_cluster_evented(listener, handler, opts, ev)
        }
    });

    // Handshake every connection up front so the measured rounds run with
    // the full pool concurrently established.
    let mut pool: Vec<Vec<Client>> = (0..CLIENT_THREADS).map(|_| Vec::new()).collect();
    for worker in 0..conns {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("read timeout");
        let mut wire = WireConn::new(stream);
        let hello = Hello { dim: DIM as u64, applied: 0, theta0_crc: THETA0_CRC };
        wire.send_hello(MsgType::Hello, worker as u16, &hello).expect("send hello");
        match wire.read_event().expect("read hello ack") {
            Event::HelloAck { .. } => {}
            other => panic!("unexpected handshake reply: {other:?}"),
        }
        pool[worker % CLIENT_THREADS].push(Client {
            wire,
            worker: worker as u16,
            seq: 0,
            sent_at: Instant::now(),
        });
    }

    let up = Arc::new(UpMsg {
        payload: UpPayload::Sparse(SparseUpdate::from_topk(
            &(0..DIM).map(|i| ((i as f64 * 1.313).cos() * 3.0) as f32).collect::<Vec<_>>(),
            &Partition::single(DIM),
            RATIO,
        )),
        train_loss: 0.25,
    });

    let started = Instant::now();
    let drivers: Vec<_> = pool
        .into_iter()
        .map(|clients| {
            let up = Arc::clone(&up);
            std::thread::spawn(move || drive_clients(clients, rounds, storm, &up))
        })
        .collect();
    let mut rtts = Vec::new();
    let mut duplicates = 0usize;
    for d in drivers {
        let (r, dups) = d.join().expect("client thread");
        rtts.extend(r);
        duplicates += dups;
    }
    let elapsed = started.elapsed();
    let server_stats = server.join().expect("server thread").expect("server result");

    rtts.sort_by(|a, b| a.partial_cmp(b).expect("finite rtt"));
    Cell {
        backend,
        conns,
        rounds,
        storm,
        messages: rtts.len(),
        duplicates,
        elapsed,
        p50_us: percentile(&rtts, 0.50),
        p99_us: percentile(&rtts, 0.99),
        max_us: rtts.last().copied().unwrap_or(0.0),
        server_stats,
    }
}

fn cell_json(c: &Cell) -> String {
    let rate = c.messages as f64 / c.elapsed.as_secs_f64();
    format!(
        concat!(
            "    {{ \"backend\": \"{}\", \"conns\": {}, \"rounds\": {}, ",
            "\"retransmit_storm\": {}, \"messages\": {}, \"duplicates\": {}, ",
            "\"elapsed_ms\": {:.1}, \"msgs_per_sec\": {:.0}, ",
            "\"rtt_p50_us\": {:.1}, \"rtt_p99_us\": {:.1}, \"rtt_max_us\": {:.1}, ",
            "\"server_frames_up\": {}, \"server_frames_down\": {}, ",
            "\"server_data_up\": {}, \"server_data_down\": {}, \"server_control\": {} }}"
        ),
        c.backend.name(),
        c.conns,
        c.rounds,
        c.storm,
        c.messages,
        c.duplicates,
        c.elapsed.as_secs_f64() * 1e3,
        rate,
        c.p50_us,
        c.p99_us,
        c.max_us,
        c.server_stats.frames_up,
        c.server_stats.frames_down,
        c.server_stats.data_up,
        c.server_stats.data_down,
        c.server_stats.control,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    // Grid: connection counts × storm on/off, on both backends. Rounds are
    // issued back-to-back (no pacing): on a contended 1-core box a target
    // wall-clock rate is noise, so the achieved msgs_per_sec per cell IS
    // the rate axis.
    let conn_grid: &[usize] = if quick { &[32, 128] } else { &[64, 256, 1024] };
    let rounds = if quick { 4 } else { 9 };

    let mut cells = Vec::new();
    for &conns in conn_grid {
        for storm in [false, true] {
            for backend in [Backend::Threads, Backend::Evented] {
                eprintln!(
                    "net_scale: {} conns={conns} rounds={rounds} storm={storm} ...",
                    backend.name()
                );
                let cell = run_cell(backend, conns, rounds, storm);
                eprintln!(
                    "  -> {} msgs in {:.1} ms, p50 {:.0} us, p99 {:.0} us",
                    cell.messages,
                    cell.elapsed.as_secs_f64() * 1e3,
                    cell.p50_us,
                    cell.p99_us
                );
                cells.push(cell);
            }
        }
    }

    let body: Vec<String> = cells.iter().map(cell_json).collect();
    let doc = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"net_scale\",\n",
            "  \"description\": \"TCP transport scalability: connections x message-rate grid, ",
            "thread-per-connection vs readiness event loop, with synchronized retransmit storms ",
            "(every 3rd round re-sends the previous seq on every connection, forcing dense resync ",
            "replies)\",\n",
            "  \"config\": {{ \"dim\": {}, \"topk_ratio\": {}, \"client_threads\": {}, ",
            "\"quick\": {} }},\n",
            "  \"provenance\": {{\n",
            "    \"caveats\": [\n",
            "      \"1-core container: client threads, server thread(s), and the poller all share ",
            "one CPU, so every latency includes scheduler serialization; percentiles are upper ",
            "bounds and cross-backend shape is the signal, not absolute numbers\",\n",
            "      \"localhost TCP: no real network, RTTs measure framing + protocol + scheduling ",
            "cost only\",\n",
            "      \"evented backend uses the poll(2) poller (net-epoll feature off in the bench ",
            "profile); epoll lowers wait cost further at high connection counts\",\n",
            "      \"RTT is measured send-to-reply-read under pipelining: a round batch-sends on ",
            "every connection a client thread owns before draining, so tail latencies include ",
            "queueing behind the whole pool -- that is the intended concurrent-load measurement\"\n",
            "    ]\n",
            "  }},\n",
            "  \"cells\": [\n{}\n  ]\n",
            "}}\n"
        ),
        DIM,
        RATIO,
        CLIENT_THREADS,
        quick,
        body.join(",\n")
    );

    match out_path {
        Some(path) => {
            std::fs::write(&path, &doc).expect("write --out file");
            eprintln!("net_scale: wrote {path}");
        }
        None => print!("{doc}"),
    }
}
