//! Kernel backend benchmarks: the scalar twins vs the explicit SIMD tier
//! (`AVX2` in `dgs_tensor::simd`, `PCLMULQDQ` in `dgs_net::crc_simd`)
//! across the hot sparsification and wire primitives — histogram fill,
//! chunk scan, gather/scatter, dense diff, ternary encode, and CRC-32 —
//! at dims {64 Ki, 1 M}. Results are recorded in `BENCH_kernels.json` at
//! the repo root (measured by a standalone interleaved timing mirror on
//! the 1-core container; see its provenance block).
//!
//! Skips the SIMD legs with a notice when the CPU lacks AVX2: the scalar
//! rows still run, and the equivalence assertions before each timed pair
//! still exercise whatever `Kernel::runtime()` resolves to.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dgs_net::crc::{crc32_update_with, CRC_INIT};
use dgs_tensor::Kernel;

/// Smooth heavy-tailed synthetic gradient (cubed sinusoid mix): its
/// magnitude keys are near-distinct, the histogram fast path's worst case.
fn synth_heavy(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let x = (i as f64 * 0.7391).sin() * 2.0 + (i as f64 * 0.113).cos();
            (x * x * x) as f32
        })
        .collect()
}

/// One-ulp magnitude plateau: maximally clustered keys.
fn synth_plateau(n: usize) -> Vec<f32> {
    (0..n).map(|i| 1.0 + ((i as f64 * 0.618_033_988).fract() * 1e-3) as f32).collect()
}

/// Exponential decay with sign flips: the gradient-like shape of the
/// paper's operating regime.
fn synth_skewed(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let mag = (-(i as f64) * 8.0 / n as f64).exp();
            (if i % 3 == 0 { -mag } else { mag }) as f32
        })
        .collect()
}

fn mag_key(v: f32) -> u32 {
    v.to_bits() & 0x7FFF_FFFF
}

/// Backends to time: scalar always, SIMD only where the CPU supports it.
fn backends() -> Vec<(&'static str, Kernel)> {
    let mut b = vec![("scalar", Kernel::Scalar)];
    if Kernel::simd_available() {
        b.push(("simd", Kernel::Simd));
    } else {
        eprintln!("kernel_backends: no AVX2 on this CPU — timing scalar legs only");
    }
    b
}

fn bench_hist16(c: &mut Criterion) {
    let dists: [(&str, fn(usize) -> Vec<f32>); 3] =
        [("heavy", synth_heavy), ("skewed", synth_skewed), ("plateau", synth_plateau)];
    for &(dist, gen) in &dists {
        let mut group = c.benchmark_group(format!("kernel/hist16/{dist}"));
        for &n in &[65_536usize, 1_048_576] {
            let data = gen(n);
            // Differential check on the exact bench input before timing.
            let (mut hs, mut hv) = (Vec::new(), Vec::new());
            Kernel::Scalar.hist16(&data, &mut hs);
            Kernel::runtime().hist16(&data, &mut hv);
            assert_eq!(hs, hv, "hist16 backends disagree on {dist}/{n}");
            let mut counts = Vec::new();
            for (name, kernel) in backends() {
                group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                    b.iter(|| {
                        kernel.hist16(black_box(&data), &mut counts);
                        black_box(&counts);
                    })
                });
            }
        }
        group.finish();
    }
}

fn bench_scan_gather(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/scan_gather");
    for &n in &[65_536usize, 1_048_576] {
        let data = synth_heavy(n);
        // The two-byte bucket holding the top-1% threshold, like the radix
        // engine's refinement passes see it.
        let kth = {
            let mut keys: Vec<u32> = data.iter().map(|&v| mag_key(v)).collect();
            let k = n / 100;
            let len = keys.len();
            keys.select_nth_unstable(len - k);
            keys[len - k]
        };
        let prefix = kth >> 16;
        let idx: Vec<u32> =
            (0..n as u32).filter(|&i| mag_key(data[i as usize]) >= kth).collect();
        let shadow = {
            let mut s = data.clone();
            for i in (0..n).step_by(7) {
                s[i] += 0.5;
            }
            s
        };
        let (mut keys, mut pos, mut definite) = (Vec::new(), Vec::new(), Vec::new());
        let (mut gk, mut diff, mut out) = (Vec::new(), Vec::new(), Vec::new());
        for (name, kernel) in backends() {
            group.bench_with_input(BenchmarkId::new(format!("{name}/select_scan"), n), &n, |b, _| {
                b.iter(|| {
                    keys.clear();
                    pos.clear();
                    definite.clear();
                    kernel.select_scan(black_box(&data), prefix, 16, &mut keys, &mut pos, &mut definite);
                    black_box((&keys, &definite));
                })
            });
            group.bench_with_input(BenchmarkId::new(format!("{name}/gather_keys"), n), &n, |b, _| {
                b.iter(|| {
                    gk.clear();
                    kernel.gather_keys(black_box(&data), prefix, 16, &mut gk);
                    black_box(&gk);
                })
            });
            group.bench_with_input(BenchmarkId::new(format!("{name}/gather_topk"), n), &n, |b, _| {
                b.iter(|| {
                    out.clear();
                    kernel.gather_into(black_box(&data), black_box(&idx), &mut out);
                    black_box(&out);
                })
            });
            // The dense-merge downlink unit of work: diff, then gather the
            // selected values from the diff.
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/merge_diff_gather"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        diff.clear();
                        out.clear();
                        kernel.diff_into(black_box(&data), black_box(&shadow), &mut diff);
                        kernel.gather_into(black_box(&diff), black_box(&idx), &mut out);
                        black_box(&out);
                    })
                },
            );
            group.bench_with_input(BenchmarkId::new(format!("{name}/diff_into"), n), &n, |b, _| {
                b.iter(|| {
                    diff.clear();
                    black_box(kernel.diff_into(black_box(&data), black_box(&shadow), &mut diff));
                })
            });
        }
    }
    group.finish();
}

fn bench_quant_crc(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/quant_crc");
    for &n in &[65_536usize, 1_048_576] {
        let data = synth_heavy(n);
        let signs: Vec<u8> = (0..n.div_ceil(8)).map(|i| (i * 37) as u8).collect();
        let bytes: Vec<u8> = (0..n).map(|i| (i * 131) as u8).collect();
        let mut out = Vec::new();
        for (name, kernel) in backends() {
            group.bench_with_input(BenchmarkId::new(format!("{name}/max_abs"), n), &n, |b, _| {
                b.iter(|| black_box(kernel.max_abs(black_box(&data))))
            });
            group.bench_with_input(BenchmarkId::new(format!("{name}/sign_expand"), n), &n, |b, _| {
                b.iter(|| {
                    out.clear();
                    kernel.sign_expand(1.5, black_box(&signs), n, &mut out);
                    black_box(&out);
                })
            });
            group.bench_with_input(BenchmarkId::new(format!("{name}/crc32"), n), &n, |b, _| {
                b.iter(|| black_box(crc32_update_with(kernel, CRC_INIT, black_box(&bytes))))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_hist16, bench_scan_gather, bench_quant_crc);
criterion_main!(benches);
