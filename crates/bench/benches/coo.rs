//! COO wire-format microbenchmarks: encode/decode cost at the densities
//! the methods actually transmit (R = 1%, 5%, and a dense-diff worst case).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dgs_sparsify::{random_unbiased_update, Partition, SparseUpdate, TernaryUpdate};

fn synth(n: usize) -> Vec<f32> {
    (0..n).map(|i| ((i as f64 * 0.7391).sin() * 3.0) as f32).collect()
}

fn bench_coo(c: &mut Criterion) {
    let n = 1_000_000;
    let data = synth(n);
    let part = Partition::from_layer_sizes(
        (0..20).map(|i| (format!("layer{i}"), n / 20)).collect::<Vec<_>>(),
    );

    let mut group = c.benchmark_group("coo_encode");
    for &(label, ratio) in &[("r1pct", 0.01), ("r5pct", 0.05), ("r50pct", 0.5)] {
        let update = SparseUpdate::from_topk(&data, &part, ratio);
        group.bench_with_input(BenchmarkId::from_parameter(label), &ratio, |b, _| {
            b.iter(|| black_box(&update).encode())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("coo_decode");
    for &(label, ratio) in &[("r1pct", 0.01), ("r5pct", 0.05)] {
        let encoded = SparseUpdate::from_topk(&data, &part, ratio).encode();
        group.bench_with_input(BenchmarkId::from_parameter(label), &ratio, |b, _| {
            b.iter(|| SparseUpdate::decode(black_box(encoded.clone())).unwrap())
        });
    }
    group.finish();

    c.bench_function("sparsify_1M_r1pct", |b| {
        b.iter(|| SparseUpdate::from_topk(black_box(&data), &part, 0.01))
    });

    // Extension primitives at the same scale.
    let update = SparseUpdate::from_topk(&data, &part, 0.01);
    c.bench_function("ternary_quantize_1M_r1pct", |b| {
        b.iter(|| TernaryUpdate::quantize(black_box(&update), 42))
    });
    let quantized = TernaryUpdate::quantize(&update, 42);
    c.bench_function("ternary_dequantize_1M_r1pct", |b| {
        b.iter(|| black_box(&quantized).dequantize())
    });
    c.bench_function("random_drop_1M_r1pct", |b| {
        b.iter(|| random_unbiased_update(black_box(&data), &part, 0.01, 42))
    });
}

criterion_group!(benches, bench_coo);
criterion_main!(benches);
