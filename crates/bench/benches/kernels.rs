//! Compute-substrate microbenchmarks: the tensor kernels that stand in for
//! the paper's CUDA backend — matmul and conv2d forward/backward at the
//! sizes the experiment models actually use.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dgs_tensor::conv::{conv2d_backward, conv2d_forward, Conv2dSpec};
use dgs_tensor::matmul::matmul_slices;
use dgs_tensor::Tensor;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[64usize, 128, 256] {
        let a: Vec<f32> = (0..n * n).map(|i| (i as f32 * 0.37).sin()).collect();
        let b_m: Vec<f32> = (0..n * n).map(|i| (i as f32 * 0.11).cos()).collect();
        let mut out = vec![0.0f32; n * n];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| {
                matmul_slices(black_box(&a), black_box(&b_m), &mut out, n, n, n);
            })
        });
    }
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let spec = Conv2dSpec { in_channels: 8, out_channels: 16, kernel: 3, stride: 1, padding: 1 };
    let x = Tensor::randn([16, 8, 12, 12], 1.0, 1);
    let w = Tensor::randn([spec.weight_len()], 0.5, 2).into_vec();
    let bias = vec![0.0f32; 16];

    c.bench_function("conv2d_forward_16x8x12x12", |b| {
        b.iter(|| conv2d_forward(black_box(&x), &w, &bias, &spec))
    });

    let y = conv2d_forward(&x, &w, &bias, &spec);
    let dy = Tensor::full(y.shape().clone(), 1.0);
    c.bench_function("conv2d_backward_16x8x12x12", |b| {
        b.iter(|| conv2d_backward(black_box(&x), &w, &dy, &spec, true))
    });
}

criterion_group!(benches, bench_matmul, bench_conv);
criterion_main!(benches);
