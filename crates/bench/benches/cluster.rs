//! Cluster-topology bench: worker count × edge-group size grid over the
//! two-level PS cluster — span-sharded root servers behind real TCP,
//! fronted by edge aggregators (`EdgeHandler`) that merge each group's
//! uplinks into ONE combined update per round — measuring root-ingress
//! bytes and member-observed round-trip percentiles.
//!
//! Every cell stands up the full topology in one process over localhost:
//! `SPANS` root span servers (toy `SharedUpdateHandler`s answering with
//! span-local sparse diffs — the root *apply* cost is covered by the
//! server benches; here the root is a byte sink so ingress is a pure
//! topology measurement), `workers / group` edge aggregators each owning
//! a real `ClusterTransport` fan-out, and one member thread per worker
//! speaking the plain worker protocol to its edge. Members in a group
//! advance in lockstep (the edge's round barrier), so a member RTT spans
//! wait-for-group + merge + upstream exchange + reply fan-in — the real
//! latency an aggregated worker observes.
//!
//! The headline axis is `root_data_up` at fixed `workers` as `group`
//! grows: root ingress *bytes* are bounded by the merged-update size ×
//! rounds × groups (coordinate overlap between members dedups in the
//! merge), and root ingress *connections* by `workers / group` — not by
//! worker count. `group = 1` is the no-aggregation baseline (edge
//! forwards verbatim, byte-identical to a direct worker). Results land
//! in `BENCH_cluster.json` at the repo root.
//!
//! Not a criterion bench (`harness = false`): the unit of work is a
//! whole multi-tier session and the output is a bytes/latency grid, not
//! a closure throughput.
//!
//! Usage: `cargo bench --bench cluster -- [--quick] [--out PATH]`

use dgs_core::protocol::{DownMsg, UpMsg, UpPayload};
use dgs_net::runtime::{cluster_layout, theta0_crc};
use dgs_net::tcp::{serve_cluster, ServerOpts, SpanOpts};
use dgs_net::{
    ClusterTransport, EdgeHandler, Event, Hello, MsgType, Sequenced, SharedUpdateHandler,
    WireConn, WireStats,
};
use dgs_sparsify::{Partition, SparseUpdate};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Root span count. Fixed while workers × group vary: the claim under
/// test is that root fan-in scales with spans and groups, not workers.
const SPANS: usize = 3;
/// Model dimensionality, split into `SPANS` whole segments below.
const DIM: usize = 4096;
/// Top-k ratio for member uplinks (~41 of 4096 coordinates per segment
/// group; overlap across members governs how much the merge dedups).
const RATIO: f64 = 0.01;
/// How long an edge lets a round wait for its stragglers.
const ROUND_TIMEOUT: Duration = Duration::from_secs(60);

/// Builds the shared partition: `SPANS` uneven whole segments so span
/// slicing is exercised at non-trivial boundaries.
fn partition() -> Partition {
    Partition::from_layer_sizes([("a", 1536), ("b", 1280), ("c", 1280)])
}

/// Deterministic θ0 shared by every tier of the cell.
fn theta0() -> Vec<f32> {
    (0..DIM).map(|i| ((i as f64 * 0.7391).sin() * 2.0) as f32).collect()
}

/// Toy root span server: per-client applied counters and canned
/// span-local replies (sparse diff for fresh updates, the span's dense
/// θ0 slice for duplicates/resyncs). Ingress bytes and frame cadence are
/// real; only the MDT apply is stubbed out.
struct SpanSink {
    applied: Vec<AtomicU64>,
    reply: DownMsg,
    resync: DownMsg,
}

impl SpanSink {
    fn new(clients: usize, span_theta0: &[f32], sub: &Partition) -> Self {
        let grad: Vec<f32> = span_theta0.iter().map(|x| x * 0.5 + 0.1).collect();
        SpanSink {
            applied: (0..clients).map(|_| AtomicU64::new(0)).collect(),
            reply: DownMsg::SparseDiff(SparseUpdate::from_topk(&grad, sub, RATIO)),
            resync: DownMsg::DenseModel(Arc::new(span_theta0.to_vec())),
        }
    }
}

impl SharedUpdateHandler for SpanSink {
    fn handle_sequenced(
        &self,
        worker: u16,
        seq: u32,
        _up: UpMsg,
    ) -> Result<Sequenced, &'static str> {
        let slot = &self.applied[usize::from(worker)];
        let applied = slot.load(Ordering::Acquire);
        Ok(if u64::from(seq) == applied + 1 {
            slot.store(applied + 1, Ordering::Release);
            Sequenced::Applied(self.reply.clone())
        } else if u64::from(seq) <= applied {
            Sequenced::Duplicate(self.resync.clone())
        } else {
            Sequenced::Gap { applied }
        })
    }

    fn handle_resync(&self, _worker: u16) -> Result<DownMsg, &'static str> {
        Ok(self.resync.clone())
    }

    fn applied(&self, worker: u16) -> Result<u64, &'static str> {
        Ok(self.applied[usize::from(worker)].load(Ordering::Acquire))
    }
}

struct Cell {
    workers: usize,
    group: usize,
    rounds: usize,
    /// Member exchanges completed (workers × rounds).
    messages: usize,
    elapsed: Duration,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
    /// Σ over span servers: bytes of update payload arriving at the root.
    root_stats: WireStats,
    /// Σ over edges: member-facing byte counters (what workers sent).
    member_stats: WireStats,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

/// One member: plain worker protocol against its edge, `rounds`
/// exchanges, per-exchange RTTs in µs.
fn drive_member(addr: std::net::SocketAddr, worker: u16, up: &UpMsg, rounds: usize) -> Vec<f64> {
    let stream = TcpStream::connect(addr).expect("connect member");
    stream.set_nodelay(true).expect("nodelay");
    stream.set_read_timeout(Some(Duration::from_secs(90))).expect("read timeout");
    let mut wire = WireConn::new(stream);
    let hello =
        Hello { dim: DIM as u64, applied: 0, theta0_crc: theta0_crc(&theta0()) };
    wire.send_hello(MsgType::Hello, worker, &hello).expect("send hello");
    match wire.read_event().expect("read hello ack") {
        Event::HelloAck { .. } => {}
        other => panic!("unexpected handshake reply: {other:?}"),
    }
    let mut rtts = Vec::with_capacity(rounds);
    for seq in 1..=rounds as u32 {
        let sent = Instant::now();
        wire.send_update(worker, seq, up).expect("send update");
        match wire.read_event().expect("read reply") {
            Event::Reply { seq: got, .. } => assert_eq!(got, seq, "reply out of order"),
            other => panic!("unexpected event: {other:?}"),
        }
        rtts.push(sent.elapsed().as_secs_f64() * 1e6);
    }
    wire.send_control(MsgType::Shutdown, worker).expect("send shutdown");
    match wire.read_event().expect("read shutdown ack") {
        Event::ShutdownAck => {}
        other => panic!("unexpected shutdown reply: {other:?}"),
    }
    rtts
}

fn run_cell(workers: usize, group: usize, rounds: usize) -> Cell {
    assert_eq!(workers % group, 0, "grid cells use whole groups");
    let num_edges = workers / group;
    let part = partition();
    let t0 = theta0();
    let full_crc = theta0_crc(&t0);
    let layout = cluster_layout(&t0, &part, SPANS);
    assert_eq!(layout.num_spans(), SPANS);

    // Root tier: SPANS toy span servers, each expecting `num_edges`
    // upstream clients (edge bases are worker ids 0, G, 2G, …).
    let mut span_addrs = Vec::new();
    let mut span_joins = Vec::new();
    for (k, info) in layout.spans.iter().enumerate() {
        let span = info.shard_span();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind span");
        span_addrs.push(listener.local_addr().expect("span addr").to_string());
        let sub = part.subpartition(&span);
        let handler = Arc::new(SpanSink::new(workers, &t0[span.range()], &sub));
        let mut opts = ServerOpts::new(workers, span.len as u64, info.theta0_crc);
        opts.deadline = Some(Duration::from_secs(300));
        opts.done_target = num_edges;
        opts.span = Some(SpanOpts {
            index: k as u32,
            num_spans: SPANS as u32,
            layout_hash: layout.layout_hash(),
            layout_bytes: layout.encode(),
        });
        span_joins.push(std::thread::spawn(move || serve_cluster(listener, handler, opts)));
    }

    // Edge tier: one aggregator per group, each with a real upstream
    // ClusterTransport fan-out identified by its base worker id.
    let mut edge_addrs = Vec::new();
    let mut edge_joins = Vec::new();
    let mut edge_handlers = Vec::new();
    for e in 0..num_edges {
        let base = (e * group) as u16;
        let upstream =
            ClusterTransport::new(layout.clone(), &span_addrs, base).expect("upstream");
        let handler = EdgeHandler::new(upstream, part.clone(), t0.clone(), base, group, ROUND_TIMEOUT)
            .expect("edge handler");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind edge");
        edge_addrs.push(listener.local_addr().expect("edge addr"));
        let mut opts = ServerOpts::new(usize::from(base) + group, DIM as u64, full_crc);
        opts.deadline = Some(Duration::from_secs(300));
        opts.done_target = group;
        let h = Arc::clone(&handler);
        edge_handlers.push(handler);
        edge_joins.push(std::thread::spawn(move || serve_cluster(listener, h, opts)));
    }

    // Member tier: gradients share one dominant structure with
    // per-worker jitter — group members optimize the same loss, so
    // their top-k coordinate sets overlap heavily (the regime the
    // edge's merge dedup is built for), without being identical.
    let ups: Vec<Arc<UpMsg>> = (0..workers)
        .map(|w| {
            let grad: Vec<f32> = (0..DIM)
                .map(|i| {
                    // Heavy-tailed magnitudes: the top coordinates win by
                    // integer factors, so 10% jitter perturbs values but
                    // rarely the top-k membership — like real gradients,
                    // where a few coordinates dominate decisively.
                    let mag = 6.0 / (1.0 + (i % 257) as f64);
                    let sign = if (i as f64 * 1.313).cos() >= 0.0 { 1.0 } else { -1.0 };
                    let jitter = 1.0 + 0.1 * (i as f64 * 0.917 + w as f64 * 1.7).sin();
                    (sign * mag * jitter) as f32
                })
                .collect();
            Arc::new(UpMsg {
                payload: UpPayload::Sparse(SparseUpdate::from_topk(&grad, &part, RATIO)),
                train_loss: 0.25,
            })
        })
        .collect();

    let started = Instant::now();
    let members: Vec<_> = (0..workers)
        .map(|w| {
            let addr = edge_addrs[w / group];
            let up = Arc::clone(&ups[w]);
            std::thread::spawn(move || drive_member(addr, w as u16, &up, rounds))
        })
        .collect();
    let mut rtts = Vec::new();
    for m in members {
        rtts.extend(m.join().expect("member thread"));
    }
    let elapsed = started.elapsed();

    let mut member_stats = WireStats::default();
    for j in edge_joins {
        member_stats.merge(&j.join().expect("edge thread").expect("edge result"));
    }
    for h in &edge_handlers {
        // Graceful upstream shutdown lets the span servers' done_target
        // fire; the returned upstream stats mirror the root's ingress.
        h.finish().expect("edge finish");
    }
    let mut root_stats = WireStats::default();
    for j in span_joins {
        root_stats.merge(&j.join().expect("span thread").expect("span result"));
    }

    rtts.sort_by(|a, b| a.partial_cmp(b).expect("finite rtt"));
    Cell {
        workers,
        group,
        rounds,
        messages: rtts.len(),
        elapsed,
        p50_us: percentile(&rtts, 0.50),
        p99_us: percentile(&rtts, 0.99),
        max_us: rtts.last().copied().unwrap_or(0.0),
        root_stats,
        member_stats,
    }
}

fn cell_json(c: &Cell) -> String {
    let rate = c.messages as f64 / c.elapsed.as_secs_f64();
    let reduction = if c.root_stats.data_up > 0 {
        c.member_stats.data_up as f64 / c.root_stats.data_up as f64
    } else {
        0.0
    };
    format!(
        concat!(
            "    {{ \"workers\": {}, \"group\": {}, \"edges\": {}, \"rounds\": {}, ",
            "\"messages\": {}, \"elapsed_ms\": {:.1}, \"msgs_per_sec\": {:.0}, ",
            "\"rtt_p50_us\": {:.1}, \"rtt_p99_us\": {:.1}, \"rtt_max_us\": {:.1}, ",
            "\"root_conns\": {}, \"root_data_up\": {}, \"root_data_down\": {}, ",
            "\"root_frames_up\": {}, \"member_data_up\": {}, \"member_data_down\": {}, ",
            "\"uplink_reduction\": {:.2} }}"
        ),
        c.workers,
        c.group,
        c.workers / c.group,
        c.rounds,
        c.messages,
        c.elapsed.as_secs_f64() * 1e3,
        rate,
        c.p50_us,
        c.p99_us,
        c.max_us,
        (c.workers / c.group) * SPANS,
        c.root_stats.data_up,
        c.root_stats.data_down,
        c.root_stats.frames_up,
        c.member_stats.data_up,
        c.member_stats.data_down,
        reduction,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let worker_grid: &[usize] = if quick { &[4, 16] } else { &[4, 16, 64] };
    let group_grid: &[usize] = &[1, 4, 8];
    let rounds = if quick { 3 } else { 8 };

    let mut cells = Vec::new();
    for &workers in worker_grid {
        for &group in group_grid {
            if group > workers || workers % group != 0 {
                eprintln!("cluster: skipping workers={workers} group={group} (partial group)");
                continue;
            }
            eprintln!("cluster: workers={workers} group={group} rounds={rounds} ...");
            let cell = run_cell(workers, group, rounds);
            eprintln!(
                "  -> {} msgs in {:.1} ms, p99 {:.0} us, root ingress {} B (reduction {:.2}x)",
                cell.messages,
                cell.elapsed.as_secs_f64() * 1e3,
                cell.p99_us,
                cell.root_stats.data_up,
                cell.member_stats.data_up as f64 / cell.root_stats.data_up.max(1) as f64,
            );
            cells.push(cell);
        }
    }

    let body: Vec<String> = cells.iter().map(cell_json).collect();
    let doc = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"cluster\",\n",
            "  \"description\": \"Two-level PS cluster topology grid: workers x edge-group size ",
            "over SPANS span-sharded root servers. Edges merge each group's uplinks into one ",
            "combined update per round, so root ingress bytes scale with groups (merged-update ",
            "size) and root connections with workers/group -- not with worker count. group=1 is ",
            "the no-aggregation baseline (verbatim forward).\",\n",
            "  \"config\": {{ \"spans\": {}, \"dim\": {}, \"topk_ratio\": {}, \"quick\": {} }},\n",
            "  \"provenance\": {{\n",
            "    \"caveats\": [\n",
            "      \"1-core container: member threads, edge threads, and span servers all share ",
            "one CPU, so RTT percentiles include scheduler serialization and are upper bounds; ",
            "the bytes axis is exact regardless\",\n",
            "      \"root servers are byte sinks (canned span-local replies): ingress/egress and ",
            "frame cadence are real, MDT apply cost is measured separately in the server benches\",\n",
            "      \"member RTT includes waiting for the rest of its group at the edge round ",
            "barrier -- that is the latency an aggregated worker actually observes\",\n",
            "      \"uplink_reduction = member bytes / root bytes; it approaches the group size ",
            "when member top-k coordinate sets overlap (the shared-loss regime modelled here) and ",
            "falls toward 1 when they are disjoint -- the honest dedup behaviour of the merge. At ",
            "group=1 it dips slightly below 1: fanning one update out as per-span messages ",
            "repeats per-message payload overhead\"\n",
            "    ]\n",
            "  }},\n",
            "  \"cells\": [\n{}\n  ]\n",
            "}}\n"
        ),
        SPANS,
        DIM,
        RATIO,
        quick,
        body.join(",\n")
    );

    match out_path {
        Some(path) => {
            std::fs::write(&path, &doc).expect("write --out file");
            eprintln!("cluster: wrote {path}");
        }
        None => print!("{doc}"),
    }
}
