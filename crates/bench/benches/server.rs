//! Parameter-server microbenchmarks: the per-update cost of
//! model-difference tracking (`M ← M − g`, `G = M − v_k`, secondary
//! compression) as model size and worker count grow — the §5.6 server-side
//! scalability story.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dgs_core::protocol::{UpMsg, UpPayload};
use dgs_core::server::{DiffStrategy, Downlink, MdtServer};
use dgs_core::shard::ShardedMdtServer;
use dgs_sparsify::{Partition, SparseUpdate};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

fn sparse_up(part: &Partition, dim: usize, seed: usize, ratio: f64) -> UpMsg {
    let flat: Vec<f32> =
        (0..dim).map(|i| (((i * 31 + seed * 17) as f64 * 0.7391).sin() * 2.0) as f32).collect();
    UpMsg {
        payload: UpPayload::Sparse(SparseUpdate::from_topk(&flat, part, ratio)),
        train_loss: 0.0,
    }
}

fn bench_server(c: &mut Criterion) {
    let mut group = c.benchmark_group("mdt_handle_update");
    for &dim in &[100_000usize, 1_000_000] {
        let part = Partition::from_layer_sizes(
            (0..20).map(|i| (format!("layer{i}"), dim / 20)).collect::<Vec<_>>(),
        );
        let up = sparse_up(&part, dim, 1, 0.01);
        group.bench_with_input(BenchmarkId::new("no_secondary", dim), &dim, |b, _| {
            let mut server = MdtServer::new(
                vec![0.0; dim],
                part.clone(),
                4,
                Downlink::ModelDifference { secondary_ratio: None },
            );
            let mut w = 0usize;
            b.iter(|| {
                let reply = server.handle_update(w % 4, black_box(&up));
                w += 1;
                reply
            })
        });
        group.bench_with_input(BenchmarkId::new("secondary_1pct", dim), &dim, |b, _| {
            let mut server = MdtServer::new(
                vec![0.0; dim],
                part.clone(),
                4,
                Downlink::ModelDifference { secondary_ratio: Some(0.01) },
            );
            let mut w = 0usize;
            b.iter(|| {
                let reply = server.handle_update(w % 4, black_box(&up));
                w += 1;
                reply
            })
        });
        group.bench_with_input(BenchmarkId::new("dense_asgd", dim), &dim, |b, _| {
            let dense = UpMsg { payload: UpPayload::Dense(vec![0.001; dim]), train_loss: 0.0 };
            let mut server = MdtServer::new(vec![0.0; dim], part.clone(), 4, Downlink::DenseModel);
            let mut w = 0usize;
            b.iter(|| {
                let reply = server.handle_update(w % 4, black_box(&dense));
                w += 1;
                reply
            })
        });
    }
    group.finish();
}

/// Builds a step's uplink with a controlled index layout. `uniform`
/// scatters the support at a fixed stride across each segment (worst case
/// for merge gather locality); `clustered` packs it into a shifting window
/// at 50% density (gradient mass concentrated in a few rows — what Top-k
/// selection actually produces on embedding/attention layers).
fn synth_up(part: &Partition, dim: usize, step: usize, ratio: f64, clustered: bool) -> UpMsg {
    let mut flat = vec![0.0f32; dim];
    for seg in part.segments() {
        let nnz = ((seg.len as f64 * ratio).ceil() as usize).max(1);
        let fill = |j: usize| (((step * 31 + j * 13) as f64 * 0.7391).sin() * 2.0) as f32 + 0.1;
        if clustered {
            let window = nnz * 2;
            let start = (step * 7919) % (seg.len - window);
            for j in 0..nnz {
                flat[seg.offset + start + j * 2] = fill(j);
            }
        } else {
            let stride = seg.len / nnz;
            let start = (step * 7919 + seg.offset) % stride;
            for j in 0..nnz {
                flat[seg.offset + start + j * stride] = fill(j);
            }
        }
    }
    UpMsg { payload: UpPayload::Sparse(SparseUpdate::from_nonzero(&flat, part)), train_loss: 0.0 }
}

/// Log-merge vs dense-scan downlink construction (`DESIGN.md` §"Server hot
/// path") across worker counts, staleness distributions, uplink layouts,
/// and secondary-compression settings. Baseline numbers are recorded in
/// `BENCH_server.json` at the repo root.
fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("downlink_strategy");
    group.sample_size(20);
    let dim = 1_000_000usize;
    let part = Partition::from_layer_sizes(
        (0..20).map(|i| (format!("layer{i}"), dim / 20)).collect::<Vec<_>>(),
    );
    for (layout, clustered) in [("uniform", false), ("clustered", true)] {
        // Distinct supports per step so the log sees realistic churn.
        let updates: Vec<UpMsg> =
            (0..64).map(|s| synth_up(&part, dim, s, 0.01, clustered)).collect();
        for (sec_name, secondary) in [("no_secondary", None), ("secondary_1pct", Some(0.01))] {
            for &workers in &[4usize, 16] {
                // round_robin: every cursor is `workers` updates old (uniform
                // mild staleness). straggler: one worker pulls every 32nd
                // update, so its merge spans a long log suffix (heavy-tailed
                // staleness).
                for (sched, straggler) in [("round_robin", false), ("straggler", true)] {
                    for (name, strategy) in [
                        ("log_merge", DiffStrategy::LogMerge),
                        ("dense_scan", DiffStrategy::DenseScan),
                    ] {
                        let id = BenchmarkId::new(
                            format!("{name}_{sched}_{sec_name}_{layout}"),
                            workers,
                        );
                        group.bench_with_input(id, &workers, |b, &workers| {
                            let mut server = MdtServer::new(
                                vec![0.0; dim],
                                part.clone(),
                                workers,
                                Downlink::ModelDifference { secondary_ratio: secondary },
                            );
                            server.set_diff_strategy(strategy);
                            let mut step = 0usize;
                            b.iter(|| {
                                let w = if straggler {
                                    if step % 32 == 31 {
                                        workers - 1
                                    } else {
                                        step % (workers - 1)
                                    }
                                } else {
                                    step % workers
                                };
                                let reply = server
                                    .handle_update(w, black_box(&updates[step % updates.len()]));
                                step += 1;
                                reply
                            })
                        });
                    }
                }
            }
        }
    }
    group.finish();
}

/// Wall-clock for `iters` updates split across `workers` OS threads, all
/// hammering one server concurrently. A barrier releases every thread at
/// once so the measurement is pure contended throughput, not spawn skew.
fn contended_wall(iters: u64, workers: usize, run: impl Fn(usize) + Sync) -> Duration {
    let barrier = Barrier::new(workers + 1);
    let per = (iters as usize).div_ceil(workers).max(1);
    let mut start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..workers {
            let barrier = &barrier;
            let run = &run;
            s.spawn(move || {
                barrier.wait();
                for _ in 0..per {
                    run(w);
                }
            });
        }
        barrier.wait();
        start = Instant::now();
    });
    start.elapsed()
}

/// Lock-striped sharded server vs the global-lock server under genuine
/// multi-worker contention: the tentpole's scalability claim. Shard count
/// 1 isolates the striping overhead (front lock + fan-out) from the
/// concurrency win; the `global_lock` rows are the `Mutex<MdtServer>`
/// arrangement the TCP runtime used before sharding. Recorded numbers
/// live in `BENCH_server.json` (with container caveats — a 1-core box
/// serializes everything and understates the sharded win).
fn bench_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_vs_global");
    group.sample_size(10);
    let dim = 1_000_000usize;
    let part = Partition::from_layer_sizes(
        (0..20).map(|i| (format!("layer{i}"), dim / 20)).collect::<Vec<_>>(),
    );
    for (sec_name, secondary) in [("no_secondary", None), ("secondary_1pct", Some(0.01))] {
        let downlink = Downlink::ModelDifference { secondary_ratio: secondary };
        for &workers in &[2usize, 4] {
            // One fixed update per worker: distinct supports, zero
            // per-iteration setup inside the timed region.
            let updates: Vec<UpMsg> =
                (0..workers).map(|k| sparse_up(&part, dim, k + 1, 0.01)).collect();
            for &shards in &[1usize, 2, 4, 8] {
                let id =
                    BenchmarkId::new(format!("sharded_{sec_name}_w{workers}"), shards);
                group.bench_with_input(id, &shards, |b, &shards| {
                    b.iter_custom(|iters| {
                        let server = Arc::new(ShardedMdtServer::new(
                            vec![0.0; dim],
                            part.clone(),
                            workers,
                            downlink,
                            shards,
                        ));
                        contended_wall(iters, workers, |w| {
                            black_box(server.handle_update(w, black_box(&updates[w])));
                        })
                    })
                });
            }
            let id = BenchmarkId::new(format!("global_lock_{sec_name}_w{workers}"), 0usize);
            group.bench_with_input(id, &workers, |b, &workers| {
                b.iter_custom(|iters| {
                    let server = Arc::new(Mutex::new(MdtServer::new(
                        vec![0.0; dim],
                        part.clone(),
                        workers,
                        downlink,
                    )));
                    contended_wall(iters, workers, |w| {
                        black_box(
                            server.lock().unwrap().handle_update(w, black_box(&updates[w])),
                        );
                    })
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_server, bench_strategies, bench_sharded);
criterion_main!(benches);
