//! Parameter-server microbenchmarks: the per-update cost of
//! model-difference tracking (`M ← M − g`, `G = M − v_k`, secondary
//! compression) as model size and worker count grow — the §5.6 server-side
//! scalability story.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dgs_core::protocol::{UpMsg, UpPayload};
use dgs_core::server::{Downlink, MdtServer};
use dgs_sparsify::{Partition, SparseUpdate};

fn sparse_up(part: &Partition, dim: usize, seed: usize, ratio: f64) -> UpMsg {
    let flat: Vec<f32> = (0..dim)
        .map(|i| (((i * 31 + seed * 17) as f64 * 0.7391).sin() * 2.0) as f32)
        .collect();
    UpMsg {
        payload: UpPayload::Sparse(SparseUpdate::from_topk(&flat, part, ratio)),
        train_loss: 0.0,
    }
}

fn bench_server(c: &mut Criterion) {
    let mut group = c.benchmark_group("mdt_handle_update");
    for &dim in &[100_000usize, 1_000_000] {
        let part = Partition::from_layer_sizes(
            (0..20).map(|i| (format!("layer{i}"), dim / 20)).collect::<Vec<_>>(),
        );
        let up = sparse_up(&part, dim, 1, 0.01);
        group.bench_with_input(BenchmarkId::new("no_secondary", dim), &dim, |b, _| {
            let mut server = MdtServer::new(
                vec![0.0; dim],
                part.clone(),
                4,
                Downlink::ModelDifference { secondary_ratio: None },
            );
            let mut w = 0usize;
            b.iter(|| {
                let reply = server.handle_update(w % 4, black_box(&up));
                w += 1;
                reply
            })
        });
        group.bench_with_input(BenchmarkId::new("secondary_1pct", dim), &dim, |b, _| {
            let mut server = MdtServer::new(
                vec![0.0; dim],
                part.clone(),
                4,
                Downlink::ModelDifference { secondary_ratio: Some(0.01) },
            );
            let mut w = 0usize;
            b.iter(|| {
                let reply = server.handle_update(w % 4, black_box(&up));
                w += 1;
                reply
            })
        });
        group.bench_with_input(BenchmarkId::new("dense_asgd", dim), &dim, |b, _| {
            let dense = UpMsg {
                payload: UpPayload::Dense(vec![0.001; dim]),
                train_loss: 0.0,
            };
            let mut server =
                MdtServer::new(vec![0.0; dim], part.clone(), 4, Downlink::DenseModel);
            let mut w = 0usize;
            b.iter(|| {
                let reply = server.handle_update(w % 4, black_box(&dense));
                w += 1;
                reply
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_server);
criterion_main!(benches);
