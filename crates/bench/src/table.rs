//! Plain-text aligned tables for the experiment harness output.

/// A simple column-aligned table with a title, rendered to stdout and to
/// strings for EXPERIMENTS.md.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Shorter rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, row: &[String]| {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        };
        measure(&mut widths, &self.header);
        for row in &self.rows {
            measure(&mut widths, row);
        }
        let fmt_row = |row: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<w$}"));
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats an accuracy in the paper's percent style (e.g. `92.91%`).
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Formats a signed accuracy delta (e.g. `-0.17%` / `+0.24%`).
pub fn pct_delta(x: f64) -> String {
    format!("{:+.2}%", 100.0 * x)
}

/// Formats a byte count human-readably.
pub fn bytes_human(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
        // Columns align: "value" starts at the same offset in all rows.
        let col = lines[1].find("value").unwrap();
        assert_eq!(lines[3].find('1').unwrap(), col);
        assert_eq!(lines[4].find("22").unwrap(), col);
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new("x", &["a", "b", "c"]);
        t.row(vec!["only".into()]);
        let s = t.render();
        assert!(s.contains("only"));
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.9291), "92.91%");
        assert_eq!(pct_delta(-0.0017), "-0.17%");
        assert_eq!(pct_delta(0.0024), "+0.24%");
        assert_eq!(bytes_human(512), "512 B");
        assert_eq!(bytes_human(2048), "2.00 KiB");
        assert_eq!(bytes_human(3 * 1024 * 1024), "3.00 MiB");
    }
}
