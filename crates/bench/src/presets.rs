//! Workload presets: the CIFAR-10 and ImageNet stand-ins at experiment
//! scale, each paired with the model the experiment trains.
//!
//! Two knobs control runtime:
//!
//! * [`WorkloadKind`] — `CifarLike` (10-class synthetic vision) or
//!   `ImagenetLike` (more classes, bigger samples), matching the paper's
//!   small/large dataset pair; plus a `Blobs` fast path for smoke runs.
//! * [`Scale`] — `Quick` (seconds per run, for CI and `--quick`) or `Full`
//!   (the default experiment scale).
//!
//! Learning-curve experiments (Figs. 2-4, Table 2) use the residual CNN so
//! per-layer Top-k sees the heterogeneous layer mix of ResNet-18; the
//! many-run sweeps (Table 3, Figs. 5-6) use an MLP on the same synthetic
//! vision data to keep dozens of full training runs affordable on CPU —
//! DESIGN.md records this substitution.

use dgs_nn::data::{Dataset, GaussianBlobs, SyntheticVision};
use dgs_nn::model::Network;
use dgs_nn::models::{mlp, mlp_on_images, resnet_lite};
use std::sync::Arc;

/// Which dataset/task family an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// 30-class synthetic vision — the CIFAR-10 stand-in (class count
    /// raised above CIFAR's 10 to reach the paper's budget-limited
    /// difficulty regime at our reduced sample budget; see DESIGN.md).
    CifarLike,
    /// 60-class, larger synthetic vision — the ImageNet stand-in
    /// (preserving the "relatively larger" relation, see DESIGN.md).
    ImagenetLike,
    /// Gaussian blobs — fast smoke-test workload.
    Blobs,
}

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds per training run; for `--quick` and tests.
    Quick,
    /// The default experiment scale (minutes per figure).
    Full,
}

/// Which model family to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// The ResNet-18 stand-in (residual CNN).
    ResNetLite,
    /// An MLP over flattened pixels, for the many-run sweeps.
    Mlp,
}

/// A fully specified workload: datasets plus a deterministic model builder.
pub struct Workload {
    /// Human-readable name used in table captions and file names.
    pub name: String,
    /// Training split.
    pub train: Arc<dyn Dataset>,
    /// Held-out validation split (same task, fresh samples).
    pub val: Arc<dyn Dataset>,
    builder: Arc<dyn Fn() -> Network + Send + Sync>,
    /// Suggested epoch budget at this scale.
    pub epochs: usize,
    /// Suggested base learning rate.
    pub base_lr: f32,
}

impl Workload {
    /// Builds a preset workload.
    pub fn new(kind: WorkloadKind, model: ModelKind, scale: Scale, seed: u64) -> Self {
        match kind {
            WorkloadKind::CifarLike => {
                // Calibrated so single-node MSGD lands ~95% within budget
                // and the async methods spread below it (the paper's
                // budget-limited regime); see EXPERIMENTS.md §Calibration.
                let (train_len, val_len, epochs) = match scale {
                    Scale::Quick => (512, 256, 4),
                    Scale::Full => (2048, 512, 10),
                };
                let hw = 12;
                let data = SyntheticVision::new(train_len, 3, hw, 30, 2.5, seed);
                let val = Arc::new(data.validation(val_len));
                let train = Arc::new(data);
                let builder: Arc<dyn Fn() -> Network + Send + Sync> = match model {
                    ModelKind::ResNetLite => Arc::new(move || resnet_lite(3, hw, 30, 6, seed)),
                    ModelKind::Mlp => Arc::new(move || mlp_on_images(3, hw, &[128, 64], 30, seed)),
                };
                Workload {
                    name: format!("cifar-like/{}", model_name(model)),
                    train,
                    val,
                    builder,
                    epochs,
                    base_lr: 0.2,
                }
            }
            WorkloadKind::ImagenetLike => {
                let (train_len, val_len, epochs) = match scale {
                    Scale::Quick => (512, 256, 4),
                    Scale::Full => (3072, 768, 10),
                };
                let hw = 16;
                let classes = 60;
                let data = SyntheticVision::new(train_len, 3, hw, classes, 2.5, seed);
                let val = Arc::new(data.validation(val_len));
                let train = Arc::new(data);
                let builder: Arc<dyn Fn() -> Network + Send + Sync> = match model {
                    ModelKind::ResNetLite => Arc::new(move || resnet_lite(3, hw, classes, 8, seed)),
                    ModelKind::Mlp => {
                        Arc::new(move || mlp_on_images(3, hw, &[256, 128], classes, seed))
                    }
                };
                Workload {
                    name: format!("imagenet-like/{}", model_name(model)),
                    train,
                    val,
                    builder,
                    epochs,
                    base_lr: 0.15,
                }
            }
            WorkloadKind::Blobs => {
                let (train_len, val_len, epochs) = match scale {
                    Scale::Quick => (256, 128, 4),
                    Scale::Full => (1024, 256, 8),
                };
                let data = GaussianBlobs::new(train_len, 16, 5, 0.4, seed);
                let val = Arc::new(data.validation(val_len));
                let train = Arc::new(data);
                let builder: Arc<dyn Fn() -> Network + Send + Sync> =
                    Arc::new(move || mlp(16, &[64, 32], 5, seed));
                Workload {
                    name: "blobs/mlp".to_string(),
                    train,
                    val,
                    builder,
                    epochs,
                    base_lr: 0.05,
                }
            }
        }
    }

    /// Invokes the model builder (deterministic: every call returns an
    /// identically initialised network).
    pub fn build_model(&self) -> Network {
        (self.builder)()
    }

    /// Runs `f` with the builder in the `&dyn Fn` shape the trainers take.
    pub fn with_builder<R>(&self, f: impl FnOnce(&(dyn Fn() -> Network + Sync)) -> R) -> R {
        let b = &self.builder;
        let closure = move || b();
        f(&closure)
    }

    /// Number of parameters of the preset model.
    pub fn num_params(&self) -> usize {
        self.build_model().num_params()
    }
}

fn model_name(model: ModelKind) -> &'static str {
    match model {
        ModelKind::ResNetLite => "resnet-lite",
        ModelKind::Mlp => "mlp",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build_and_are_deterministic() {
        let w = Workload::new(WorkloadKind::Blobs, ModelKind::Mlp, Scale::Quick, 7);
        let a = w.build_model();
        let b = w.build_model();
        assert_eq!(a.params().data(), b.params().data());
        assert!(!w.train.is_empty());
        assert!(!w.val.is_empty());
        assert_eq!(w.train.num_classes(), w.val.num_classes());
    }

    #[test]
    fn imagenet_like_is_larger_than_cifar_like() {
        let c = Workload::new(WorkloadKind::CifarLike, ModelKind::ResNetLite, Scale::Quick, 1);
        let i = Workload::new(WorkloadKind::ImagenetLike, ModelKind::ResNetLite, Scale::Quick, 1);
        assert!(i.train.num_classes() > c.train.num_classes());
        assert!(i.train.sample_shape().numel() > c.train.sample_shape().numel());
        assert!(i.num_params() > c.num_params());
    }

    #[test]
    fn with_builder_usable_by_trainers() {
        let w = Workload::new(WorkloadKind::Blobs, ModelKind::Mlp, Scale::Quick, 3);
        let n = w.with_builder(|b| b().num_params());
        assert_eq!(n, w.num_params());
    }
}
