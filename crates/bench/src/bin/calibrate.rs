//! Difficulty calibration sweep for the experiment presets.
use dgs_core::config::{LrSchedule, TrainConfig};
use dgs_core::method::Method;
use dgs_core::trainer::single::train_msgd;
use dgs_core::trainer::threaded::train_async;
use dgs_nn::data::{Dataset, SyntheticVision};
use dgs_nn::models::resnet_lite;
use std::sync::Arc;

fn main() {
    let a: Vec<String> = std::env::args().skip(1).collect();
    let noise: f32 = a.first().and_then(|s| s.parse().ok()).unwrap_or(2.0);
    let classes: usize = a.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let epochs: usize = a.get(2).and_then(|s| s.parse().ok()).unwrap_or(15);
    let lr: f32 = a.get(3).and_then(|s| s.parse().ok()).unwrap_or(0.08);
    let ratio: f64 = a.get(4).and_then(|s| s.parse().ok()).unwrap_or(0.01);
    let workers: usize = a.get(5).and_then(|s| s.parse().ok()).unwrap_or(4);
    let momentum: f32 = a.get(6).and_then(|s| s.parse().ok()).unwrap_or(0.7);
    let hw = 12;
    let seed = 20200817u64;
    let data = SyntheticVision::new(2048, 3, hw, classes, noise, seed);
    let val: Arc<dyn Dataset> = Arc::new(data.validation(512));
    let train: Arc<dyn Dataset> = Arc::new(data);
    let build = move || resnet_lite(3, hw, classes, 6, seed);

    for method in Method::ALL {
        let mut cfg = TrainConfig::paper_default(method, workers, epochs);
        cfg.batch_per_worker = 16;
        cfg.lr = LrSchedule::paper_default(lr, epochs);
        cfg.seed = seed;
        cfg.evals = 3;
        cfg.sparsity_ratio = ratio;
        cfg.momentum = momentum;
        if let Ok(clip) = std::env::var("CLIP") {
            cfg.clip_norm = clip.parse().unwrap();
        }
        if let Ok(wu) = std::env::var("WARMUP") {
            cfg.warmup_epochs = wu.parse().unwrap();
        }
        let t = std::time::Instant::now();
        let res = if method == Method::Msgd {
            train_msgd(build(), Arc::clone(&train), Arc::clone(&val), &cfg)
        } else {
            train_async(&cfg, &build, Arc::clone(&train), Arc::clone(&val))
        };
        println!("noise={noise} cls={classes} lr={lr} R={ratio} w={workers} m={momentum}: {:<10} acc {:.2}% stale {:.1} ({:.0}s)",
            method.name(), 100.0*res.final_acc, res.mean_staleness, t.elapsed().as_secs_f64());
    }
}
