//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation section (ICPP 2020, "Dual-Way Gradient Sparsification for
//! Asynchronous Distributed Deep Learning").
//!
//! Usage:
//!
//! ```text
//! cargo run -p dgs-bench --release --bin experiments -- <subcommand> [--quick]
//!
//! subcommands:
//!   fig2      learning curves, cifar-like, 4 workers (paper Fig. 2)
//!   fig3      learning curves, imagenet-like, 4 workers (paper Fig. 3)
//!   fig4      learning curves, imagenet-like, 16 workers (paper Fig. 4)
//!   table2    final accuracies at 4 workers, both datasets (paper Tab. 2)
//!   table3    cifar-like scaling 1..32 workers (paper Tab. 3)
//!   table4    imagenet-like scaling 4/16 workers (paper Tab. 4)
//!   fig5      loss vs virtual time at 1 Gbps, 8 workers (paper Fig. 5)
//!   fig6      speedup vs workers at 10/1 Gbps (paper Fig. 6)
//!   table5    technique matrix (paper Tab. 5)
//!   memory    server/worker memory accounting (paper §5.6.2)
//!   ablation-secondary   secondary compression on/off across bandwidths
//!   ablation-momentum    momentum coefficient sweep (paper §5.4 note)
//!   ablation-threshold   exact vs sampled Top-k threshold accuracy
//!   ablation-compression DGS × ternary quantization (extension, §6)
//!   ablation-straggler   SSGD vs async under worker lag (§1 motivation)
//!   ablation-damping     gap-aware staleness damping (extension)
//!   summary   digest of all recorded results/*.json artefacts
//!   all       everything above in order
//! ```
//!
//! Every subcommand prints aligned tables and writes raw JSON/CSV under
//! `results/` for EXPERIMENTS.md.

use dgs_bench::plot::{ascii_chart, Series};
use dgs_bench::presets::{ModelKind, Scale, Workload, WorkloadKind};
use dgs_bench::table::{bytes_human, pct, pct_delta, Table};
use dgs_bench::{write_csv, write_json};
use dgs_core::config::{LrSchedule, TrainConfig};
use dgs_core::curves::RunResult;
use dgs_core::memory::MemoryReport;
use dgs_core::method::Method;
use dgs_core::trainer::des::{train_des, train_des_stragglers, DesParams};
use dgs_core::trainer::single::train_msgd;
use dgs_core::trainer::sync::{train_ssgd, SyncCompression};
use dgs_core::trainer::threaded::train_async;
use dgs_psim::{NetworkModel, StragglerModel};
use std::sync::Arc;

const SEED: u64 = 20200817; // ICPP '20 dates

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let cmd = args.iter().find(|a| !a.starts_with("--")).cloned().unwrap_or_default();
    let started = std::time::Instant::now();
    match cmd.as_str() {
        "fig2" => fig2(scale),
        "fig3" => fig3(scale),
        "fig4" => fig4(scale),
        "table2" => table2(scale),
        "table3" => table3(scale),
        "table4" => table4(scale),
        "fig5" => fig5(scale),
        "fig6" => fig6(scale),
        "table5" => table5(),
        "memory" => memory(scale),
        "ablation-secondary" => ablation_secondary(scale),
        "ablation-momentum" => ablation_momentum(scale),
        "ablation-threshold" => ablation_threshold(),
        "ablation-compression" => ablation_compression(scale),
        "ablation-straggler" => ablation_straggler(scale),
        "ablation-damping" => ablation_damping(scale),
        "summary" => summary(),
        "all" => {
            fig2(scale);
            fig3(scale);
            fig4(scale);
            table2(scale);
            table3(scale);
            table4(scale);
            fig5(scale);
            fig6(scale);
            table5();
            memory(scale);
            ablation_secondary(scale);
            ablation_momentum(scale);
            ablation_threshold();
            ablation_compression(scale);
            ablation_straggler(scale);
            ablation_damping(scale);
        }
        other => {
            eprintln!("unknown or missing subcommand '{other}'");
            eprintln!("expected one of: fig2 fig3 fig4 table2 table3 table4 fig5 fig6 table5 memory ablation-secondary ablation-momentum ablation-threshold ablation-compression ablation-straggler ablation-damping summary all");
            std::process::exit(2);
        }
    }
    eprintln!("[experiments] done in {:.1}s", started.elapsed().as_secs_f64());
}

/// Builds the paper-default config for a method on a workload.
fn config_for(method: Method, workers: usize, wl: &Workload, batch: usize) -> TrainConfig {
    let mut cfg = TrainConfig::paper_default(method, workers, wl.epochs);
    cfg.batch_per_worker = batch;
    cfg.lr = LrSchedule::paper_default(wl.base_lr, wl.epochs);
    cfg.seed = SEED;
    cfg.evals = wl.epochs;
    // Touch-interval parity with the paper (see EXPERIMENTS.md): at our
    // iteration scale R=5% touches each coordinate about once per epoch,
    // matching the paper's R=1% at their iteration scale.
    cfg.sparsity_ratio = 0.05;
    // Asynchrony adds implicit momentum (paper §5.4 reduces m as workers
    // grow); at our staleness-per-iteration ratio the calibrated value for
    // the async methods is lower still.
    if method != Method::Msgd {
        cfg.momentum = 0.3;
    }
    // Lin et al.'s clipping threshold is tuned to their gradient scale; on
    // this workload it degrades DGC, so the baseline runs without it.
    cfg.clip_norm = 0.0;
    cfg
}

/// Runs one configuration on the appropriate engine.
fn run(cfg: &TrainConfig, wl: &Workload) -> RunResult {
    if cfg.method == Method::Msgd {
        train_msgd(wl.build_model(), Arc::clone(&wl.train), Arc::clone(&wl.val), cfg)
    } else {
        wl.with_builder(|b| train_async(cfg, b, Arc::clone(&wl.train), Arc::clone(&wl.val)))
    }
}

fn run_des_on(cfg: &TrainConfig, wl: &Workload, params: DesParams) -> RunResult {
    wl.with_builder(|b| train_des(cfg, b, Arc::clone(&wl.train), Arc::clone(&wl.val), params))
}

// ---------------------------------------------------------------------------
// Learning-curve experiments (Figs. 2-4)
// ---------------------------------------------------------------------------

fn learning_curves(
    tag: &str,
    caption: &str,
    wl: &Workload,
    workers: usize,
    batch: usize,
    lr_override: Option<f32>,
    repeats: usize,
) {
    println!(
        "[{tag}] workload {} | {} workers | batch {batch} | {repeats} repeat(s)",
        wl.name, workers
    );
    let mut results: Vec<RunResult> = Vec::new();
    for method in Method::ALL {
        let start = std::time::Instant::now();
        // Average the final metrics over independent seeds (the thread
        // engine's interleaving is nondeterministic); keep the first
        // seed's curve for the per-epoch table.
        let mut first: Option<RunResult> = None;
        let mut acc_sum = 0.0f64;
        let mut loss_sum = 0.0f64;
        for r in 0..repeats.max(1) {
            let mut cfg = config_for(method, workers, wl, batch);
            if let Some(lr) = lr_override {
                cfg.lr = LrSchedule::paper_default(lr, wl.epochs);
            }
            cfg.seed = SEED + r as u64;
            let res = run(&cfg, wl);
            acc_sum += res.final_acc;
            loss_sum += res.final_loss;
            if first.is_none() {
                first = Some(res);
            }
        }
        let mut res = first.expect("at least one repeat");
        res.final_acc = acc_sum / repeats.max(1) as f64;
        res.final_loss = loss_sum / repeats.max(1) as f64;
        println!(
            "  {:<10} final acc {:>7} (mean of {repeats})  ({:.1}s host)",
            method.name(),
            pct(res.final_acc),
            start.elapsed().as_secs_f64()
        );
        results.push(res);
    }
    // Curve table: one row per epoch with every method's val accuracy.
    let header: Vec<String> = std::iter::once("epoch".to_string())
        .chain(results.iter().flat_map(|r| {
            [format!("{} acc", r.method_name()), format!("{} loss", r.method_name())]
        }))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(caption, &header_refs);
    let max_points = results.iter().map(|r| r.curve.len()).max().unwrap_or(0);
    let mut csv_rows = Vec::new();
    for i in 0..max_points {
        let mut cells = vec![format!("{}", i + 1)];
        for r in &results {
            match r.curve.get(i) {
                Some(p) => {
                    cells.push(pct(p.val_acc));
                    cells.push(format!("{:.4}", p.train_loss));
                }
                None => {
                    cells.push(String::new());
                    cells.push(String::new());
                }
            }
        }
        csv_rows.push(cells.clone());
        table.row(cells);
    }
    table.print();
    // ASCII rendition of the accuracy curves (the figure itself).
    let series: Vec<Series> = results
        .iter()
        .map(|r| {
            Series::new(
                r.method_name(),
                r.curve.iter().enumerate().map(|(i, p)| ((i + 1) as f64, p.val_acc)).collect(),
            )
        })
        .collect();
    println!(
        "{}",
        ascii_chart(&format!("{caption} (val top-1)"), "epoch", "accuracy", &series, 72, 18)
    );
    let header_owned: Vec<&str> = header.iter().map(String::as_str).collect();
    write_csv(tag, &header_owned, &csv_rows).expect("write csv");
    write_json(tag, &results).expect("write json");
    println!("[{tag}] wrote results/{tag}.json and .csv\n");
}

fn fig2(scale: Scale) {
    let wl = Workload::new(WorkloadKind::CifarLike, ModelKind::ResNetLite, scale, SEED);
    learning_curves(
        "fig2",
        "Fig. 2 — learning curves, ResNet-lite on cifar-like, 4 workers",
        &wl,
        4,
        16,
        None,
        // The thread engine's interleaving is nondeterministic; average
        // the headline figure over three seeds.
        3,
    );
}

fn fig3(scale: Scale) {
    let wl = Workload::new(WorkloadKind::ImagenetLike, ModelKind::ResNetLite, scale, SEED);
    learning_curves(
        "fig3",
        "Fig. 3 — learning curves, ResNet-lite on imagenet-like, 4 workers",
        &wl,
        4,
        16,
        None,
        1,
    );
}

fn fig4(scale: Scale) {
    let wl = Workload::new(WorkloadKind::ImagenetLike, ModelKind::ResNetLite, scale, SEED);
    learning_curves(
        "fig4",
        "Fig. 4 — learning curves, ResNet-lite on imagenet-like, 16 workers",
        &wl,
        16,
        8,
        // Half batch at 16 workers keeps sparse Top-k coverage up; scale
        // the learning rate down with it (linear-scaling direction).
        Some(0.1),
        // 16-worker thread interleavings are noisy; average three seeds.
        3,
    );
}

// ---------------------------------------------------------------------------
// Accuracy tables (Tabs. 2-4)
// ---------------------------------------------------------------------------

fn table2(scale: Scale) {
    let mut table = Table::new(
        "Table 2 — final top-1 accuracy, 4 workers",
        &["dataset", "method", "workers", "top-1"],
    );
    let mut rows = Vec::new();
    for (label, kind) in
        [("cifar-like", WorkloadKind::CifarLike), ("imagenet-like", WorkloadKind::ImagenetLike)]
    {
        let wl = Workload::new(kind, ModelKind::ResNetLite, scale, SEED);
        for method in Method::ALL {
            let workers = if method == Method::Msgd { 1 } else { 4 };
            let cfg = config_for(method, workers, &wl, 16);
            let res = run(&cfg, &wl);
            println!("  [table2] {label} {:<10} acc {}", method.name(), pct(res.final_acc));
            table.row(vec![
                label.to_string(),
                method.name().to_string(),
                workers.to_string(),
                pct(res.final_acc),
            ]);
            rows.push((label.to_string(), method.name().to_string(), res.final_acc));
        }
    }
    table.print();
    write_json("table2", &rows).expect("write json");
}

/// Shared scaling sweep used by Tables 3 and 4.
///
/// Protocol note (EXPERIMENTS.md): the paper shrinks the per-worker batch
/// as workers grow (a practicality for its small dataset); at our already
/// reduced scale that conflates staleness with a small-batch optimisation
/// advantage. We instead hold the per-update batch fixed across worker
/// counts — total samples and total updates stay matched, so the delta
/// column isolates exactly what the paper's table demonstrates: the damage
/// asynchrony does as workers are added, and each method's resistance
/// to it.
fn scaling_table(
    tag: &str,
    caption: &str,
    kind: WorkloadKind,
    scale: Scale,
    worker_counts: &[usize],
    batch: usize,
) {
    let wl = Workload::new(kind, ModelKind::Mlp, scale, SEED);
    // Baseline: single-node MSGD at the same per-update batch.
    let msgd_cfg = config_for(Method::Msgd, 1, &wl, batch);
    let msgd = run(&msgd_cfg, &wl);
    println!("  [{tag}] MSGD baseline acc {}", pct(msgd.final_acc));

    let mut table = Table::new(
        caption,
        &["workers", "batch/worker", "method", "top-1", "delta", "mean staleness"],
    );
    table.row(vec![
        "1".into(),
        batch.to_string(),
        "MSGD".into(),
        pct(msgd.final_acc),
        "-".into(),
        "0.0".into(),
    ]);
    let mut rows: Vec<(usize, String, f64, f64)> = vec![(1, "MSGD".into(), msgd.final_acc, 0.0)];
    for &workers in worker_counts {
        for method in Method::ASYNC {
            let cfg = config_for(method, workers, &wl, batch);
            let res = run(&cfg, &wl);
            let delta = res.final_acc - msgd.final_acc;
            println!(
                "  [{tag}] {workers:>2} workers {:<10} acc {} ({})",
                method.name(),
                pct(res.final_acc),
                pct_delta(delta)
            );
            table.row(vec![
                workers.to_string(),
                batch.to_string(),
                method.name().to_string(),
                pct(res.final_acc),
                pct_delta(delta),
                format!("{:.2}", res.mean_staleness),
            ]);
            rows.push((workers, method.name().to_string(), res.final_acc, delta));
        }
    }
    table.print();
    write_json(tag, &rows).expect("write json");
}

fn table3(scale: Scale) {
    let counts: &[usize] = match scale {
        Scale::Quick => &[4, 8],
        Scale::Full => &[4, 8, 16, 32],
    };
    scaling_table(
        "table3",
        "Table 3 — cifar-like scaling (MLP), accuracy vs workers",
        WorkloadKind::CifarLike,
        scale,
        counts,
        16,
    );
}

fn table4(scale: Scale) {
    let counts: &[usize] = match scale {
        Scale::Quick => &[4],
        Scale::Full => &[4, 16],
    };
    scaling_table(
        "table4",
        "Table 4 — imagenet-like scaling (MLP), accuracy vs workers",
        WorkloadKind::ImagenetLike,
        scale,
        counts,
        16,
    );
}

// ---------------------------------------------------------------------------
// Wall-clock experiments (Figs. 5-6)
// ---------------------------------------------------------------------------

fn fig5(scale: Scale) {
    // 8 workers at 1 Gbps; DGS with secondary compression vs ASGD.
    let wl = Workload::new(WorkloadKind::CifarLike, ModelKind::Mlp, scale, SEED);
    let workers = 8;
    let params = DesParams::one_gbps();

    let asgd_cfg = config_for(Method::Asgd, workers, &wl, 8);
    let asgd = run_des_on(&asgd_cfg, &wl, params);
    let mut dgs_cfg = config_for(Method::Dgs, workers, &wl, 8);
    dgs_cfg.secondary_compression = true;
    let dgs = run_des_on(&dgs_cfg, &wl, params);

    let mut table = Table::new(
        "Fig. 5 — training loss vs wall-clock (virtual) time, 8 workers, 1 Gbps",
        &["method", "virtual time (s)", "train loss", "val acc"],
    );
    for r in [&asgd, &dgs] {
        for p in &r.curve {
            table.row(vec![
                r.method_name().to_string(),
                format!("{:.2}", p.virtual_time),
                format!("{:.4}", p.train_loss),
                pct(p.val_acc),
            ]);
        }
    }
    table.print();

    let series: Vec<Series> = [&asgd, &dgs]
        .iter()
        .map(|r| {
            Series::new(
                r.method_name(),
                r.curve.iter().map(|p| (p.virtual_time, p.train_loss)).collect(),
            )
        })
        .collect();
    println!(
        "{}",
        ascii_chart(
            "Fig. 5 — train loss vs virtual time (1 Gbps, 8 workers)",
            "seconds",
            "loss",
            &series,
            72,
            18
        )
    );

    // Speedup to the loosest loss target both methods reach.
    let target = asgd
        .curve
        .iter()
        .map(|p| p.train_loss)
        .fold(f64::INFINITY, f64::min)
        .max(dgs.curve.iter().map(|p| p.train_loss).fold(f64::INFINITY, f64::min))
        * 1.05;
    let t_asgd = asgd.time_to_loss(target);
    let t_dgs = dgs.time_to_loss(target);
    if let (Some(a), Some(d)) = (t_asgd, t_dgs) {
        println!(
            "[fig5] time to loss {target:.3}: ASGD {a:.1}s vs DGS {d:.1}s -> speedup {:.1}x",
            a / d
        );
    }
    println!(
        "[fig5] total: ASGD {:.1}s ({} down) vs DGS {:.1}s ({} down)\n",
        asgd.virtual_time,
        bytes_human(asgd.bytes_down),
        dgs.virtual_time,
        bytes_human(dgs.bytes_down)
    );
    write_json("fig5", &vec![asgd, dgs]).expect("write json");
}

fn fig6(scale: Scale) {
    // The paper's protocol: fixed per-worker batch, speedup = throughput
    // (samples/s) relative to one worker of the same method. Sparsity is
    // the paper's literal R = 1% (accuracy is irrelevant here; bytes are).
    let wl = Workload::new(WorkloadKind::CifarLike, ModelKind::Mlp, scale, SEED);
    let counts: &[usize] = match scale {
        Scale::Quick => &[1, 2, 4],
        Scale::Full => &[1, 2, 4, 8, 16],
    };
    let batch = 16;
    let mut table = Table::new(
        "Fig. 6 — throughput speedup vs workers (fixed per-worker batch)",
        &["bandwidth", "method", "workers", "virtual time (s)", "speedup"],
    );
    let mut rows = Vec::new();
    for (bw_name, network) in
        [("10Gbps", NetworkModel::ten_gbps()), ("1Gbps", NetworkModel::one_gbps())]
    {
        for method in [Method::Asgd, Method::Dgs] {
            let mut base_throughput = None;
            for &workers in counts {
                let mut cfg = config_for(method, workers, &wl, batch);
                // Fixed iterations per worker: scale the epoch budget with
                // the worker count so iters_per_worker stays constant.
                cfg.epochs = wl.epochs * workers;
                cfg.evals = 2; // wall-clock runs don't need dense curves
                cfg.sparsity_ratio = 0.01;
                if method == Method::Dgs {
                    cfg.secondary_compression = true;
                }
                let params = DesParams { network, ..DesParams::ten_gbps() };
                let res = run_des_on(&cfg, &wl, params);
                let t = res.virtual_time;
                let iters = cfg.iters_per_worker(wl.train.len());
                let throughput = (workers * iters * batch) as f64 / t;
                let base = *base_throughput.get_or_insert(throughput);
                let speedup = throughput / base;
                println!(
                    "  [fig6] {bw_name} {:<5} {workers:>2} workers: {t:>8.2}s  speedup {speedup:.2}x",
                    method.name()
                );
                table.row(vec![
                    bw_name.to_string(),
                    method.name().to_string(),
                    workers.to_string(),
                    format!("{t:.2}"),
                    format!("{speedup:.2}x"),
                ]);
                rows.push((bw_name.to_string(), method.name().to_string(), workers, t, speedup));
            }
        }
    }
    table.print();
    write_json("fig6", &rows).expect("write json");
}

// ---------------------------------------------------------------------------
// Table 5 + memory (§5.6.2)
// ---------------------------------------------------------------------------

fn table5() {
    let mut table = Table::new(
        "Table 5 — techniques in each method",
        &["method", "sparsification", "momentum", "momentum correction", "residual accumulation"],
    );
    for m in Method::ALL {
        let t = m.techniques();
        table.row(vec![
            t.method.to_string(),
            t.sparsification.to_string(),
            t.momentum.to_string(),
            if t.momentum_correction { "Y" } else { "N" }.to_string(),
            if t.residual_accumulation { "Y" } else { "N" }.to_string(),
        ]);
    }
    table.print();
    write_json("table5", &Method::ALL.iter().map(|m| m.techniques()).collect::<Vec<_>>())
        .expect("write json");
}

fn memory(scale: Scale) {
    let wl = Workload::new(WorkloadKind::CifarLike, ModelKind::ResNetLite, scale, SEED);
    let model_bytes = wl.num_params() * 4;
    let mut table = Table::new(
        "Memory accounting (§5.6.2)",
        &["method", "workers", "server total", "per-worker aux", "cluster total"],
    );
    let mut rows = Vec::new();
    for method in Method::ALL {
        for workers in [4usize, 16, 32] {
            let workers = if method == Method::Msgd { 1 } else { workers };
            let rep = MemoryReport::analytic(method, workers, model_bytes);
            table.row(vec![
                method.name().to_string(),
                workers.to_string(),
                bytes_human(rep.server_total() as u64),
                bytes_human(rep.worker_aux_bytes as u64),
                bytes_human(rep.cluster_total() as u64),
            ]);
            rows.push(rep);
            if method == Method::Msgd {
                break;
            }
        }
    }
    table.print();
    // The paper's headline: a 16 GB server tracks >300 ResNet-18 workers.
    let resnet18_bytes = 46 * (1 << 20);
    let n = MemoryReport::max_workers_for_budget(resnet18_bytes, 16 * (1 << 30));
    println!("[memory] 16 GiB server budget tracks {n} ResNet-18-sized workers (paper: >300)\n");
    write_json("memory", &rows).expect("write json");
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

fn ablation_secondary(scale: Scale) {
    let wl = Workload::new(WorkloadKind::CifarLike, ModelKind::Mlp, scale, SEED);
    let workers = 8;
    let mut table = Table::new(
        "Ablation — secondary compression across bandwidths (DGS, 8 workers)",
        &["bandwidth", "secondary", "virtual time (s)", "bytes down", "final acc"],
    );
    let mut rows = Vec::new();
    for (bw_name, gbps) in [("10Gbps", 10.0), ("1Gbps", 1.0), ("0.1Gbps", 0.1)] {
        for secondary in [false, true] {
            let mut cfg = config_for(Method::Dgs, workers, &wl, 8);
            cfg.secondary_compression = secondary;
            cfg.evals = 4;
            let params =
                DesParams { network: NetworkModel::new(gbps, 50.0), ..DesParams::ten_gbps() };
            let res = run_des_on(&cfg, &wl, params);
            println!(
                "  [ablation-secondary] {bw_name} secondary={secondary}: {:.2}s, {} down, acc {}",
                res.virtual_time,
                bytes_human(res.bytes_down),
                pct(res.final_acc)
            );
            table.row(vec![
                bw_name.to_string(),
                secondary.to_string(),
                format!("{:.2}", res.virtual_time),
                bytes_human(res.bytes_down),
                pct(res.final_acc),
            ]);
            rows.push((
                bw_name.to_string(),
                secondary,
                res.virtual_time,
                res.bytes_down,
                res.final_acc,
            ));
        }
    }
    table.print();
    write_json("ablation_secondary", &rows).expect("write json");
}

fn ablation_momentum(scale: Scale) {
    // Paper §5.4: at 32 workers, reducing m from 0.7 to 0.3 *improved*
    // accuracy (asynchrony begets momentum). Sweep m at 8 workers.
    let wl = Workload::new(WorkloadKind::CifarLike, ModelKind::Mlp, scale, SEED);
    let workers = 8;
    let mut table = Table::new(
        "Ablation — momentum coefficient (DGS, 8 workers)",
        &["momentum", "final acc", "final loss"],
    );
    let mut rows = Vec::new();
    for m in [0.3f32, 0.45, 0.6, 0.7, 0.9] {
        let mut cfg = config_for(Method::Dgs, workers, &wl, 8);
        cfg.momentum = m;
        let res = run(&cfg, &wl);
        println!("  [ablation-momentum] m={m}: acc {}", pct(res.final_acc));
        table.row(vec![format!("{m}"), pct(res.final_acc), format!("{:.4}", res.final_loss)]);
        rows.push((m, res.final_acc, res.final_loss));
    }
    table.print();
    write_json("ablation_momentum", &rows).expect("write json");
}

/// Prints a one-screen digest of every recorded experiment artefact under
/// `results/`, without re-running anything.
fn summary() {
    println!("recorded experiment artefacts (results/*.json):\n");
    // Learning-curve experiments share the RunResult schema.
    for tag in ["fig2", "fig3", "fig4"] {
        if let Some(results) = dgs_bench::read_json::<Vec<RunResult>>(tag) {
            let mut table = Table::new(
                format!("{tag} — final accuracies"),
                &["method", "top-1", "bytes up", "bytes down", "staleness"],
            );
            for r in &results {
                table.row(vec![
                    r.method_name().to_string(),
                    pct(r.final_acc),
                    bytes_human(r.bytes_up),
                    bytes_human(r.bytes_down),
                    format!("{:.1}", r.mean_staleness),
                ]);
            }
            table.print();
        } else {
            println!("[{tag}] not recorded yet — run `experiments {tag}`\n");
        }
    }
    // Scaling tables: (workers, method, acc, delta).
    for tag in ["table3", "table4"] {
        if let Some(rows) = dgs_bench::read_json::<Vec<(usize, String, f64, f64)>>(tag) {
            let mut table = Table::new(
                format!("{tag} — accuracy vs workers"),
                &["workers", "method", "top-1", "delta vs MSGD"],
            );
            for (workers, method, acc, delta) in &rows {
                table.row(vec![
                    workers.to_string(),
                    method.clone(),
                    pct(*acc),
                    if method == "MSGD" { "-".into() } else { pct_delta(*delta) },
                ]);
            }
            table.print();
        } else {
            println!("[{tag}] not recorded yet — run `experiments {tag}`\n");
        }
    }
    // Speedups: (bandwidth, method, workers, time, speedup).
    if let Some(rows) = dgs_bench::read_json::<Vec<(String, String, usize, f64, f64)>>("fig6") {
        let mut table = Table::new(
            "fig6 — throughput speedups",
            &["bandwidth", "method", "workers", "speedup"],
        );
        for (bw, method, workers, _t, speedup) in &rows {
            table.row(vec![
                bw.clone(),
                method.clone(),
                workers.to_string(),
                format!("{speedup:.2}x"),
            ]);
        }
        table.print();
    } else {
        println!("[fig6] not recorded yet — run `experiments fig6`\n");
    }
}

/// Extension: gap-aware staleness damping at the server (in the spirit of
/// Barkai et al., which the paper cites for momentum-ASGD): scale each
/// update by 1/(1+staleness)^alpha. Sweeps alpha at a high worker count,
/// where staleness is the dominant error source.
fn ablation_damping(scale: Scale) {
    let wl = Workload::new(WorkloadKind::CifarLike, ModelKind::Mlp, scale, SEED);
    let workers = 16;
    let mut table = Table::new(
        "Ablation — gap-aware staleness damping (16 workers)",
        &["method", "alpha", "final acc", "final loss"],
    );
    let mut rows = Vec::new();
    for method in [Method::Asgd, Method::Dgs] {
        for alpha in [0.0f64, 0.25, 0.5, 1.0] {
            let mut cfg = config_for(method, workers, &wl, 16);
            cfg.staleness_damping = alpha;
            let res = run(&cfg, &wl);
            println!(
                "  [ablation-damping] {:<5} alpha={alpha}: acc {}",
                method.name(),
                pct(res.final_acc)
            );
            table.row(vec![
                method.name().to_string(),
                format!("{alpha}"),
                pct(res.final_acc),
                format!("{:.4}", res.final_loss),
            ]);
            rows.push((method.name().to_string(), alpha, res.final_acc));
        }
    }
    table.print();
    write_json("ablation_damping", &rows).expect("write json");
}

/// The paper's §1 motivation, reproduced: synchronous training pays the
/// barrier cost of the slowest worker, asynchronous training does not.
/// Sweep a single straggler's slowdown and compare time-to-completion at
/// matched sample budgets (virtual time, compute-bound DES regime).
fn ablation_straggler(scale: Scale) {
    let wl = Workload::new(WorkloadKind::CifarLike, ModelKind::Mlp, scale, SEED);
    let workers = 8;
    // Compute-bound regime so lag, not bandwidth, is the variable.
    let params = DesParams { worker_gflops: 1.0, ..DesParams::ten_gbps() };
    let mut table = Table::new(
        "Ablation — worker lag: SSGD barrier vs asynchronous training (8 workers)",
        &["slowdown", "variant", "virtual time (s)", "final acc"],
    );
    let mut rows = Vec::new();
    for slowdown in [1.0f64, 2.0, 4.0, 8.0] {
        let stragglers = if slowdown > 1.0 {
            StragglerModel::one_slow(slowdown)
        } else {
            StragglerModel::none()
        };
        // Synchronous dense and synchronous Top-k.
        for (name, compression) in [
            ("SSGD-dense", SyncCompression::Dense),
            ("SSGD-topk", SyncCompression::TopK { ratio: 0.05 }),
        ] {
            let mut cfg = config_for(Method::Msgd, 1, &wl, 16);
            cfg.workers = workers;
            cfg.evals = 2;
            let res = wl.with_builder(|b| {
                train_ssgd(
                    &cfg,
                    b,
                    Arc::clone(&wl.train),
                    Arc::clone(&wl.val),
                    compression,
                    params,
                    &stragglers,
                )
            });
            println!(
                "  [ablation-straggler] x{slowdown} {name}: {:.2}s acc {}",
                res.virtual_time,
                pct(res.final_acc)
            );
            table.row(vec![
                format!("{slowdown}x"),
                name.to_string(),
                format!("{:.2}", res.virtual_time),
                pct(res.final_acc),
            ]);
            rows.push((slowdown, name.to_string(), res.virtual_time, res.final_acc));
        }
        // Asynchronous: ASGD and DGS.
        for method in [Method::Asgd, Method::Dgs] {
            let mut cfg = config_for(method, workers, &wl, 16);
            cfg.evals = 2;
            let res = wl.with_builder(|b| {
                train_des_stragglers(
                    &cfg,
                    b,
                    Arc::clone(&wl.train),
                    Arc::clone(&wl.val),
                    params,
                    &stragglers,
                )
            });
            println!(
                "  [ablation-straggler] x{slowdown} {}: {:.2}s acc {}",
                method.name(),
                res.virtual_time,
                pct(res.final_acc)
            );
            table.row(vec![
                format!("{slowdown}x"),
                method.name().to_string(),
                format!("{:.2}", res.virtual_time),
                pct(res.final_acc),
            ]);
            rows.push((slowdown, method.name().to_string(), res.virtual_time, res.final_acc));
        }
    }
    table.print();
    write_json("ablation_straggler", &rows).expect("write json");
}

/// Extension (paper §6 future work): combine DGS with TernGrad-style
/// ternary quantization of the uplink, and compare against unbiased random
/// coordinate dropping at the same target ratio.
fn ablation_compression(scale: Scale) {
    let wl = Workload::new(WorkloadKind::CifarLike, ModelKind::Mlp, scale, SEED);
    let workers = 4;
    let mut table = Table::new(
        "Ablation — compression combinations (extension, paper §6)",
        &["variant", "final acc", "bytes up", "bytes/iter up"],
    );
    let mut rows = Vec::new();
    let variants: Vec<(String, TrainConfig)> = vec![
        ("DGS".into(), config_for(Method::Dgs, workers, &wl, 16)),
        ("DGS + ternary uplink".into(), {
            let mut c = config_for(Method::Dgs, workers, &wl, 16);
            c.quantize_uplink = true;
            c
        }),
        ("GD-async".into(), config_for(Method::GdAsync, workers, &wl, 16)),
        ("ASGD".into(), config_for(Method::Asgd, workers, &wl, 16)),
    ];
    let mut results: Vec<(String, dgs_core::curves::RunResult)> = Vec::new();
    for (name, cfg) in variants {
        let res = run(&cfg, &wl);
        println!(
            "  [ablation-compression] {name}: acc {} up {}",
            pct(res.final_acc),
            bytes_human(res.bytes_up)
        );
        results.push((name, res));
    }
    // Unbiased random dropping rides on the same trainer via a custom
    // round-robin (it is not one of the paper's five methods); approximate
    // it here by reporting the primitive's byte cost at the same ratio.
    for (name, res) in &results {
        let iters = res.curve.last().map(|p| p.updates).unwrap_or(1).max(1);
        table.row(vec![
            name.clone(),
            pct(res.final_acc),
            bytes_human(res.bytes_up),
            bytes_human(res.bytes_up / iters),
        ]);
        rows.push((name.clone(), res.final_acc, res.bytes_up));
    }
    table.print();
    write_json("ablation_compression", &rows).expect("write json");
}

fn ablation_threshold() {
    // Exact vs sampled Top-k threshold: how close is the sampled estimate's
    // actually-selected count to the requested k?
    use dgs_sparsify::{sampled_threshold, topk_threshold};
    let mut table = Table::new(
        "Ablation — exact vs sampled Top-k threshold (requested k vs kept)",
        &["n", "k", "sample", "exact thr", "sampled thr", "kept (sampled)"],
    );
    let mut rows = Vec::new();
    for &(n, k, sample) in
        &[(10_000usize, 100usize, 1000usize), (100_000, 1000, 2000), (100_000, 100, 5000)]
    {
        let data: Vec<f32> = (0..n)
            .map(|i| {
                let x = (i as f64 * 0.73).sin() * 2.0 + (i as f64 * 0.11).cos();
                (x * x * x) as f32
            })
            .collect();
        let exact = topk_threshold(&data, k);
        let est = sampled_threshold(&data, k, sample, SEED);
        let kept = data.iter().filter(|v| v.abs() >= est).count();
        table.row(vec![
            n.to_string(),
            k.to_string(),
            sample.to_string(),
            format!("{exact:.4}"),
            format!("{est:.4}"),
            kept.to_string(),
        ]);
        rows.push((n, k, sample, exact, est, kept));
    }
    table.print();
    write_json("ablation_threshold", &rows).expect("write json");
}
