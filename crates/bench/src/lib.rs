#![warn(missing_docs)]

//! # dgs-bench
//!
//! Experiment harness for the DGS reproduction. The `experiments` binary
//! regenerates every table and figure of the paper's evaluation section;
//! the Criterion benches under `benches/` measure the primitive costs
//! (Top-k selection, COO encode/decode, compressor steps, server updates).
//!
//! This library holds the shared pieces: workload presets (the CIFAR-10 /
//! ImageNet stand-ins at experiment scale), plain-text table rendering, and
//! the JSON results writer the harness uses to persist raw numbers under
//! `results/`.

pub mod plot;
pub mod presets;
pub mod table;

pub use plot::{ascii_chart, Series};
pub use presets::{Scale, Workload, WorkloadKind};
pub use table::Table;

use serde::Serialize;
use std::path::{Path, PathBuf};

/// Directory experiment artefacts are written into (relative to the
/// workspace root when run via `cargo run -p dgs-bench`).
pub fn results_dir() -> PathBuf {
    PathBuf::from("results")
}

/// Serialises `value` as pretty JSON under `results/<name>.json`.
/// Creates the directory on first use.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Writes a CSV file under `results/<name>.csv` from a header and rows.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    std::fs::write(&path, out)?;
    Ok(path)
}

/// Reads a previously written results JSON, if present.
pub fn read_json<T: serde::de::DeserializeOwned>(name: &str) -> Option<T> {
    let path = results_dir().join(format!("{name}.json"));
    read_json_path(&path)
}

fn read_json_path<T: serde::de::DeserializeOwned>(path: &Path) -> Option<T> {
    let data = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&data).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let name = "unit_test_artifact";
        let value = vec![1.0f64, 2.0, 3.0];
        let path = write_json(name, &value).unwrap();
        assert!(path.exists());
        let back: Vec<f64> = read_json(name).unwrap();
        assert_eq!(back, value);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn csv_writer_formats_rows() {
        let path = write_csv(
            "unit_test_csv",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
        std::fs::remove_file(path).ok();
    }
}
