//! Terminal line plots for training curves.
//!
//! The harness runs on headless machines, so figures are rendered as ASCII
//! charts alongside the CSV/JSON artefacts: good enough to eyeball the
//! crossovers the paper's figures show without leaving the terminal.

/// One named data series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series from a label and points.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series { label: label.into(), points }
    }
}

/// Renders an ASCII line chart of the given series.
///
/// Each series is drawn with its own glyph (`*`, `o`, `+`, …); the legend
/// maps glyphs to labels. Returns the rendered multi-line string.
pub fn ascii_chart(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
    width: usize,
    height: usize,
) -> String {
    const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let width = width.max(16);
    let height = height.max(6);
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    if all.is_empty() {
        return format!("== {title} ==\n(no data)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let cy = (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            let col = cx.min(width - 1);
            // Later series overwrite earlier ones at collisions; the legend
            // disambiguates trends, not individual pixels.
            grid[row][col] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!("{y_label} ({y_min:.3} .. {y_max:.3})\n"));
    for row in &grid {
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!("{x_label} ({x_min:.3} .. {x_max:.3})\n"));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_axes_and_legend() {
        let s = vec![
            Series::new("up", vec![(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]),
            Series::new("down", vec![(0.0, 2.0), (1.0, 1.0), (2.0, 0.0)]),
        ];
        let chart = ascii_chart("Demo", "epoch", "loss", &s, 40, 10);
        assert!(chart.contains("== Demo =="));
        assert!(chart.contains("loss (0.000 .. 2.000)"));
        assert!(chart.contains("epoch (0.000 .. 2.000)"));
        assert!(chart.contains("* up"));
        assert!(chart.contains("o down"));
        // The rising series occupies the top-right corner region.
        let lines: Vec<&str> = chart.lines().collect();
        let first_grid = lines[2];
        assert!(first_grid.contains('*') || first_grid.contains('o'));
    }

    #[test]
    fn empty_series_render_placeholder() {
        let chart = ascii_chart("Empty", "x", "y", &[], 30, 8);
        assert!(chart.contains("(no data)"));
    }

    #[test]
    fn degenerate_ranges_do_not_panic() {
        let s = vec![Series::new("flat", vec![(1.0, 5.0), (1.0, 5.0)])];
        let chart = ascii_chart("Flat", "x", "y", &s, 20, 6);
        assert!(chart.contains("Flat"));
    }

    #[test]
    fn glyph_positions_follow_data() {
        // A single point at the minimum lands bottom-left; at max, top-right.
        let s = vec![Series::new("pt", vec![(0.0, 0.0), (10.0, 10.0)])];
        let chart = ascii_chart("Corners", "x", "y", &s, 21, 7);
        let grid: Vec<&str> = chart.lines().filter(|l| l.starts_with('|')).collect();
        assert_eq!(grid.len(), 7);
        // Top row has the max point at the far right.
        assert_eq!(grid[0].chars().last(), Some('*'));
        // Bottom row has the min point right after the border.
        assert_eq!(grid[6].chars().nth(1), Some('*'));
    }
}
