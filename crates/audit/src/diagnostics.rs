//! Findings, their rustc-style rendering, and the `--json` line format.

use std::fmt;

/// One audit finding at a source position.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule name (`nan-ordering`, …, or `waiver` for waiver hygiene).
    pub rule: String,
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
    /// Suppressed by a justified `dgs::allow` comment. Waived findings
    /// are kept (for `--json` and waiver accounting) but do not fail
    /// the audit.
    pub waived: bool,
    /// Whether a waiver *may* suppress this finding. Lock-order cycles
    /// are unwaivable: a deadlock cannot be justified into correctness.
    pub waivable: bool,
}

impl Finding {
    /// Shorthand constructor used by the rules.
    pub fn new(rule: &str, path: &str, line: u32, col: u32, message: String) -> Self {
        Finding {
            rule: rule.to_string(),
            path: path.to_string(),
            line,
            col,
            message,
            waived: false,
            waivable: true,
        }
    }

    /// A finding no waiver can suppress (lock-order cycles).
    pub fn unwaivable(rule: &str, path: &str, line: u32, col: u32, message: String) -> Self {
        Finding { waivable: false, ..Finding::new(rule, path, line, col, message) }
    }

    /// One-line JSON object for `--json` output.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"rule\":{},\"path\":{},\"line\":{},\"col\":{},\"message\":{},\"waived\":{}}}",
            json_str(&self.rule),
            json_str(&self.path),
            self.line,
            self.col,
            json_str(&self.message),
            self.waived
        )
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[dgs::{}]: {}", self.rule, self.message)?;
        write!(f, "  --> {}:{}:{}", self.path, self.line, self.col)
    }
}

/// Renders unwaived findings plus a one-line summary, rustc-style.
pub fn render_report(findings: &[Finding]) -> String {
    let mut out = String::new();
    let active: Vec<&Finding> = findings.iter().filter(|f| !f.waived).collect();
    for f in &active {
        out.push_str(&f.to_string());
        out.push_str("\n\n");
    }
    if active.is_empty() {
        out.push_str("dgs-audit: clean (0 findings)\n");
    } else {
        out.push_str(&format!(
            "dgs-audit: {} finding{} — fix or waive with `// dgs::allow(<rule>): <why>`\n",
            active.len(),
            if active.len() == 1 { "" } else { "s" }
        ));
    }
    out
}

/// Renders every finding (waived included) as one JSON object per line.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_json_line());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rustc_style() {
        let f = Finding::new("nan-ordering", "crates/sparsify/src/topk.rs", 42, 9, "use total_cmp".to_string());
        let s = f.to_string();
        assert!(s.contains("error[dgs::nan-ordering]: use total_cmp"));
        assert!(s.contains("--> crates/sparsify/src/topk.rs:42:9"));
    }

    #[test]
    fn report_summarizes_and_skips_waived() {
        assert!(render_report(&[]).contains("clean"));
        let f = Finding::new("waiver", "a.rs", 1, 1, "m".to_string());
        let mut waived = f.clone();
        waived.waived = true;
        let r = render_report(&[f.clone(), f, waived]);
        assert!(r.contains("2 findings"));
    }

    #[test]
    fn json_lines_escape_and_carry_waived_flag() {
        let mut f =
            Finding::new("lock-order", "crates/net/src/edge.rs", 3, 7, "say \"hi\"\n".to_string());
        f.waived = true;
        let j = f.to_json_line();
        assert_eq!(
            j,
            "{\"rule\":\"lock-order\",\"path\":\"crates/net/src/edge.rs\",\"line\":3,\
             \"col\":7,\"message\":\"say \\\"hi\\\"\\n\",\"waived\":true}"
        );
        assert!(render_json(&[f.clone(), f]).lines().count() == 2);
    }

    #[test]
    fn unwaivable_constructor_clears_the_flag() {
        let f = Finding::unwaivable("lock-order", "a.rs", 1, 1, "cycle".to_string());
        assert!(!f.waivable);
        assert!(!f.waived);
    }
}
