//! Findings and their rustc-style rendering.

use std::fmt;

/// One audit finding at a source position.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule name (`nan-ordering`, …, or `waiver` for waiver hygiene).
    pub rule: String,
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// Shorthand constructor used by the rules.
    pub fn new(rule: &str, path: &str, line: u32, col: u32, message: String) -> Self {
        Finding { rule: rule.to_string(), path: path.to_string(), line, col, message }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[dgs::{}]: {}", self.rule, self.message)?;
        write!(f, "  --> {}:{}:{}", self.path, self.line, self.col)
    }
}

/// Renders all findings plus a one-line summary, rustc-style.
pub fn render_report(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push_str("\n\n");
    }
    if findings.is_empty() {
        out.push_str("dgs-audit: clean (0 findings)\n");
    } else {
        out.push_str(&format!(
            "dgs-audit: {} finding{} — fix or waive with `// dgs::allow(<rule>): <why>`\n",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rustc_style() {
        let f = Finding::new("nan-ordering", "crates/sparsify/src/topk.rs", 42, 9, "use total_cmp".to_string());
        let s = f.to_string();
        assert!(s.contains("error[dgs::nan-ordering]: use total_cmp"));
        assert!(s.contains("--> crates/sparsify/src/topk.rs:42:9"));
    }

    #[test]
    fn report_summarizes() {
        assert!(render_report(&[]).contains("clean"));
        let f = Finding::new("waiver", "a.rs", 1, 1, "m".to_string());
        let r = render_report(&[f.clone(), f]);
        assert!(r.contains("2 findings"));
    }
}
