//! CLI entry point:
//! `dgs-audit --workspace [--root DIR] [--rule NAME]... [--json]`
//!
//! Exit codes: 0 clean, 1 unwaived findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use dgs_audit::config::{Config, RULES};
use dgs_audit::{check_workspace, diagnostics};

const USAGE: &str = "\
dgs-audit: DGS-invariant static analysis (see DESIGN.md S8)

USAGE:
    dgs-audit --workspace [--root DIR] [--rule NAME]...

OPTIONS:
    --workspace      audit src/ and crates/*/src/ under the root
    --root DIR       workspace root (default: current directory)
    --rule NAME      run only the named rule(s); repeatable
    --json           one JSON object per finding (waived ones included,
                     flagged \"waived\":true); exit code still counts
                     only unwaived findings
    --list-rules     print the rule names and exit
    --help           this text
";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut workspace = false;
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut only: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage_error("--root needs a directory"),
            },
            "--rule" => match args.next() {
                Some(name) => {
                    if !RULES.contains(&name.as_str()) && name != "waiver" {
                        return usage_error(&format!(
                            "unknown rule `{name}` (try --list-rules)"
                        ));
                    }
                    only.push(name);
                }
                None => return usage_error("--rule needs a rule name"),
            },
            "--list-rules" => {
                for r in RULES {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if !workspace {
        return usage_error("nothing to do: pass --workspace");
    }
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "dgs-audit: `{}` does not look like a workspace root (no Cargo.toml); use --root",
            root.display()
        );
        return ExitCode::from(2);
    }
    let cfg = match Config::for_workspace_root(&root) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("dgs-audit: bad lock-order manifest: {e}");
            return ExitCode::from(2);
        }
    };
    let only = if only.is_empty() { None } else { Some(only) };
    match check_workspace(&root, &cfg, only.as_deref()) {
        Ok(findings) => {
            if json {
                print!("{}", diagnostics::render_json(&findings));
            } else {
                print!("{}", diagnostics::render_report(&findings));
            }
            if findings.iter().all(|f| f.waived) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("dgs-audit: I/O error: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("dgs-audit: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
