//! The lock-order manifest (`audit-lock-order.toml`): declared lock
//! classes, their acquisition patterns, the one global acquisition
//! order, panic-reach entry files/barriers, and the poller scope.
//!
//! The parser is a deliberately minimal hand-rolled TOML subset —
//! `[section]`, `[[array-of-tables]]`, `key = "str" | true | false |
//! ["a", "b"]`, `#` comments — because the audit crate must stay
//! std-only and build with bare `rustc` offline (see lib.rs). Anything
//! outside that subset is a hard parse error, never silently ignored:
//! a manifest that fails to parse must fail the audit.

/// One declared mutex class.
#[derive(Debug, Clone, Default)]
pub struct LockClass {
    /// Class name used in `rank` and in diagnostics.
    pub name: String,
    /// Guarded type: methods called directly on a fresh guard resolve
    /// only against `impl <inner>` blocks (no homonym widening).
    pub inner: Option<String>,
    /// Acquisition patterns: `helper_name` or `field.method`.
    pub acquire: Vec<String>,
    /// Workspace-relative path prefixes the patterns apply in.
    pub files: Vec<String>,
    /// Blocking calls under this guard are this lock's purpose.
    pub allow_blocking: bool,
}

/// Parsed manifest.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// Global acquisition order, outermost first.
    pub rank: Vec<String>,
    /// Declared lock classes.
    pub locks: Vec<LockClass>,
    /// panic-reach: wire-path entry files.
    pub entry_files: Vec<String>,
    /// panic-reach: unwind-barrier call names.
    pub barriers: Vec<String>,
    /// Poller-thread files (strictest blocking scope).
    pub poller_files: Vec<String>,
    /// Calls exempt from the poller rule (`field.meth` / bare-name
    /// patterns) — the poll(2) wait itself lives here.
    pub poller_allow: Vec<String>,
}

/// The checked-in manifest, embedded so `check_source` (and the golden
/// fixtures) audit against exactly the order the repo declares.
pub const DEFAULT_MANIFEST: &str = include_str!("../../../audit-lock-order.toml");

/// Option/Result/collection adapter methods that forward their
/// receiver: `self.applied.get(w).ok_or(..)?.lock()` still acquires the
/// `applied` field's mutex. Receiver matching (here and in call-graph
/// type narrowing) looks through these hops to the first real receiver.
pub const ADAPTER_HOPS: &[&str] = &[
    "get", "get_mut", "ok_or", "ok_or_else", "as_ref", "as_mut", "as_deref", "unwrap", "expect",
    "map_err", "first", "last",
];

/// First chain hop that is not a forwarding adapter.
pub fn receiver_of(chain: &[String]) -> Option<&String> {
    chain.iter().find(|h| !ADAPTER_HOPS.contains(&h.as_str()))
}

impl Manifest {
    /// Position of `class` in the declared order, if declared.
    pub fn rank_of(&self, class: &str) -> Option<usize> {
        self.rank.iter().position(|c| c == class)
    }

    /// Classifies a call as a lock acquisition. `name` is the callee,
    /// `is_method` whether it was `recv.name(...)`, `chain` the
    /// receiver idents (nearest first), `path` the file being audited.
    pub fn classify(
        &self,
        name: &str,
        is_method: bool,
        chain: &[String],
        path: &str,
    ) -> Option<&LockClass> {
        self.locks.iter().find(|c| {
            c.files.iter().any(|p| crate::config::path_has_prefix(path, p))
                && c.acquire.iter().any(|pat| match pat.split_once('.') {
                    None => name == pat,
                    // The field must be the nearest *non-adapter* receiver:
                    // `self.lock()` is the blanket handler lock,
                    // `self.0.lock()` the byte queue (chain-contains would
                    // conflate them), and `slots.get(w).ok_or(..)?.lock()`
                    // still acquires the `slots` mutex.
                    Some((field, meth)) => {
                        is_method
                            && name == meth
                            && receiver_of(chain).is_some_and(|x| x == field)
                    }
                })
        })
    }

    /// Is this call exempt from the poller rule (e.g. `poller.wait`)?
    pub fn poller_allows(&self, name: &str, chain: &[String]) -> bool {
        self.poller_allow.iter().any(|pat| match pat.split_once('.') {
            None => name == pat,
            Some((field, meth)) => name == meth && chain.first().is_some_and(|x| x == field),
        })
    }

    /// Class with the given name.
    pub fn class(&self, name: &str) -> Option<&LockClass> {
        self.locks.iter().find(|c| c.name == name)
    }

    /// Is `path` a panic-reach entry file?
    pub fn is_entry_file(&self, path: &str) -> bool {
        self.entry_files.iter().any(|p| crate::config::path_has_prefix(path, p))
    }

    /// Is `path` driven by the poller thread?
    pub fn is_poller_file(&self, path: &str) -> bool {
        self.poller_files.iter().any(|p| crate::config::path_has_prefix(path, p))
    }
}

/// Parses the manifest text. Errors carry the 1-based line number.
pub fn parse(text: &str) -> Result<Manifest, String> {
    let mut m = Manifest::default();
    // Which table the next `key = value` lines belong to.
    enum Section {
        None,
        Order,
        Lock,
        PanicReach,
        Poller,
    }
    let mut section = Section::None;
    let mut lines = text.lines().enumerate();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let mut line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        // Multi-line list: keep joining until the brackets close.
        while line.contains('[')
            && !line.starts_with('[')
            && line.matches('[').count() > line.matches(']').count()
        {
            match lines.next() {
                Some((_, next)) => {
                    line.push(' ');
                    line.push_str(strip_comment(next).trim());
                }
                None => return Err(format!("line {lineno}: unterminated list")),
            }
        }
        let line = line.as_str();
        if let Some(head) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
            match head.trim() {
                "lock" => {
                    m.locks.push(LockClass::default());
                    section = Section::Lock;
                }
                other => return Err(format!("line {lineno}: unknown table `[[{other}]]`")),
            }
            continue;
        }
        if let Some(head) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            section = match head.trim() {
                "order" => Section::Order,
                "panic-reach" => Section::PanicReach,
                "poller" => Section::Poller,
                other => return Err(format!("line {lineno}: unknown section `[{other}]`")),
            };
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
        let (key, value) = (key.trim(), value.trim());
        match (&section, key) {
            (Section::Order, "rank") => m.rank = parse_list(value, lineno)?,
            (Section::Lock, "name") => lock_mut(&mut m, lineno)?.name = parse_str(value, lineno)?,
            (Section::Lock, "inner") => {
                lock_mut(&mut m, lineno)?.inner = Some(parse_str(value, lineno)?)
            }
            (Section::Lock, "acquire") => {
                lock_mut(&mut m, lineno)?.acquire = parse_list(value, lineno)?
            }
            (Section::Lock, "files") => {
                lock_mut(&mut m, lineno)?.files = parse_list(value, lineno)?
            }
            (Section::Lock, "allow_blocking") => {
                lock_mut(&mut m, lineno)?.allow_blocking = parse_bool(value, lineno)?
            }
            (Section::PanicReach, "entries") => m.entry_files = parse_list(value, lineno)?,
            (Section::PanicReach, "barriers") => m.barriers = parse_list(value, lineno)?,
            (Section::Poller, "files") => m.poller_files = parse_list(value, lineno)?,
            (Section::Poller, "allow") => m.poller_allow = parse_list(value, lineno)?,
            _ => return Err(format!("line {lineno}: unexpected key `{key}` here")),
        }
    }
    validate(&m)?;
    Ok(m)
}

fn lock_mut(m: &mut Manifest, lineno: usize) -> Result<&mut LockClass, String> {
    m.locks.last_mut().ok_or_else(|| format!("line {lineno}: key outside any [[lock]]"))
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_str(value: &str, lineno: usize) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("line {lineno}: expected a double-quoted string, got `{value}`"))
}

fn parse_bool(value: &str, lineno: usize) -> Result<bool, String> {
    match value {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(format!("line {lineno}: expected true/false, got `{value}`")),
    }
}

/// Parses `["a", "b"]`, tolerating the multi-line form only via the
/// caller joining lines — in practice the manifest keeps one-line lists
/// except `rank`, so lists may also span lines using trailing commas.
fn parse_list(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|r| r.strip_suffix(']'))
        .ok_or_else(|| format!("line {lineno}: expected a [\"…\"] list, got `{value}`"))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        out.push(parse_str(item, lineno)?);
    }
    Ok(out)
}

fn validate(m: &Manifest) -> Result<(), String> {
    for c in &m.locks {
        if c.name.is_empty() {
            return Err("a [[lock]] is missing `name`".to_string());
        }
        if c.acquire.is_empty() {
            return Err(format!("lock `{}` has no acquire patterns", c.name));
        }
        if c.files.is_empty() {
            return Err(format!("lock `{}` has no files scope", c.name));
        }
        if m.rank_of(&c.name).is_none() {
            return Err(format!("lock `{}` is not in [order] rank", c.name));
        }
    }
    for r in &m.rank {
        if m.class(r).is_none() {
            return Err(format!("rank names undeclared lock `{r}`"));
        }
    }
    let mut seen: Vec<&str> = Vec::new();
    for r in &m.rank {
        if seen.contains(&r.as_str()) {
            return Err(format!("rank lists `{r}` twice"));
        }
        seen.push(r);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedded_manifest_parses_and_covers_the_named_mutexes() {
        let m = parse(DEFAULT_MANIFEST).expect("embedded manifest must parse");
        // Acceptance: every named mutex in shard.rs, runtime.rs,
        // event_loop.rs (none — poller scope instead), and edge.rs.
        for class in ["front", "shard", "worker-applied", "span-logic", "edge-state", "edge-upstream"]
        {
            assert!(m.class(class).is_some(), "missing class {class}");
        }
        assert!(m.is_poller_file("crates/net/src/event_loop.rs"));
        assert!(m.is_entry_file("crates/net/src/codec.rs"));
        assert!(m.rank_of("front").unwrap() < m.rank_of("shard").unwrap());
        assert!(m.barriers.iter().any(|b| b == "catch_unwind"));
    }

    #[test]
    fn classify_matches_helper_and_field_patterns_in_scope_only() {
        let m = parse(DEFAULT_MANIFEST).unwrap();
        let shard = "crates/core/src/shard.rs";
        assert_eq!(m.classify("lock_front", true, &[], shard).unwrap().name, "front");
        let chain = vec!["front".to_string(), "self".to_string()];
        assert_eq!(m.classify("lock", true, &chain, shard).unwrap().name, "front");
        // Out of the class's file scope: no match.
        assert!(m.classify("lock_front", true, &[], "crates/net/src/tcp.rs").is_none());
        // Non-method call cannot match a dotted pattern.
        assert!(m.classify("lock", false, &chain, shard).is_none());
    }

    #[test]
    fn malformed_manifests_are_hard_errors() {
        assert!(parse("[oops]").is_err());
        assert!(parse("name = \"x\"").is_err());
        assert!(parse("[[lock]]\nname = \"a\"").is_err()); // no acquire/files/rank
        let dup = "[order]\nrank = [\"a\", \"a\"]\n[[lock]]\nname = \"a\"\nacquire = [\"a.lock\"]\nfiles = [\"src\"]\n";
        assert!(parse(dup).unwrap_err().contains("twice"));
    }

    #[test]
    fn comments_and_strings_interact_correctly() {
        let m = parse("[order]\nrank = [] # trailing\n").unwrap();
        assert!(m.rank.is_empty());
        let m = parse("[panic-reach]\nentries = [\"a#b\"] # real comment\n").unwrap();
        assert_eq!(m.entry_files, vec!["a#b"]);
    }
}
