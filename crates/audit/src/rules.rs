//! The six DGS rules, operating on the lexed token stream.
//!
//! Each rule is a pure function from tokens to findings; scoping (which
//! file gets which rule) lives in [`crate::config`], and waiver
//! application happens afterwards in [`crate::check_source`].

use crate::config::Config;
use crate::diagnostics::Finding;
use crate::lexer::{in_regions, matching_close, Lexed, Tok, TokKind};

/// Runs every applicable rule for `rel_path` over `lexed`, before waivers.
/// `only` restricts to a subset of rule names (CLI `--rule`, golden tests).
pub fn run_all(
    rel_path: &str,
    lexed: &Lexed,
    cfg: &Config,
    only: Option<&[String]>,
) -> Vec<Finding> {
    let enabled = |rule: &str| {
        cfg.applies(rule, rel_path) && only.map_or(true, |names| names.iter().any(|n| n == rule))
    };
    let toks = &lexed.toks;
    let test_regions = crate::lexer::cfg_test_regions(toks);
    let mut findings = Vec::new();
    if enabled("nan-ordering") {
        nan_ordering(rel_path, toks, &mut findings);
    }
    if enabled("determinism") {
        determinism(rel_path, toks, &mut findings);
    }
    if enabled("no-panic-io") {
        no_panic_io(rel_path, toks, &test_regions, &mut findings);
    }
    if enabled("no-truncating-cast") {
        no_truncating_cast(rel_path, toks, &test_regions, &mut findings);
    }
    if enabled("unsafe-budget") {
        unsafe_budget(rel_path, toks, lexed, cfg, &mut findings);
    }
    if enabled("paired-symbols") {
        paired_symbols(rel_path, toks, &mut findings);
    }
    findings
}

fn is_ident(t: &Tok, text: &str) -> bool {
    t.kind == TokKind::Ident && t.text == text
}

fn is_punct(t: &Tok, text: &str) -> bool {
    t.kind == TokKind::Punct && t.text == text
}

/// nan-ordering: `partial_cmp` on the top-R% selection paths reorders NaN
/// magnitudes arbitrarily (PAPER.md Alg. 1/3) — `total_cmp` is required.
/// Flags calls and path uses, not the `fn partial_cmp` a `PartialOrd`
/// impl must define (which should delegate to `Ord`/`total_cmp`).
fn nan_ordering(path: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if !is_ident(t, "partial_cmp") {
            continue;
        }
        if i > 0 && is_ident(&toks[i - 1], "fn") {
            continue;
        }
        out.push(Finding::new(
            "nan-ordering",
            path,
            t.line,
            t.col,
            "`partial_cmp` gives NaN magnitudes an arbitrary order in top-R% selection; \
             use `total_cmp` (see merge::mag_idx_order)"
                .to_string(),
        ));
    }
}

/// determinism: the MDT server/update-log/sparsify/codec cores must be
/// bit-exact and replayable (Eq. 5 equivalence proofs): no wall clocks,
/// no randomized-hasher iteration order, no entropy.
fn determinism(path: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let msg = match t.text.as_str() {
            "HashMap" | "HashSet" => Some(format!(
                "`{}` iterates in randomized order; use `BTreeMap`/`BTreeSet` or index-keyed \
                 vectors in deterministic cores",
                t.text
            )),
            "SystemTime" => {
                Some("wall-clock time in a deterministic core breaks replayability".to_string())
            }
            "Instant" => {
                // Only `Instant::now` observes the clock; an `Instant`
                // passed in as data is fine.
                let is_now = toks.get(i + 1).is_some_and(|a| is_punct(a, ":"))
                    && toks.get(i + 2).is_some_and(|a| is_punct(a, ":"))
                    && toks.get(i + 3).is_some_and(|a| is_ident(a, "now"));
                is_now.then(|| {
                    "`Instant::now` in a deterministic core breaks replayability".to_string()
                })
            }
            "thread_rng" | "from_entropy" => {
                Some(format!("`{}` injects entropy into a deterministic core", t.text))
            }
            _ => None,
        };
        if let Some(msg) = msg {
            out.push(Finding::new("determinism", path, t.line, t.col, msg));
        }
    }
}

/// no-panic-io: the wire paths promise "error, never panic" (PR 2) — a
/// malformed frame or poisoned lock must surface as `NetError`, not tear
/// down the thread mid-connection. Test modules are exempt.
fn no_panic_io(path: &str, toks: &[Tok], test_regions: &[(u32, u32)], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || in_regions(test_regions, t.line) {
            continue;
        }
        let finding = match t.text.as_str() {
            // Method calls only: `.unwrap()` / `.expect(`. Plain idents
            // named `unwrap` (e.g. a local fn) are not the std panic.
            "unwrap" | "expect" => {
                i > 0
                    && is_punct(&toks[i - 1], ".")
                    && toks.get(i + 1).is_some_and(|a| is_punct(a, "("))
            }
            "panic" | "unimplemented" | "todo" | "unreachable" => {
                toks.get(i + 1).is_some_and(|a| is_punct(a, "!"))
            }
            _ => false,
        };
        if finding {
            out.push(Finding::new(
                "no-panic-io",
                path,
                t.line,
                t.col,
                format!(
                    "`{}` on a wire path can tear down a live connection; propagate \
                     `NetError` instead (poisoned lock -> explicit error)",
                    t.text
                ),
            ));
        }
    }
}

const INT_TYPES: &[&str] =
    &["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];

/// no-truncating-cast: `as` silently wraps oversized lengths/ids on the
/// wire; `try_from` + the codec's error type is required so a >4 GiB
/// payload or >u16 worker id errors instead of aliasing another value.
fn no_truncating_cast(path: &str, toks: &[Tok], test_regions: &[(u32, u32)], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if !is_ident(t, "as") || in_regions(test_regions, t.line) {
            continue;
        }
        let Some(next) = toks.get(i + 1) else { continue };
        if next.kind == TokKind::Ident && INT_TYPES.contains(&next.text.as_str()) {
            out.push(Finding::new(
                "no-truncating-cast",
                path,
                t.line,
                t.col,
                format!(
                    "`as {}` silently wraps out-of-range values on the wire; use \
                     `{}::try_from` and return the codec error",
                    next.text, next.text
                ),
            ));
        }
    }
}

/// unsafe-budget: zero `unsafe` outside `crates/tensor`; inside the
/// budget every `unsafe` needs a `// SAFETY:` comment within the three
/// preceding lines. Applies to test code too — UB in a test is still UB.
fn unsafe_budget(path: &str, toks: &[Tok], lexed: &Lexed, cfg: &Config, out: &mut Vec<Finding>) {
    for t in toks {
        if !is_ident(t, "unsafe") {
            continue;
        }
        if !cfg.unsafe_is_allowed(path) {
            out.push(Finding::new(
                "unsafe-budget",
                path,
                t.line,
                t.col,
                "`unsafe` outside the budget (`crates/tensor`); move the unsafe kernel \
                 there or find a safe formulation"
                    .to_string(),
            ));
            continue;
        }
        let has_safety = lexed.comments.iter().any(|c| {
            c.line + 3 >= t.line && c.line <= t.line && c.text.contains("SAFETY:")
        });
        if !has_safety {
            out.push(Finding::new(
                "unsafe-budget",
                path,
                t.line,
                t.col,
                "`unsafe` without a `// SAFETY:` comment in the 3 preceding lines".to_string(),
            ));
        }
    }
}

/// paired-symbols: the codec's symmetry is the invariant
/// `encode(msg).len() == msg.wire_bytes()` rests on — every `encode_*`
/// must have a `decode_*` counterpart (stems normalized: `_payload` and
/// `_frame` suffixes stripped), every `put_*` a `take_*`, and every
/// variant of a `*Msg`/`*Payload` enum must appear in a `wire_bytes`
/// body so new variants cannot ship without a size law.
fn paired_symbols(path: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    // Collect fn names with positions.
    let mut fns: Vec<(String, u32, u32)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if is_ident(t, "fn") {
            if let Some(name) = toks.get(i + 1) {
                if name.kind == TokKind::Ident {
                    fns.push((name.text.clone(), name.line, name.col));
                }
            }
        }
    }
    let has_fn = |want: &str| fns.iter().any(|(n, _, _)| n == want);
    let stem = |name: &str, prefix: &str| -> String {
        let s = name.trim_start_matches(prefix);
        s.trim_end_matches("_payload").trim_end_matches("_frame").to_string()
    };
    for (name, line, col) in &fns {
        if let Some(_rest) = name.strip_prefix("encode_") {
            let s = stem(name, "encode_");
            let ok = fns.iter().any(|(n, _, _)| n.starts_with("decode_") && stem(n, "decode_") == s);
            if !ok {
                out.push(Finding::new(
                    "paired-symbols",
                    path,
                    *line,
                    *col,
                    format!("`{name}` has no matching `decode_{s}*` in this file"),
                ));
            }
        }
        if let Some(rest) = name.strip_prefix("put_") {
            if !has_fn(&format!("take_{rest}")) {
                out.push(Finding::new(
                    "paired-symbols",
                    path,
                    *line,
                    *col,
                    format!("`{name}` has no matching `take_{rest}` in this file"),
                ));
            }
        }
    }
    // Variant coverage: idents inside every `fn wire_bytes` body.
    let mut wire_idents: Vec<String> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if is_ident(&toks[i], "fn") && toks.get(i + 1).is_some_and(|t| is_ident(t, "wire_bytes")) {
            let mut j = i + 2;
            while j < toks.len() && !is_punct(&toks[j], "{") {
                j += 1;
            }
            let close = matching_close(toks, j, "{", "}");
            for t in toks.iter().take(close).skip(j) {
                if t.kind == TokKind::Ident {
                    wire_idents.push(t.text.clone());
                }
            }
            i = close + 1;
        } else {
            i += 1;
        }
    }
    // Enum variants of *Msg / *Payload enums.
    let mut i = 0;
    while i < toks.len() {
        if !is_ident(&toks[i], "enum") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else { break };
        let enum_name = name_tok.text.clone();
        if !(enum_name.ends_with("Msg") || enum_name.ends_with("Payload")) {
            i += 2;
            continue;
        }
        let mut j = i + 2;
        while j < toks.len() && !is_punct(&toks[j], "{") {
            j += 1;
        }
        let close = matching_close(toks, j, "{", "}");
        let mut brace_depth = 0i32;
        let mut paren_depth = 0i32;
        let mut prev_significant: Option<String> = None;
        for k in j..close.min(toks.len()) {
            let t = &toks[k];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" => brace_depth += 1,
                    "}" => brace_depth -= 1,
                    "(" => paren_depth += 1,
                    ")" => paren_depth -= 1,
                    _ => {}
                }
            }
            if t.kind == TokKind::Ident
                && brace_depth == 1
                && paren_depth == 0
                && matches!(prev_significant.as_deref(), Some("{") | Some(",") | Some("]"))
            {
                let variant = t.text.clone();
                if !wire_idents.iter().any(|w| w == &variant) {
                    out.push(Finding::new(
                        "paired-symbols",
                        path,
                        t.line,
                        t.col,
                        format!(
                            "enum `{enum_name}` variant `{variant}` is not covered by any \
                             `wire_bytes()` arm in this file"
                        ),
                    ));
                }
            }
            prev_significant = Some(t.text.clone());
        }
        i = close + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str, rule: &str) -> Vec<Finding> {
        let cfg = Config::default_for_workspace();
        let lexed = lex(src);
        run_all(path, &lexed, &cfg, Some(&[rule.to_string()]))
    }

    #[test]
    fn nan_ordering_flags_calls_not_defs() {
        let src = "impl PartialOrd for E { fn partial_cmp(&self, o: &Self) -> Option<Ordering> { Some(self.cmp(o)) } }\n\
                   fn pick(v: &mut [f32]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        let f = run("crates/sparsify/src/topk.rs", src, "nan-ordering");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("total_cmp"));
    }

    #[test]
    fn determinism_flags_hash_collections_and_clocks() {
        let src = "use std::collections::HashMap;\n\
                   fn f() { let t = Instant::now(); }\n\
                   fn g(deadline: Instant) {}\n\
                   fn h() { let _ = SystemTime::now(); }\n";
        let f = run("crates/core/src/update_log.rs", src, "determinism");
        let lines: Vec<u32> = f.iter().map(|x| x.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn no_panic_io_exempts_tests_and_or_variants() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }\n\
                   fn g(x: Option<u8>) { x.unwrap_or(0); }\n\
                   fn h() { panic!(\"boom\"); }\n\
                   #[cfg(test)]\n\
                   mod tests { fn t(x: Option<u8>) { x.unwrap(); } }\n";
        let f = run("crates/net/src/tcp.rs", src, "no-panic-io");
        let lines: Vec<u32> = f.iter().map(|x| x.line).collect();
        assert_eq!(lines, vec![1, 3]);
    }

    #[test]
    fn truncating_cast_flags_int_targets_only() {
        let src = "fn f(n: usize) -> u32 { n as u32 }\n\
                   fn g(x: u32) -> f32 { x as f32 }\n\
                   use std::io::Error as IoError;\n";
        let f = run("crates/net/src/codec.rs", src, "no-truncating-cast");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn unsafe_outside_budget_flags() {
        let f = run("crates/net/src/tcp.rs", "fn f() { unsafe { core::hint::unreachable_unchecked() } }", "unsafe-budget");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("outside the budget"));
    }

    #[test]
    fn unsafe_in_budget_needs_safety_comment() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }";
        let good = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}";
        assert_eq!(run("crates/tensor/src/simd.rs", bad, "unsafe-budget").len(), 1);
        assert_eq!(run("crates/tensor/src/simd.rs", good, "unsafe-budget").len(), 0);
    }

    #[test]
    fn paired_symbols_matches_codec_shape() {
        let good = "pub fn encode_up_payload(u: &U) -> Vec<u8> { vec![] }\n\
                    pub fn decode_up(p: &[u8]) -> U { U }\n\
                    fn put_sparse(b: &mut Vec<u8>) {}\n\
                    fn take_sparse(r: &mut R) {}\n";
        assert_eq!(run("crates/net/src/codec.rs", good, "paired-symbols").len(), 0);
        let bad = "pub fn encode_down_frame(d: &D) -> Vec<u8> { vec![] }\n\
                   fn put_ternary(b: &mut Vec<u8>) {}\n";
        let f = run("crates/net/src/codec.rs", bad, "paired-symbols");
        assert_eq!(f.len(), 2);
        assert!(f[0].message.contains("decode_down"));
        assert!(f[1].message.contains("take_ternary"));
    }

    #[test]
    fn paired_symbols_variant_coverage() {
        let src = "pub enum DownMsg {\n\
                       DenseModel(Arc<Vec<f32>>),\n\
                       SparseDiff(SparseUpdate),\n\
                       #[allow(dead_code)]\n\
                       NewThing { a: u8, b: u8 },\n\
                   }\n\
                   impl DownMsg {\n\
                       pub fn wire_bytes(&self) -> usize {\n\
                           match self {\n\
                               DownMsg::DenseModel(m) => 20 + 4 * m.len(),\n\
                               DownMsg::SparseDiff(s) => 20 + s.wire_bytes(),\n\
                               _ => 0,\n\
                           }\n\
                       }\n\
                   }\n";
        let f = run("crates/core/src/protocol.rs", src, "paired-symbols");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("NewThing"));
        assert_eq!(f[0].line, 5);
    }
}
