//! Hand-rolled Rust lexer: just enough tokenization to make the audit
//! rules string-, char-, and comment-aware without pulling in `syn`.
//!
//! The whole crate must stay std-only so `dgs-audit` builds with bare
//! `rustc` when cargo cannot reach a registry (see the repo's verify
//! skill). That rules out a real parser; what the rules actually need is
//! far smaller:
//!
//! * identifiers with exact positions (`partial_cmp`, `unwrap`, `HashMap`,
//!   `unsafe`, `as`, …) — **not** occurrences inside string literals,
//!   char literals, or comments;
//! * comments with positions (waiver comments, `// SAFETY:` annotations);
//! * brace/bracket structure sound enough to skip `#[cfg(test)]` items
//!   and to find `enum`/`fn` bodies.
//!
//! The tricky corners are handled explicitly and unit-tested below:
//! nested block comments, raw strings (`r"…"`, `r#"…"#`, `br#"…"#` — no
//! escape processing, arbitrary hash counts), raw identifiers (`r#fn`),
//! lifetimes vs char literals (`'a` vs `'a'` vs `'\''`), and escaped
//! quotes in ordinary string literals.

/// Token classification — only as fine-grained as the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `as`, `fn` are plain idents here).
    Ident,
    /// Lifetime such as `'a` (the quote is not part of `text`).
    Lifetime,
    /// Numeric literal.
    Num,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`); content
    /// is deliberately not retained — rules must never see into strings.
    Str,
    /// Character or byte-character literal.
    Char,
    /// Any other single character (`.`, `:`, `{`, `!`, …).
    Punct,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Identifier/number/punct text; empty for `Str`/`Char`.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in bytes) of the token's first character.
    pub col: u32,
}

/// A comment (line or block) with the line it starts on. Doc comments are
/// included; `text` excludes the comment markers and is trimmed.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Trimmed comment body without `//`/`/*` markers.
    pub text: String,
    /// 1-based starting line.
    pub line: u32,
}

/// Lexer output: the token stream plus the comment side-channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenizes `src`. Never fails: unterminated constructs consume to EOF,
/// which is the forgiving behavior a linter wants (rustc itself will
/// reject the file properly).
pub fn lex(src: &str) -> Lexed {
    Lexer { s: src.as_bytes(), i: 0, line: 1, col: 1, out: Lexed::default() }.run()
}

struct Lexer<'a> {
    s: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl<'a> Lexer<'a> {
    fn peek(&self, off: usize) -> Option<u8> {
        self.s.get(self.i + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.s.get(self.i).copied()?;
        self.i += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.out.toks.push(Tok { kind, text, line, col });
    }

    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(line),
                b'"' => {
                    self.string_literal();
                    self.push(TokKind::Str, String::new(), line, col);
                }
                b'\'' => self.char_or_lifetime(line, col),
                _ if is_ident_start(b) => self.ident_or_raw(line, col),
                _ if b.is_ascii_digit() => self.number(line, col),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, (b as char).to_string(), line, col);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        // Swallow the doc markers (`///`, `//!`) so waiver/SAFETY matching
        // sees the body only.
        while matches!(self.peek(0), Some(b'/') | Some(b'!')) {
            self.bump();
        }
        let mut text = Vec::new();
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            text.push(b);
            self.bump();
        }
        let text = String::from_utf8_lossy(&text).trim().to_string();
        self.out.comments.push(Comment { text, line });
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = Vec::new();
        while let Some(b) = self.peek(0) {
            if b == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump();
                self.bump();
                text.extend_from_slice(b"/*");
            } else if b == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.extend_from_slice(b"*/");
            } else {
                text.push(b);
                self.bump();
            }
        }
        let text = String::from_utf8_lossy(&text).trim().to_string();
        self.out.comments.push(Comment { text, line });
    }

    /// Ordinary (escaped) string literal; the opening quote is current.
    fn string_literal(&mut self) {
        self.bump();
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'"' => {
                    self.bump();
                    return;
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Raw string with `hashes` delimiter hashes; positioned just past the
    /// opening quote. No escapes: only `"` followed by `hashes` `#`s ends it.
    fn raw_string_body(&mut self, hashes: usize) {
        while let Some(b) = self.peek(0) {
            if b == b'"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..=hashes {
                        self.bump();
                    }
                    return;
                }
            }
            self.bump();
        }
    }

    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        // Current char is `'`. Disambiguate lifetime vs char literal.
        match self.peek(1) {
            Some(b'\\') => {
                // Escaped char literal: consume up to the closing quote.
                self.bump(); // '
                self.bump(); // backslash
                self.bump(); // escaped char (first byte of it)
                while let Some(b) = self.peek(0) {
                    if b == b'\'' {
                        self.bump();
                        break;
                    }
                    self.bump();
                }
                self.push(TokKind::Char, String::new(), line, col);
            }
            Some(c) if is_ident_start(c) && self.peek(2) != Some(b'\'') => {
                // Lifetime: `'a`, `'static`, `'_`.
                self.bump();
                let mut text = String::new();
                while let Some(b) = self.peek(0) {
                    if !is_ident_continue(b) {
                        break;
                    }
                    text.push(b as char);
                    self.bump();
                }
                self.push(TokKind::Lifetime, text, line, col);
            }
            Some(_) => {
                // Plain char literal: `'x'`, `'('`, `'"'` — or `'a'` where
                // peek(2) was the closing quote.
                self.bump();
                self.bump();
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                self.push(TokKind::Char, String::new(), line, col);
            }
            None => {
                self.bump();
                self.push(TokKind::Punct, "'".to_string(), line, col);
            }
        }
    }

    fn ident_or_raw(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(b) = self.peek(0) {
            if !is_ident_continue(b) {
                break;
            }
            text.push(b as char);
            self.bump();
        }
        // Raw-string / raw-identifier lookahead: `r"…"`, `r#"…"#`,
        // `br#"…"#`, `r#ident`.
        if text == "r" || text == "br" {
            if self.peek(0) == Some(b'"') {
                self.bump();
                self.raw_string_body(0);
                self.push(TokKind::Str, String::new(), line, col);
                return;
            }
            if self.peek(0) == Some(b'#') {
                let mut hashes = 0usize;
                while self.peek(hashes) == Some(b'#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some(b'"') {
                    for _ in 0..=hashes {
                        self.bump();
                    }
                    self.raw_string_body(hashes);
                    self.push(TokKind::Str, String::new(), line, col);
                    return;
                }
                if text == "r"
                    && hashes == 1
                    && self.peek(1).is_some_and(is_ident_start)
                {
                    // Raw identifier r#foo: the audit treats it as `foo`.
                    self.bump(); // #
                    let mut raw = String::new();
                    while let Some(b) = self.peek(0) {
                        if !is_ident_continue(b) {
                            break;
                        }
                        raw.push(b as char);
                        self.bump();
                    }
                    self.push(TokKind::Ident, raw, line, col);
                    return;
                }
            }
        }
        self.push(TokKind::Ident, text, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let mut seen_dot = false;
        while let Some(b) = self.peek(0) {
            if is_ident_continue(b) {
                text.push(b as char);
                self.bump();
                // Exponent sign: `1e+3`, `2E-7`.
                if (b == b'e' || b == b'E')
                    && text.chars().next().is_some_and(|c| c.is_ascii_digit())
                    && matches!(self.peek(0), Some(b'+') | Some(b'-'))
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                {
                    text.push(self.peek(0).unwrap_or(b'+') as char);
                    self.bump();
                }
            } else if b == b'.' && !seen_dot && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` but not `0..n` or `x.method()`.
                seen_dot = true;
                text.push('.');
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, text, line, col);
    }
}

/// Returns the index of the token closing the bracket opened at `open`
/// (`toks[open]` must be the opening punct), or `toks.len()` if unmatched.
pub fn matching_close(toks: &[Tok], open: usize, open_ch: &str, close_ch: &str) -> usize {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == open_ch {
                depth += 1;
            } else if t.text == close_ch {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
    }
    toks.len()
}

/// Line ranges (inclusive) of items gated behind `#[cfg(test)]` — the
/// regions the panic/cast rules exempt. An attribute whose bracket group
/// contains both `cfg` and `test` idents starts a region that extends to
/// the end of the following item (brace-matched body, or the terminating
/// semicolon for brace-less items).
pub fn cfg_test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Punct && toks[i].text == "#") {
            i += 1;
            continue;
        }
        let Some(open) = toks.get(i + 1) else { break };
        if !(open.kind == TokKind::Punct && open.text == "[") {
            i += 1;
            continue;
        }
        let close = matching_close(toks, i + 1, "[", "]");
        let attr = &toks[i + 1..close.min(toks.len())];
        let is_cfg_test = attr.iter().any(|t| t.kind == TokKind::Ident && t.text == "cfg")
            && attr.iter().any(|t| t.kind == TokKind::Ident && t.text == "test")
            && !attr.iter().any(|t| t.kind == TokKind::Ident && t.text == "not");
        if !is_cfg_test {
            i = close + 1;
            continue;
        }
        let start_line = toks[i].line;
        let mut j = close + 1;
        // Skip any further attributes on the same item.
        while j + 1 < toks.len()
            && toks[j].kind == TokKind::Punct
            && toks[j].text == "#"
            && toks[j + 1].kind == TokKind::Punct
            && toks[j + 1].text == "["
        {
            j = matching_close(toks, j + 1, "[", "]") + 1;
        }
        // The item body: first `{` (brace-matched) or `;`, whichever first.
        let mut end_line = start_line;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct && t.text == ";" {
                end_line = t.line;
                j += 1;
                break;
            }
            if t.kind == TokKind::Punct && t.text == "{" {
                let body_close = matching_close(toks, j, "{", "}");
                end_line = toks.get(body_close).map_or(t.line, |c| c.line);
                j = body_close + 1;
                break;
            }
            j += 1;
        }
        regions.push((start_line, end_line));
        i = j;
    }
    regions
}

/// True when `line` falls inside any of `regions` (inclusive bounds).
pub fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_with_positions() {
        let l = lex("fn foo() {\n    bar.unwrap();\n}\n");
        let unwrap = l.toks.iter().find(|t| t.text == "unwrap").expect("unwrap tok");
        assert_eq!((unwrap.line, unwrap.col), (2, 9));
    }

    #[test]
    fn strings_hide_their_content() {
        let src = r#"let x = "partial_cmp unwrap HashMap"; y.total_cmp(z);"#;
        let ids = idents(src);
        assert!(ids.contains(&"total_cmp".to_string()));
        assert!(!ids.contains(&"partial_cmp".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
    }

    #[test]
    fn escaped_quotes_do_not_desync() {
        let src = "let s = \"he said \\\"unsafe\\\" loudly\"; after();";
        let ids = idents(src);
        assert!(ids.contains(&"after".to_string()));
        assert!(!ids.contains(&"unsafe".to_string()));
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        let src = r##"let s = r#"say "partial_cmp" loudly"#; after();"##;
        let ids = idents(src);
        assert!(ids.contains(&"after".to_string()));
        assert!(!ids.contains(&"partial_cmp".to_string()));
        // Backslash at the end of a raw string is NOT an escape.
        let src2 = "let s = r\"c:\\\"; after2();";
        assert!(idents(src2).contains(&"after2".to_string()));
        // Byte raw strings too.
        let src3 = r##"let s = br#"unwrap"#; after3();"##;
        let ids3 = idents(src3);
        assert!(ids3.contains(&"after3".to_string()));
        assert!(!ids3.contains(&"unwrap".to_string()));
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        let ids = idents("let r#type = 1; use_it(r#type);");
        assert!(ids.contains(&"type".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; let p = '('; g::<'static, _>(); }";
        let l = lex(src);
        let lifetimes: Vec<_> =
            l.toks.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| t.text.clone()).collect();
        assert_eq!(lifetimes, vec!["a", "a", "static"]);
        let chars = l.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 3);
        // Nothing after the char literals was swallowed.
        assert!(l.toks.iter().any(|t| t.text == "g"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "before(); /* outer /* inner unsafe */ still comment */ after();";
        let ids = idents(src);
        assert!(ids.contains(&"before".to_string()));
        assert!(ids.contains(&"after".to_string()));
        assert!(!ids.contains(&"unsafe".to_string()));
        let l = lex(src);
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("inner unsafe"));
    }

    #[test]
    fn comments_capture_text_and_line() {
        let src = "line1();\n// SAFETY: bounds checked above\nline3();\n/// doc comment\nline5();";
        let l = lex(src);
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 2);
        assert_eq!(l.comments[0].text, "SAFETY: bounds checked above");
        assert_eq!(l.comments[1].line, 4);
        assert_eq!(l.comments[1].text, "doc comment");
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let src = "for i in 0..10 { let x = 1.5e-3; v[i].push(2); }";
        let l = lex(src);
        let nums: Vec<_> =
            l.toks.iter().filter(|t| t.kind == TokKind::Num).map(|t| t.text.clone()).collect();
        assert!(nums.contains(&"0".to_string()));
        assert!(nums.contains(&"10".to_string()));
        assert!(nums.contains(&"1.5e-3".to_string()));
        assert!(l.toks.iter().any(|t| t.text == "push"));
    }

    #[test]
    fn cfg_test_region_covers_mod_body() {
        let src = "\
fn real() { a.unwrap(); }\n\
#[cfg(test)]\n\
mod tests {\n\
    #[test]\n\
    fn t() { b.unwrap(); }\n\
}\n\
fn real2() {}\n";
        let l = lex(src);
        let regions = cfg_test_regions(&l.toks);
        assert_eq!(regions, vec![(2, 6)]);
        assert!(!in_regions(&regions, 1));
        assert!(in_regions(&regions, 5));
        assert!(!in_regions(&regions, 7));
    }

    #[test]
    fn cfg_test_region_handles_derive_attr_and_semicolon_items() {
        let src = "\
#[cfg(test)]\n\
#[derive(Debug)]\n\
struct T { x: u8 }\n\
#[cfg(test)]\n\
use std::collections::HashMap;\n\
fn real() {}\n";
        let l = lex(src);
        let regions = cfg_test_regions(&l.toks);
        assert_eq!(regions, vec![(1, 3), (4, 5)]);
        assert!(!in_regions(&regions, 6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        // Any cfg mentioning `test` is treated as a test region — including
        // not(test): both gate the code out of the production build, which
        // is the property the rules care about... except not(test) is the
        // OPPOSITE. Document the conservative choice: only attrs containing
        // the bare `test` ident count, and not(test) contains it too, so we
        // explicitly reject attrs that also contain `not`.
        let src = "#[cfg(not(test))]\nfn prod() { a.unwrap(); }\n";
        let l = lex(src);
        let regions = cfg_test_regions(&l.toks);
        assert!(regions.is_empty(), "not(test) code is production code: {regions:?}");
    }
}
