//! The call-graph analysis tier: lock-order, no-blocking-under-lock,
//! panic-reach, and wire-bytes-conservation (DESIGN.md §8).
//!
//! A single guard-scope walk per fn drives the first three rules: it
//! tracks which declared lock classes have a live guard at every call
//! site (brace-scoped, `drop()`-aware, statement temporaries die at
//! `;`), classifies acquisitions against the manifest, and consults the
//! transitive facts from [`crate::callgraph`] for anything it cannot
//! see directly. Wire-bytes conservation is a separate structural
//! cross-check of `wire_bytes()` match arms against encoder emit
//! sequences.

use std::collections::BTreeMap;

use crate::callgraph::{self, Graph};
use crate::config::Config;
use crate::diagnostics::Finding;
use crate::lexer::{self, Tok, TokKind};
use crate::manifest::Manifest;
use crate::parser::{Call, ParsedFile};

/// One observed lock acquisition while another class's guard is live.
struct LockEdge {
    from: String,
    to: String,
    path: String,
    line: u32,
    col: u32,
    /// Line the held guard was acquired on (for the message).
    held_line: u32,
}

fn enabled(only: Option<&[String]>, rule: &str) -> bool {
    only.map_or(true, |names| names.iter().any(|n| n == rule))
}

/// The audit tool does not analyze itself: its sources mention every
/// blocking/panicking name as *data*, which would poison the graph.
fn in_graph_scope(path: &str) -> bool {
    !crate::config::path_has_prefix(path, "crates/audit")
}

/// Runs all four graph rules over the parsed workspace.
pub fn run_all(
    files: &[ParsedFile],
    graph: &Graph<'_>,
    manifest: &Manifest,
    cfg: &Config,
    only: Option<&[String]>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut edges: Vec<LockEdge> = Vec::new();
    for (fi, pf) in files.iter().enumerate() {
        if !in_graph_scope(&pf.path) {
            continue;
        }
        walk_file(fi, pf, graph, manifest, cfg, only, &mut findings, &mut edges);
        if enabled(only, "panic-reach") && cfg.applies("panic-reach", &pf.path) {
            panic_sites(pf, manifest, &mut findings);
        }
    }
    if enabled(only, "lock-order") {
        lock_order_findings(&edges, manifest, &mut findings);
    }
    if enabled(only, "wire-bytes-conservation") {
        wire_bytes::run(files, cfg, &mut findings);
    }
    findings
}

// ---------------------------------------------------------------------------
// guard-scope walker

/// A live lock guard in some brace scope.
struct LiveGuard {
    class: String,
    /// Binding name if `let`-bound (killable by `drop(name)`); `None`
    /// for statement temporaries and pattern-bound guards.
    name: Option<String>,
    /// Statement temporary: dies at the next `;` in its scope.
    temp: bool,
    line: u32,
}

/// Walks one file's fns, emitting no-blocking-under-lock and the
/// call-site half of panic-reach, and collecting lock-order edges.
#[allow(clippy::too_many_arguments)]
fn walk_file(
    fi: usize,
    pf: &ParsedFile,
    graph: &Graph<'_>,
    manifest: &Manifest,
    cfg: &Config,
    only: Option<&[String]>,
    findings: &mut Vec<Finding>,
    edges: &mut Vec<LockEdge>,
) {
    let blocking_on = enabled(only, "no-blocking-under-lock")
        && cfg.applies("no-blocking-under-lock", &pf.path);
    let lock_on = enabled(only, "lock-order") && cfg.applies("lock-order", &pf.path);
    let reach_on = enabled(only, "panic-reach")
        && cfg.applies("panic-reach", &pf.path)
        && manifest.is_entry_file(&pf.path);
    let poller = manifest.is_poller_file(&pf.path);
    if !blocking_on && !lock_on && !reach_on {
        return;
    }
    let toks = &pf.lexed.toks;
    for (ni, f) in pf.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let Some((open, close)) = f.body else { continue };
        let call_at: BTreeMap<usize, &Call> = pf.calls[ni].iter().map(|c| (c.tok, c)).collect();
        let mut scopes: Vec<Vec<LiveGuard>> = vec![Vec::new()];
        let mut pending_let: Option<String> = None;
        let mut i = open + 1;
        while i < close {
            let t = &toks[i];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" => scopes.push(Vec::new()),
                    "}" => {
                        scopes.pop();
                        if scopes.is_empty() {
                            scopes.push(Vec::new()); // defensive: unbalanced
                        }
                    }
                    ";" => {
                        if let Some(top) = scopes.last_mut() {
                            top.retain(|g| !g.temp);
                        }
                        pending_let = None;
                    }
                    _ => {}
                }
                i += 1;
                continue;
            }
            if t.kind == TokKind::Ident && t.text == "let" {
                // `let [mut] name = …` — a guard acquired in this
                // statement binds to `name`. Destructuring patterns
                // leave the guard anonymous (conservatively live to
                // scope end, not killable by drop()).
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.kind == TokKind::Ident && t.text == "mut") {
                    j += 1;
                }
                if toks.get(j).is_some_and(|t| t.kind == TokKind::Ident)
                    && toks.get(j + 1).is_some_and(|t| is_punct(t, "="))
                    && !toks.get(j + 2).is_some_and(|t| is_punct(t, "=") || is_punct(t, ">"))
                {
                    pending_let = Some(toks[j].text.clone());
                }
                i += 1;
                continue;
            }
            let Some(&c) = call_at.get(&i).as_ref() else {
                i += 1;
                continue;
            };
            // `drop(name)` kills the most recent guard bound to `name`.
            if c.name == "drop"
                && !c.is_method
                && toks.get(c.args_open + 1).is_some_and(|t| t.kind == TokKind::Ident)
                && toks.get(c.args_open + 2).is_some_and(|t| is_punct(t, ")"))
            {
                let victim = &toks[c.args_open + 1].text;
                'kill: for scope in scopes.iter_mut().rev() {
                    for gi in (0..scope.len()).rev() {
                        if scope[gi].name.as_deref() == Some(victim) {
                            scope.remove(gi);
                            break 'kill;
                        }
                    }
                }
                i += 1;
                continue;
            }
            // Acquisition?
            if let Some(class) = manifest.classify(&c.name, c.is_method, &c.chain, &pf.path) {
                if lock_on {
                    for g in scopes.iter().flatten() {
                        edges.push(LockEdge {
                            from: g.class.clone(),
                            to: class.name.clone(),
                            path: pf.path.clone(),
                            line: c.line,
                            col: c.col,
                            held_line: g.line,
                        });
                    }
                }
                let name = pending_let.take();
                let temp = name.is_none();
                scopes
                    .last_mut()
                    .expect("scope stack never empty")
                    .push(LiveGuard { class: class.name.clone(), name, temp, line: c.line });
                i += 1;
                continue;
            }
            // Undeclared mutex: a `.lock()` that matches no manifest
            // class in a file the lock rules cover.
            if lock_on && c.name == "lock" && c.is_method {
                findings.push(Finding::new(
                    "lock-order",
                    &pf.path,
                    c.line,
                    c.col,
                    format!(
                        "mutex acquisition `{}.lock()` matches no declared class in \
                         audit-lock-order.toml — declare it (with a rank) before using it",
                        c.chain.first().map(String::as_str).unwrap_or("?")
                    ),
                ));
                i += 1;
                continue;
            }
            let narrow = narrow_type(c, &scopes, manifest, &pf.path);
            // A call through a guard of a generic-inner mutex (`let h =
            // self.lock()…; h.meth()`) can dispatch to any impl of the
            // guarded type — but never back to the wrapper impl the
            // caller lives in: the guard derefs *through* the mutex.
            let exclude = if narrow.is_none()
                && c.chain.len() == 1
                && scopes.iter().flatten().any(|g| {
                    g.name.as_deref() == Some(c.chain[0].as_str())
                        && manifest.class(&g.class).is_some_and(|cl| cl.inner.is_none())
                }) {
                f.impl_type.as_deref()
            } else {
                None
            };
            let held: Vec<&LiveGuard> = scopes
                .iter()
                .flatten()
                .filter(|g| !manifest.class(&g.class).is_some_and(|c| c.allow_blocking))
                .collect();
            // no-blocking-under-lock: direct, then transitive.
            if blocking_on && !held.is_empty() && !callgraph::is_condvar_wait(&c.name) {
                let g = held.last().expect("nonempty");
                if callgraph::is_blocking_name(&c.name) {
                    findings.push(Finding::new(
                        "no-blocking-under-lock",
                        &pf.path,
                        c.line,
                        c.col,
                        format!(
                            "blocking call `{}` while a `{}` guard (acquired line {}) is live",
                            c.name, g.class, g.line
                        ),
                    ));
                } else if let Some((tf, tn)) = graph
                    .resolve(c, (fi, ni), narrow.as_deref(), exclude)
                    .into_iter()
                    .find(|&id| graph.fact(id).may_block)
                {
                    let fact = graph.fact((tf, tn));
                    findings.push(Finding::new(
                        "no-blocking-under-lock",
                        &pf.path,
                        c.line,
                        c.col,
                        format!(
                            "`{}` may block ({}) while a `{}` guard (acquired line {}) is live",
                            c.name,
                            fact.block_witness.as_deref().unwrap_or("transitively"),
                            g.class,
                            g.line
                        ),
                    ));
                }
            }
            // Poller scope: parking calls are banned outright.
            if blocking_on && poller && !manifest.poller_allows(&c.name, &c.chain) {
                if callgraph::HARD_BLOCKING_CALLS.contains(&c.name.as_str()) {
                    findings.push(Finding::new(
                        "no-blocking-under-lock",
                        &pf.path,
                        c.line,
                        c.col,
                        format!("parking call `{}` on the event-loop poller thread", c.name),
                    ));
                } else if let Some(id) = graph
                    .resolve(c, (fi, ni), narrow.as_deref(), exclude)
                    .into_iter()
                    .find(|&id| graph.fact(id).may_hard_block)
                {
                    let fact = graph.fact(id);
                    findings.push(Finding::new(
                        "no-blocking-under-lock",
                        &pf.path,
                        c.line,
                        c.col,
                        format!(
                            "`{}` may park the event-loop poller thread ({})",
                            c.name,
                            fact.hard_witness.as_deref().unwrap_or("transitively")
                        ),
                    ));
                }
            }
            // Transitive lock-order edges through the callee.
            if lock_on && scopes.iter().flatten().next().is_some() {
                let mut seen: Vec<&str> = Vec::new();
                for id in graph.resolve(c, (fi, ni), narrow.as_deref(), exclude) {
                    for a in &graph.fact(id).acquires {
                        if seen.contains(&a.as_str()) {
                            continue;
                        }
                        seen.push(a);
                        for g in scopes.iter().flatten() {
                            edges.push(LockEdge {
                                from: g.class.clone(),
                                to: a.clone(),
                                path: pf.path.clone(),
                                line: c.line,
                                col: c.col,
                                held_line: g.line,
                            });
                        }
                    }
                }
            }
            // panic-reach: a call leaving the entry-file set for a fn
            // that may panic.
            if reach_on && !c.under_barrier {
                if let Some(id) = graph
                    .resolve(c, (fi, ni), narrow.as_deref(), exclude)
                    .into_iter()
                    .find(|&(tf, tn)| {
                        !manifest.is_entry_file(&graph.files[tf].path)
                            && graph.fact((tf, tn)).may_panic
                    })
                {
                    let fact = graph.fact(id);
                    findings.push(Finding::new(
                        "panic-reach",
                        &pf.path,
                        c.line,
                        c.col,
                        format!(
                            "wire-path call `{}` can reach a panic ({}) — contain it or return an error",
                            c.name,
                            fact.panic_witness.as_deref().unwrap_or("transitively")
                        ),
                    ));
                }
            }
            i += 1;
        }
    }
}

fn is_punct(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

/// Guard-typed narrowing: if a method call's receiver is a lock guard
/// whose class declares `inner`, resolution is restricted to
/// `impl inner` fns. Two shapes: a call directly on a named live guard
/// (`guard.meth()`), or a call chained onto the acquisition itself
/// (`self.lock_shard(i).meth()`, `self.front.lock().unwrap().meth()` —
/// `unwrap`/`expect` hops are tolerated).
fn narrow_type(
    c: &Call,
    scopes: &[Vec<LiveGuard>],
    manifest: &Manifest,
    path: &str,
) -> Option<String> {
    if !c.is_method || c.chain.is_empty() {
        return None;
    }
    if c.chain.len() == 1 {
        for g in scopes.iter().flatten().rev() {
            if g.name.as_deref() == Some(c.chain[0].as_str()) {
                return manifest.class(&g.class).and_then(|cl| cl.inner.clone());
            }
        }
    }
    for (j, hop) in c.chain.iter().enumerate() {
        // Only unwrap/expect hops may sit between the call and the
        // acquisition for the narrowing to be sound.
        if c.chain[..j].iter().any(|h| !matches!(h.as_str(), "unwrap" | "expect")) {
            break;
        }
        if let Some(cl) = manifest.classify(hop, true, &c.chain[j + 1..], path) {
            return cl.inner.clone();
        }
        if let Some(cl) = manifest.classify(hop, false, &[], path) {
            return cl.inner.clone();
        }
    }
    None
}

// ---------------------------------------------------------------------------
// lock-order: edges → cycles (unwaivable) + rank violations

fn lock_order_findings(edges: &[LockEdge], manifest: &Manifest, findings: &mut Vec<Finding>) {
    // Dedup edges per (from, to, site) — loops revisit the same site.
    let mut seen: Vec<(&str, &str, &str, u32)> = Vec::new();
    let mut uniq: Vec<&LockEdge> = Vec::new();
    for e in edges {
        let key = (e.from.as_str(), e.to.as_str(), e.path.as_str(), e.line);
        if !seen.contains(&key) {
            seen.push(key);
            uniq.push(e);
        }
    }
    // Class-level adjacency for cycle detection.
    let mut adj: Vec<(String, String)> = Vec::new();
    for e in &uniq {
        let pair = (e.from.clone(), e.to.clone());
        if !adj.contains(&pair) {
            adj.push(pair);
        }
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut stack = vec![from.to_string()];
        let mut visited: Vec<String> = Vec::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if visited.contains(&n) {
                continue;
            }
            visited.push(n.clone());
            for (a, b) in &adj {
                if *a == n {
                    stack.push(b.clone());
                }
            }
        }
        false
    };
    for e in &uniq {
        // A cycle: the acquired class reaches back to the held class
        // (self-edges included). Unwaivable by construction.
        if e.to == e.from || reaches(&e.to, &e.from) {
            findings.push(Finding::unwaivable(
                "lock-order",
                &e.path,
                e.line,
                e.col,
                if e.to == e.from {
                    format!(
                        "lock-order cycle: re-acquiring `{}` while a `{}` guard (line {}) is \
                         already live — deadlock on the same thread",
                        e.to, e.from, e.held_line
                    )
                } else {
                    format!(
                        "lock-order cycle: acquiring `{}` while `{}` is held (line {}), but \
                         `{}` also reaches `{}` — two threads can deadlock",
                        e.to, e.from, e.held_line, e.to, e.from
                    )
                },
            ));
            continue;
        }
        match (manifest.rank_of(&e.from), manifest.rank_of(&e.to)) {
            (Some(rf), Some(rt)) if rf < rt => {}
            (Some(_), Some(_)) => findings.push(Finding::new(
                "lock-order",
                &e.path,
                e.line,
                e.col,
                format!(
                    "acquiring `{}` while `{}` is held (line {}) violates the declared order \
                     in audit-lock-order.toml ({} must be taken before {})",
                    e.to, e.from, e.held_line, e.to, e.from
                ),
            )),
            // classify() only returns declared classes; ranks exist.
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// panic-reach: in-file sites (subscripts, asserts) on entry files

fn panic_sites(pf: &ParsedFile, manifest: &Manifest, findings: &mut Vec<Finding>) {
    if !manifest.is_entry_file(&pf.path) {
        return;
    }
    for (ni, f) in pf.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        for s in &pf.subscripts[ni] {
            if !s.under_barrier && !lexer::in_regions(&pf.test_regions, s.line) {
                findings.push(Finding::new(
                    "panic-reach",
                    &pf.path,
                    s.line,
                    s.col,
                    "indexing can panic on the wire path — use get()/split-checked access \
                     and return a protocol error"
                        .to_string(),
                ));
            }
        }
        for p in &pf.panics[ni] {
            if p.under_barrier || !p.what.ends_with('!') {
                continue; // unwrap/expect are no-panic-io's findings
            }
            if matches!(p.what.as_str(), "assert!" | "assert_eq!" | "assert_ne!") {
                findings.push(Finding::new(
                    "panic-reach",
                    &pf.path,
                    p.line,
                    p.col,
                    format!(
                        "`{}` on the wire path panics on malformed input — return a \
                         protocol error instead",
                        p.what
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// wire-bytes-conservation

mod wire_bytes {
    use super::*;
    use crate::parser::parse_int;

    /// One accounting atom: a per-element cost, a delegated sub-count,
    /// or a fixed byte count.
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
    enum Atom {
        /// `N * xs.len()` on the wire side; `put_f32s` on the encoder side.
        Elem(u64),
        /// `x.wire_bytes()` ↔ `put_sparse`/`put_ternary`.
        Delegate,
    }

    /// Parsed match arm: variant name plus its expression token range.
    struct Arm {
        enum_name: String,
        variant: String,
        expr: (usize, usize),
        line: u32,
    }

    /// Encoder emitters and their fixed cost; `None` cost = delegate.
    const EMITTERS: &[(&str, Option<u64>)] = &[
        ("put_f32s", None), // special-cased: Elem(4)
        ("put_sparse", None),
        ("put_ternary", None),
        ("put_u8", Some(1)),
        ("put_u16", Some(2)),
        ("put_u32", Some(4)),
        ("put_u64", Some(8)),
        ("put_f32", Some(4)),
        ("put_f64", Some(8)),
    ];

    /// Raw-buffer calls inside an encoder arm that bypass the costed
    /// emitters — each is unaccounted wire traffic.
    const RAW_EMITTERS: &[&str] = &["extend_from_slice", "extend", "push", "append"];

    pub fn run(files: &[ParsedFile], cfg: &Config, findings: &mut Vec<Finding>) {
        let scoped: Vec<&ParsedFile> = files
            .iter()
            .filter(|pf| cfg.applies("wire-bytes-conservation", &pf.path))
            .collect();
        // Global const table (folded per file; cross-file by name).
        let mut consts: Vec<(&str, u64)> = Vec::new();
        for pf in files {
            for (n, v) in &pf.consts {
                consts.push((n.as_str(), *v));
            }
        }
        // wire_bytes() impls with match bodies, keyed by self type.
        struct WireSide<'a> {
            pf: &'a ParsedFile,
            enum_name: String,
            fn_line: u32,
            arms: Vec<Arm>,
        }
        let mut wires: Vec<WireSide<'_>> = Vec::new();
        for pf in &scoped {
            for f in &pf.fns {
                if f.in_test || f.name != "wire_bytes" {
                    continue;
                }
                let Some((open, close)) = f.body else { continue };
                let arms = match_arms(&pf.lexed.toks, open, close);
                if arms.is_empty() {
                    continue; // single-expression accounting: out of scope
                }
                let enum_name = f
                    .impl_type
                    .clone()
                    .or_else(|| arms.first().map(|a| a.enum_name.clone()));
                if let Some(enum_name) = enum_name {
                    wires.push(WireSide { pf, enum_name, fn_line: f.line, arms });
                }
            }
        }
        for w in &wires {
            // Find encoder arms for this enum anywhere in scope.
            let mut enc: Option<(&ParsedFile, &str, u32, Vec<Arm>)> = None;
            for pf in &scoped {
                for f in &pf.fns {
                    if f.in_test || !f.name.starts_with("encode_") {
                        continue;
                    }
                    let Some((open, close)) = f.body else { continue };
                    let arms: Vec<Arm> = match_arms(&pf.lexed.toks, open, close)
                        .into_iter()
                        .filter(|a| a.enum_name == w.enum_name)
                        .collect();
                    if !arms.is_empty() {
                        enc = Some((pf, f.name.as_str(), f.line, arms));
                    }
                }
            }
            let Some((epf, ename, _eline, earms)) = enc else {
                findings.push(Finding::new(
                    "wire-bytes-conservation",
                    &w.pf.path,
                    w.fn_line,
                    1,
                    format!(
                        "`{}::wire_bytes` has no encoder match to cross-check against \
                         (no `encode_*` fn matches on `{}`)",
                        w.enum_name, w.enum_name
                    ),
                ));
                continue;
            };
            // Variant-by-variant comparison.
            for wa in &w.arms {
                let Some(ea) = earms.iter().find(|a| a.variant == wa.variant) else {
                    findings.push(Finding::new(
                        "wire-bytes-conservation",
                        &w.pf.path,
                        wa.line,
                        1,
                        format!(
                            "`{}::{}` is costed in wire_bytes but `{}` has no arm \
                             encoding it",
                            w.enum_name, wa.variant, ename
                        ),
                    ));
                    continue;
                };
                let (mut watoms, wconst) =
                    wire_arm_atoms(&w.pf.lexed.toks, wa, &consts, &w.pf.path, findings);
                let (mut eatoms, econst) =
                    encoder_arm_atoms(&epf.lexed.toks, ea, &epf.path, findings);
                watoms.sort();
                eatoms.sort();
                if watoms != eatoms || wconst != econst {
                    findings.push(Finding::new(
                        "wire-bytes-conservation",
                        &w.pf.path,
                        wa.line,
                        1,
                        format!(
                            "`{}::{}`: wire_bytes accounts {} but `{}` emits {}",
                            w.enum_name,
                            wa.variant,
                            describe(&watoms, wconst),
                            ename,
                            describe(&eatoms, econst)
                        ),
                    ));
                }
            }
            for ea in &earms {
                if !w.arms.iter().any(|a| a.variant == ea.variant) {
                    findings.push(Finding::new(
                        "wire-bytes-conservation",
                        &epf.path,
                        ea.line,
                        1,
                        format!(
                            "`{}` encodes `{}::{}` but wire_bytes has no arm costing it",
                            ename, w.enum_name, ea.variant
                        ),
                    ));
                }
            }
            // Enum completeness: every declared variant must be costed.
            for pf in &scoped {
                for e in &pf.enums {
                    if e.name != w.enum_name {
                        continue;
                    }
                    for (v, vline) in &e.variants {
                        if !w.arms.iter().any(|a| &a.variant == v) {
                            findings.push(Finding::new(
                                "wire-bytes-conservation",
                                &pf.path,
                                *vline,
                                1,
                                format!(
                                    "variant `{}::{v}` is not costed by wire_bytes — \
                                     its traffic would be invisible to the byte counters",
                                    w.enum_name
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }

    fn describe(atoms: &[Atom], fixed: u64) -> String {
        let elems: Vec<String> = atoms
            .iter()
            .map(|a| match a {
                Atom::Elem(n) => format!("{n}B/elem"),
                Atom::Delegate => "a delegated sub-encoding".to_string(),
            })
            .collect();
        if elems.is_empty() {
            format!("{fixed} fixed bytes")
        } else if fixed == 0 {
            elems.join(" + ")
        } else {
            format!("{} + {fixed} fixed bytes", elems.join(" + "))
        }
    }

    /// Extracts `Enum::Variant => expr` arms from every `match` in a
    /// body range. Wildcard and non-path arms are skipped.
    fn match_arms(toks: &[Tok], open: usize, close: usize) -> Vec<Arm> {
        let mut out = Vec::new();
        let mut i = open + 1;
        while i < close {
            if !(toks[i].kind == TokKind::Ident && toks[i].text == "match") {
                i += 1;
                continue;
            }
            // Scrutinee runs to the first `{` at depth 0.
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < close {
                match (toks[j].kind, toks[j].text.as_str()) {
                    (TokKind::Punct, "(") | (TokKind::Punct, "[") => depth += 1,
                    (TokKind::Punct, ")") | (TokKind::Punct, "]") => depth -= 1,
                    (TokKind::Punct, "{") if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if j >= close {
                break;
            }
            let mopen = j;
            let mclose = lexer::matching_close(toks, mopen, "{", "}");
            let mut k = mopen + 1;
            while k < mclose {
                // Pattern until `=>` at depth 0.
                let pstart = k;
                let mut depth = 0i32;
                let mut arrow = None;
                while k < mclose {
                    let t = &toks[k];
                    if t.kind == TokKind::Punct {
                        match t.text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth -= 1,
                            "=" if depth == 0
                                && toks.get(k + 1).is_some_and(|n| {
                                    n.kind == TokKind::Punct && n.text == ">"
                                }) =>
                            {
                                arrow = Some(k);
                                break;
                            }
                            _ => {}
                        }
                    }
                    k += 1;
                }
                let Some(arrow) = arrow else { break };
                // Expression: a block, or tokens to the `,` at depth 0.
                let estart = arrow + 2;
                let eend;
                if toks.get(estart).is_some_and(|t| is_punct(t, "{")) {
                    eend = lexer::matching_close(toks, estart, "{", "}") + 1;
                    k = eend;
                    if toks.get(k).is_some_and(|t| is_punct(t, ",")) {
                        k += 1;
                    }
                } else {
                    let mut depth = 0i32;
                    let mut m = estart;
                    while m < mclose {
                        let t = &toks[m];
                        if t.kind == TokKind::Punct {
                            match t.text.as_str() {
                                "(" | "[" | "{" => depth += 1,
                                ")" | "]" | "}" => depth -= 1,
                                "," if depth == 0 => break,
                                _ => {}
                            }
                        }
                        m += 1;
                    }
                    eend = m;
                    k = m + 1;
                }
                // Pattern path: first `Ident :: Ident` sequence.
                let mut path = None;
                for p in pstart..arrow.saturating_sub(1) {
                    if toks[p].kind == TokKind::Ident
                        && toks.get(p + 1).is_some_and(|t| is_punct(t, ":"))
                        && toks.get(p + 2).is_some_and(|t| is_punct(t, ":"))
                        && toks.get(p + 3).is_some_and(|t| t.kind == TokKind::Ident)
                    {
                        path = Some((toks[p].text.clone(), toks[p + 3].text.clone()));
                        break;
                    }
                }
                if let Some((enum_name, variant)) = path {
                    out.push(Arm {
                        enum_name,
                        variant,
                        expr: (estart, eend),
                        line: toks[pstart].line,
                    });
                }
            }
            i = mclose + 1;
        }
        out
    }

    /// Atoms of a wire_bytes arm: top-level `+` terms classified as
    /// per-element costs, delegates, overhead consts (`*_BYTES`,
    /// dropped — the frame layer charges them), or fixed-field consts.
    fn wire_arm_atoms(
        toks: &[Tok],
        arm: &Arm,
        consts: &[(&str, u64)],
        path: &str,
        findings: &mut Vec<Finding>,
    ) -> (Vec<Atom>, u64) {
        let mut atoms = Vec::new();
        let mut fixed = 0u64;
        let (start, end) = arm.expr;
        let mut term_start = start;
        let mut depth = 0i32;
        let mut i = start;
        while i <= end {
            let at_end = i == end;
            let t = if at_end { None } else { Some(&toks[i]) };
            let split = at_end
                || t.is_some_and(|t| t.kind == TokKind::Punct && t.text == "+" && depth == 0);
            if let Some(t) = t {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        _ => {}
                    }
                }
            }
            if split {
                let term = &toks[term_start..i];
                classify_wire_term(term, arm, consts, path, &mut atoms, &mut fixed, findings);
                term_start = i + 1;
            }
            if at_end {
                break;
            }
            i += 1;
        }
        (atoms, fixed)
    }

    fn classify_wire_term(
        term: &[Tok],
        arm: &Arm,
        consts: &[(&str, u64)],
        path: &str,
        atoms: &mut Vec<Atom>,
        fixed: &mut u64,
        findings: &mut Vec<Finding>,
    ) {
        if term.is_empty() {
            return;
        }
        let line = term[0].line;
        if term.iter().any(|t| t.kind == TokKind::Ident && t.text == "wire_bytes") {
            atoms.push(Atom::Delegate);
            return;
        }
        if term.iter().any(|t| t.kind == TokKind::Ident && t.text == "len") {
            let n = term
                .iter()
                .find(|t| t.kind == TokKind::Num)
                .and_then(|t| parse_int(&t.text))
                .unwrap_or(1);
            atoms.push(Atom::Elem(n));
            return;
        }
        if term.len() == 1 && term[0].kind == TokKind::Num {
            findings.push(Finding::new(
                "wire-bytes-conservation",
                path,
                line,
                term[0].col,
                format!(
                    "bare byte count `{}` in `{}::{}` wire accounting — name it as a const \
                     so the encoder cross-check can see it",
                    term[0].text, arm.enum_name, arm.variant
                ),
            ));
            *fixed += parse_int(&term[0].text).unwrap_or(0);
            return;
        }
        if term.len() == 1 && term[0].kind == TokKind::Ident {
            let name = term[0].text.as_str();
            match consts.iter().find(|(n, _)| *n == name) {
                Some((_, v)) => {
                    if name.ends_with("_BYTES") {
                        // Declared frame/prefix overhead: charged by the
                        // frame layer, not the payload encoder.
                    } else {
                        *fixed += *v;
                    }
                }
                None => findings.push(Finding::new(
                    "wire-bytes-conservation",
                    path,
                    line,
                    term[0].col,
                    format!(
                        "const `{name}` in `{}::{}` wire accounting does not resolve to an \
                         integer — the conservation check cannot verify it",
                        arm.enum_name, arm.variant
                    ),
                )),
            }
            return;
        }
        findings.push(Finding::new(
            "wire-bytes-conservation",
            path,
            line,
            term[0].col,
            format!(
                "unrecognized term in `{}::{}` wire accounting — use `<const>`, \
                 `N * xs.len()`, or `x.wire_bytes()` so bytes stay auditable",
                arm.enum_name, arm.variant
            ),
        ));
    }

    /// Atoms of an encoder arm: the costed `put_*` emitters in call
    /// order; raw buffer writes are unaccounted traffic.
    fn encoder_arm_atoms(
        toks: &[Tok],
        arm: &Arm,
        path: &str,
        findings: &mut Vec<Finding>,
    ) -> (Vec<Atom>, u64) {
        let mut atoms = Vec::new();
        let mut fixed = 0u64;
        let (start, end) = arm.expr;
        for i in start..end.min(toks.len()) {
            let t = &toks[i];
            if t.kind != TokKind::Ident
                || !toks.get(i + 1).is_some_and(|n| is_punct(n, "("))
            {
                continue;
            }
            let name = t.text.as_str();
            if name == "put_f32s" {
                atoms.push(Atom::Elem(4));
            } else if let Some((_, cost)) = EMITTERS.iter().find(|(n, _)| *n == name) {
                match cost {
                    Some(c) => fixed += c,
                    None => atoms.push(Atom::Delegate),
                }
            } else if RAW_EMITTERS.contains(&name) {
                findings.push(Finding::new(
                    "wire-bytes-conservation",
                    path,
                    t.line,
                    t.col,
                    format!(
                        "raw buffer write `{name}` in the `{}::{}` encoder arm bypasses the \
                         costed emitters — wire_bytes cannot account for it",
                        arm.enum_name, arm.variant
                    ),
                ));
            }
        }
        (atoms, fixed)
    }
}
