//! Inline waiver comments: `// dgs::allow(<rule>): <justification>`.
//!
//! A waiver on the same line as a finding, or on the line directly above
//! it, suppresses that finding. Every waiver must carry a non-empty
//! justification and must actually suppress something — malformed,
//! unknown-rule, and unused waivers are themselves findings (rule
//! `waiver`), so the waiver list can never silently rot.

use crate::lexer::Comment;

/// A parsed, well-formed waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule name inside `dgs::allow(...)`.
    pub rule: String,
    /// 1-based line the waiver comment starts on.
    pub line: u32,
    /// Set once a finding is suppressed by this waiver.
    pub used: bool,
}

/// Result of scanning a file's comments for waivers.
#[derive(Debug, Default)]
pub struct WaiverSet {
    /// Well-formed waivers, in source order.
    pub waivers: Vec<Waiver>,
    /// Problems found while parsing: `(line, message)`.
    pub problems: Vec<(u32, String)>,
}

const MARKER: &str = "dgs::allow(";

/// Extracts waivers from lexed comments. `known_rules` validates the rule
/// name so a typo (`dgs::allow(nan-odering)`) cannot silently waive nothing.
pub fn collect(comments: &[Comment], known_rules: &[&str]) -> WaiverSet {
    let mut set = WaiverSet::default();
    for c in comments {
        // Only comments that *start* with the marker are waivers; prose
        // that merely mentions the syntax (docs, DESIGN quotes) is not.
        let Some(rest) = c.text.trim_start().strip_prefix(MARKER) else { continue };
        let Some(close) = rest.find(')') else {
            set.problems.push((c.line, "malformed waiver: missing ')'".to_string()));
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !known_rules.contains(&rule.as_str()) {
            set.problems.push((c.line, format!("waiver names unknown rule `{rule}`")));
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let justification = after.strip_prefix(':').map(str::trim_start).unwrap_or("");
        if justification.is_empty() {
            set.problems.push((
                c.line,
                format!("waiver for `{rule}` has no justification (expected `dgs::allow({rule}): why`)"),
            ));
            continue;
        }
        set.waivers.push(Waiver { rule, line: c.line, used: false });
    }
    set
}

impl WaiverSet {
    /// Attempts to waive a finding of `rule` at `line`. A waiver applies
    /// from its own line or the line directly above. Marks the waiver used.
    pub fn try_waive(&mut self, rule: &str, line: u32) -> bool {
        for w in &mut self.waivers {
            if w.rule == rule && (w.line == line || w.line + 1 == line) {
                w.used = true;
                return true;
            }
        }
        false
    }

    /// Unused waivers after all rules ran: `(line, rule)`.
    pub fn unused(&self) -> impl Iterator<Item = (u32, &str)> {
        self.waivers.iter().filter(|w| !w.used).map(|w| (w.line, w.rule.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["nan-ordering", "no-panic-io"];

    fn comment(text: &str, line: u32) -> Comment {
        Comment { text: text.to_string(), line }
    }

    #[test]
    fn parses_valid_waiver() {
        let set = collect(&[comment("dgs::allow(no-panic-io): socket already validated", 7)], RULES);
        assert!(set.problems.is_empty());
        assert_eq!(set.waivers.len(), 1);
        assert_eq!(set.waivers[0].rule, "no-panic-io");
        assert_eq!(set.waivers[0].line, 7);
    }

    #[test]
    fn waiver_applies_same_line_and_line_above_only() {
        let mut set = collect(&[comment("dgs::allow(no-panic-io): reason", 10)], RULES);
        assert!(!set.try_waive("no-panic-io", 9));
        assert!(!set.try_waive("no-panic-io", 12));
        assert!(!set.try_waive("nan-ordering", 10));
        assert!(set.try_waive("no-panic-io", 11));
        assert_eq!(set.unused().count(), 0);
    }

    #[test]
    fn empty_justification_is_a_problem() {
        let set = collect(&[comment("dgs::allow(no-panic-io):", 3), comment("dgs::allow(no-panic-io)", 4)], RULES);
        assert_eq!(set.problems.len(), 2);
        assert!(set.waivers.is_empty());
    }

    #[test]
    fn unknown_rule_and_missing_paren_are_problems() {
        let set = collect(&[comment("dgs::allow(nan-odering): typo", 1), comment("dgs::allow(oops", 2)], RULES);
        assert_eq!(set.problems.len(), 2);
        assert!(set.problems[0].1.contains("unknown rule"));
        assert!(set.problems[1].1.contains("missing ')'"));
    }

    #[test]
    fn unused_waivers_surface() {
        let set = collect(&[comment("dgs::allow(nan-ordering): never matched", 5)], RULES);
        let unused: Vec<_> = set.unused().collect();
        assert_eq!(unused, vec![(5, "nan-ordering")]);
    }
}
