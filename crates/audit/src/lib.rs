//! `dgs-audit`: repo-specific static analysis for the DGS invariants.
//!
//! Std-only and dependency-free by design: the container this repo is
//! verified in cannot reach a cargo registry, so the audit must build
//! with bare `rustc` (see `.claude/skills/verify/SKILL.md`). The lexer
//! is hand-rolled ([`lexer`]), the token-level rules live in [`rules`],
//! scoping is per-path ([`config`]), and findings can be suppressed by
//! justified inline waiver comments ([`waivers`]).
//!
//! On top of the per-line tier sits a cross-file call-graph tier: a
//! lightweight item parser ([`parser`]) feeds a workspace call graph
//! ([`callgraph`]) that powers the lock-discipline, panic-reachability,
//! and wire-accounting rules ([`graph_rules`]), driven by the declared
//! mutex manifest `audit-lock-order.toml` ([`manifest`]).
//!
//! Rule catalogue and rationale: DESIGN.md §8.

pub mod callgraph;
pub mod config;
pub mod diagnostics;
pub mod graph_rules;
pub mod lexer;
pub mod manifest;
pub mod parser;
pub mod rules;
pub mod waivers;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use config::Config;
use diagnostics::Finding;

/// Audits a set of files as one workspace: per-file token rules, then
/// the cross-file graph rules, then per-file waiver application.
///
/// Returns *every* finding — waived ones carry `waived: true` rather
/// than being dropped, so `--json` and the waiver accounting can see
/// them. Findings a waiver cannot suppress (`waivable: false`, i.e.
/// lock-order cycles) ignore waiver comments entirely, which in turn
/// leaves those waivers flagged as unused.
pub fn check_files(
    files: &[(String, String)],
    cfg: &Config,
    only: Option<&[String]>,
) -> Vec<Finding> {
    let parsed: Vec<parser::ParsedFile> = files
        .iter()
        .map(|(path, text)| parser::parse(path, lexer::lex(text), &cfg.manifest.barriers))
        .collect();
    let mut findings = Vec::new();
    for pf in &parsed {
        findings.extend(rules::run_all(&pf.path, &pf.lexed, cfg, only));
    }
    let graph = callgraph::Graph::build(&parsed, &cfg.manifest);
    findings.extend(graph_rules::run_all(&parsed, &graph, &cfg.manifest, cfg, only));
    let waiver_hygiene = only.map_or(true, |names| names.iter().any(|n| n == "waiver"));
    for pf in &parsed {
        let mut wset = waivers::collect(&pf.lexed.comments, config::RULES);
        for f in findings.iter_mut().filter(|f| f.path == pf.path) {
            if f.waivable && wset.try_waive(&f.rule, f.line) {
                f.waived = true;
            }
        }
        if waiver_hygiene {
            for (line, msg) in &wset.problems {
                findings.push(Finding::new("waiver", &pf.path, *line, 1, msg.clone()));
            }
            for (line, rule) in wset.unused() {
                findings.push(Finding::new(
                    "waiver",
                    &pf.path,
                    line,
                    1,
                    format!("unused waiver for `{rule}`: nothing on this or the next line trips it"),
                ));
            }
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    findings
}

/// Audits one file's source text. `rel_path` is the `/`-separated
/// workspace-relative path used for rule scoping and diagnostics.
/// `only` optionally restricts the rule set (waiver-hygiene findings are
/// emitted only when unrestricted or when `only` includes `"waiver"`).
///
/// The file is treated as a one-file workspace, so the graph rules see
/// only what the file itself defines — golden fixtures stay
/// self-contained. Waived findings are dropped (the historical
/// contract); use [`check_files`] to observe them.
pub fn check_source(
    rel_path: &str,
    src: &str,
    cfg: &Config,
    only: Option<&[String]>,
) -> Vec<Finding> {
    let mut findings =
        check_files(&[(rel_path.to_string(), src.to_string())], cfg, only);
    findings.retain(|f| !f.waived);
    findings
}

/// Audits the workspace rooted at `root`: `src/` plus every
/// `crates/*/src/` tree, in sorted order for deterministic output.
/// Fixture files under `tests/` are deliberately out of scope — they
/// exist to trip the rules. Returns all findings, waived included.
pub fn check_workspace(
    root: &Path,
    cfg: &Config,
    only: Option<&[String]>,
) -> io::Result<Vec<Finding>> {
    let mut files: Vec<PathBuf> = Vec::new();
    let src = root.join("src");
    if src.is_dir() {
        collect_rs_files(&src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<PathBuf> =
            fs::read_dir(&crates)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let crate_src = dir.join("src");
            if crate_src.is_dir() {
                collect_rs_files(&crate_src, &mut files)?;
            }
        }
    }
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for file in &files {
        sources.push((rel_path_str(root, file), fs::read_to_string(file)?));
    }
    Ok(check_files(&sources, cfg, only))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative `/`-separated path for diagnostics and scoping.
fn rel_path_str(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let parts: Vec<String> =
        rel.components().map(|c| c.as_os_str().to_string_lossy().into_owned()).collect();
    parts.join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waived_finding_is_suppressed_and_waiver_counts_as_used() {
        let cfg = Config::default_for_workspace();
        let src = "fn f(x: Option<u8>) {\n\
                   // dgs::allow(no-panic-io): channel sender cannot outlive receiver here\n\
                   x.unwrap();\n\
                   }\n";
        let f = check_source("crates/net/src/tcp.rs", src, &cfg, None);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unused_waiver_is_a_finding() {
        let cfg = Config::default_for_workspace();
        let src = "// dgs::allow(no-panic-io): stale reason\nfn f() {}\n";
        let f = check_source("crates/net/src/tcp.rs", src, &cfg, None);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "waiver");
        assert!(f[0].message.contains("unused"));
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_suppress() {
        let cfg = Config::default_for_workspace();
        let src = "fn f(x: Option<u8>) {\n\
                   // dgs::allow(nan-ordering): wrong rule name for this site\n\
                   x.unwrap();\n\
                   }\n";
        let f = check_source("crates/net/src/tcp.rs", src, &cfg, None);
        // The unwrap still fires AND the waiver is unused.
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.rule == "no-panic-io"));
        assert!(f.iter().any(|x| x.rule == "waiver"));
    }

    #[test]
    fn findings_sorted_by_position() {
        let cfg = Config::default_for_workspace();
        let src = "fn b(x: Option<u8>) { x.unwrap(); }\nfn a(y: Option<u8>) { y.expect(\"y\"); }\n";
        let f = check_source("crates/net/src/transport.rs", src, &cfg, None);
        assert_eq!(f.len(), 2);
        assert!(f[0].line < f[1].line);
    }

    #[test]
    fn check_files_keeps_waived_findings_for_json() {
        let cfg = Config::default_for_workspace();
        let src = "fn f(x: Option<u8>) {\n\
                   // dgs::allow(no-panic-io): poisoned lock is already a crashed sibling\n\
                   x.unwrap();\n\
                   }\n";
        let f = check_files(
            &[("crates/net/src/tcp.rs".to_string(), src.to_string())],
            &cfg,
            None,
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].waived);
        assert_eq!(f[0].rule, "no-panic-io");
    }

    #[test]
    fn waiver_cannot_suppress_a_lock_cycle_and_is_flagged_unused() {
        let cfg = Config::default_for_workspace();
        // Re-acquiring `front` under itself is a self-cycle; the waiver
        // must not stick, and is then reported as unused.
        let src = "impl S {\n\
                   fn f(&self) {\n\
                   let g = self.front.lock().unwrap();\n\
                   // dgs::allow(lock-order): pretend this is fine\n\
                   let h = self.front.lock().unwrap();\n\
                   let _ = (g, h);\n\
                   }\n\
                   }\n";
        let f = check_files(
            &[("crates/core/src/shard.rs".to_string(), src.to_string())],
            &cfg,
            Some(&["lock-order".to_string(), "waiver".to_string()]),
        );
        assert!(
            f.iter().any(|x| x.rule == "lock-order" && !x.waived && !x.waivable),
            "{f:?}"
        );
        assert!(f.iter().any(|x| x.rule == "waiver" && x.message.contains("unused")), "{f:?}");
    }

    #[test]
    fn cross_file_graph_connects_the_workspace() {
        let cfg = Config::default_for_workspace();
        // Blocking call lives in another file; the guard is held here.
        let a = "impl S {\n\
                 fn f(&self) {\n\
                 let g = self.front.lock().unwrap();\n\
                 ship(&g);\n\
                 }\n\
                 }\n";
        let b = "pub fn ship(g: &Front) { g.sock.write_all(b\"x\").ok(); }\n";
        let f = check_files(
            &[
                ("crates/core/src/shard.rs".to_string(), a.to_string()),
                ("crates/net/src/helper.rs".to_string(), b.to_string()),
            ],
            &cfg,
            Some(&["no-blocking-under-lock".to_string()]),
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].path, "crates/core/src/shard.rs");
        assert!(f[0].message.contains("write_all"), "{}", f[0].message);
    }
}
