//! `dgs-audit`: repo-specific static analysis for the DGS invariants.
//!
//! Std-only and dependency-free by design: the container this repo is
//! verified in cannot reach a cargo registry, so the audit must build
//! with bare `rustc` (see `.claude/skills/verify/SKILL.md`). The lexer
//! is hand-rolled ([`lexer`]), the rules are token-level ([`rules`]),
//! scoping is per-path ([`config`]), and findings can be suppressed by
//! justified inline waiver comments ([`waivers`]).
//!
//! Rule catalogue and rationale: DESIGN.md §8.

pub mod config;
pub mod diagnostics;
pub mod lexer;
pub mod rules;
pub mod waivers;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use config::Config;
use diagnostics::Finding;

/// Audits one file's source text. `rel_path` is the `/`-separated
/// workspace-relative path used for rule scoping and diagnostics.
/// `only` optionally restricts the rule set (waiver-hygiene findings are
/// emitted only when unrestricted or when `only` includes `"waiver"`).
pub fn check_source(
    rel_path: &str,
    src: &str,
    cfg: &Config,
    only: Option<&[String]>,
) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let mut findings = rules::run_all(rel_path, &lexed, cfg, only);
    let mut wset = waivers::collect(&lexed.comments, config::RULES);
    findings.retain(|f| !wset.try_waive(&f.rule, f.line));
    let waiver_hygiene = only.map_or(true, |names| names.iter().any(|n| n == "waiver"));
    if waiver_hygiene {
        for (line, msg) in &wset.problems {
            findings.push(Finding::new("waiver", rel_path, *line, 1, msg.clone()));
        }
        for (line, rule) in wset.unused() {
            findings.push(Finding::new(
                "waiver",
                rel_path,
                line,
                1,
                format!("unused waiver for `{rule}`: nothing on this or the next line trips it"),
            ));
        }
    }
    findings.sort_by(|a, b| (a.line, a.col).cmp(&(b.line, b.col)));
    findings
}

/// Audits the workspace rooted at `root`: `src/` plus every
/// `crates/*/src/` tree, in sorted order for deterministic output.
/// Fixture files under `tests/` are deliberately out of scope — they
/// exist to trip the rules.
pub fn check_workspace(
    root: &Path,
    cfg: &Config,
    only: Option<&[String]>,
) -> io::Result<Vec<Finding>> {
    let mut files: Vec<PathBuf> = Vec::new();
    let src = root.join("src");
    if src.is_dir() {
        collect_rs_files(&src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<PathBuf> =
            fs::read_dir(&crates)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let crate_src = dir.join("src");
            if crate_src.is_dir() {
                collect_rs_files(&crate_src, &mut files)?;
            }
        }
    }
    files.sort();
    let mut findings = Vec::new();
    for file in &files {
        let text = fs::read_to_string(file)?;
        let rel = rel_path_str(root, file);
        findings.extend(check_source(&rel, &text, cfg, only));
    }
    Ok(findings)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative `/`-separated path for diagnostics and scoping.
fn rel_path_str(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let parts: Vec<String> =
        rel.components().map(|c| c.as_os_str().to_string_lossy().into_owned()).collect();
    parts.join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waived_finding_is_suppressed_and_waiver_counts_as_used() {
        let cfg = Config::default_for_workspace();
        let src = "fn f(x: Option<u8>) {\n\
                   // dgs::allow(no-panic-io): channel sender cannot outlive receiver here\n\
                   x.unwrap();\n\
                   }\n";
        let f = check_source("crates/net/src/tcp.rs", src, &cfg, None);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unused_waiver_is_a_finding() {
        let cfg = Config::default_for_workspace();
        let src = "// dgs::allow(no-panic-io): stale reason\nfn f() {}\n";
        let f = check_source("crates/net/src/tcp.rs", src, &cfg, None);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "waiver");
        assert!(f[0].message.contains("unused"));
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_suppress() {
        let cfg = Config::default_for_workspace();
        let src = "fn f(x: Option<u8>) {\n\
                   // dgs::allow(nan-ordering): wrong rule name for this site\n\
                   x.unwrap();\n\
                   }\n";
        let f = check_source("crates/net/src/tcp.rs", src, &cfg, None);
        // The unwrap still fires AND the waiver is unused.
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.rule == "no-panic-io"));
        assert!(f.iter().any(|x| x.rule == "waiver"));
    }

    #[test]
    fn findings_sorted_by_position() {
        let cfg = Config::default_for_workspace();
        let src = "fn b(x: Option<u8>) { x.unwrap(); }\nfn a(y: Option<u8>) { y.expect(\"y\"); }\n";
        let f = check_source("crates/net/src/transport.rs", src, &cfg, None);
        assert_eq!(f.len(), 2);
        assert!(f[0].line < f[1].line);
    }
}
