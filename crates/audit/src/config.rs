//! Per-rule path scoping. Each rule applies only to files whose
//! workspace-relative path starts with one of its scope prefixes, so the
//! DGS invariants are enforced exactly where they are load-bearing (see
//! DESIGN.md §8 for the rationale table).

/// Names of all rules, in the order they are run and documented.
pub const RULES: &[&str] = &[
    "nan-ordering",
    "determinism",
    "no-panic-io",
    "no-truncating-cast",
    "unsafe-budget",
    "paired-symbols",
    "lock-order",
    "no-blocking-under-lock",
    "panic-reach",
    "wire-bytes-conservation",
];

/// Scope: which path prefixes a rule applies to.
#[derive(Debug, Clone)]
pub struct Scope {
    /// Rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// `/`-separated workspace-relative path prefixes.
    pub include: Vec<&'static str>,
}

/// Full audit configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Per-rule path scopes.
    pub scopes: Vec<Scope>,
    /// Prefixes where `unsafe` is budgeted (still requires `// SAFETY:`).
    pub unsafe_allowed: Vec<&'static str>,
    /// The lock-order manifest driving the call-graph rules.
    pub manifest: crate::manifest::Manifest,
}

impl Config {
    /// The repo's checked-in rule scoping. Kept in code (not a config
    /// file) so scope changes go through review like any invariant change.
    pub fn default_for_workspace() -> Self {
        Config {
            scopes: vec![
                // Float ordering feeds top-R% selection (PAPER.md Alg. 1/3):
                // a partial_cmp comparator silently reorders NaN magnitudes.
                Scope {
                    rule: "nan-ordering",
                    include: vec![
                        "crates/sparsify/src",
                        "crates/core/src",
                        "crates/psim/src",
                        // The kernel tier handles raw magnitude keys: a
                        // partial_cmp anywhere in the dispatch seam or the
                        // SIMD twins would desync them from the scalar path.
                        "crates/tensor/src/kernel.rs",
                        "crates/tensor/src/simd.rs",
                        // Max-pooling's tie-breaking argmax scan: a float
                        // comparator here silently reorders NaN planes
                        // between the backends.
                        "crates/tensor/src/pool.rs",
                    ],
                },
                // Bit-exact server determinism (Eq. 5 equivalence proofs).
                // The sharded server carries the same proof obligation: its
                // downlinks must be bitwise identical to the global-lock
                // path for any pinned schedule.
                Scope {
                    rule: "determinism",
                    include: vec![
                        "crates/core/src/server.rs",
                        "crates/core/src/shard.rs",
                        "crates/core/src/update_log.rs",
                        "crates/sparsify/src",
                        "crates/net/src/codec.rs",
                        // The incremental decoder and the evented-server
                        // state machine must replay bitwise against the
                        // threaded oracle: no clocks, no entropy, no
                        // randomized iteration in either.
                        "crates/net/src/frame.rs",
                        "crates/net/src/conn.rs",
                        // The cluster fan-out/reassembly and the edge
                        // aggregation cache sit on the bitwise-replay
                        // path: shard-order reassembly and worker-order
                        // merging must be schedule-pure.
                        "crates/net/src/cluster.rs",
                        "crates/net/src/edge.rs",
                        "crates/psim/src/des.rs",
                        // Backend dispatch sits on every bitwise-replay
                        // path: both kernels must stay schedule-pure and
                        // emit-order identical (the differential suites
                        // prove it; the rule keeps entropy out).
                        "crates/tensor/src/kernel.rs",
                        "crates/tensor/src/simd.rs",
                        "crates/net/src/crc_simd.rs",
                        // The compute tier proper: the blocked GEMM's
                        // accumulation order, the im2col lowering, the
                        // pooling planes, and the scratch pools all feed
                        // the trained-bits-identical contract — clocks,
                        // entropy, or hash iteration anywhere here would
                        // break replay across backends and rayon splits.
                        "crates/tensor/src/gemm.rs",
                        "crates/tensor/src/conv.rs",
                        "crates/tensor/src/pool.rs",
                        "crates/tensor/src/scratch.rs",
                    ],
                },
                // "Error, never panic" wire paths (PR 2 contract).
                Scope { rule: "no-panic-io", include: vec!["crates/net/src"] },
                Scope {
                    rule: "no-truncating-cast",
                    include: vec!["crates/net/src/codec.rs", "crates/net/src/frame.rs"],
                },
                // unsafe-budget runs everywhere; the allowlist narrows it.
                Scope { rule: "unsafe-budget", include: vec!["crates", "src"] },
                Scope {
                    rule: "paired-symbols",
                    include: vec!["crates/net/src/codec.rs", "crates/core/src/protocol.rs"],
                },
                // Call-graph tier (DESIGN.md §8): everywhere the named
                // mutex family lives. Scope governs where findings land;
                // the graph itself spans every parsed file.
                Scope {
                    rule: "lock-order",
                    include: vec!["crates/core/src", "crates/net/src"],
                },
                Scope {
                    rule: "no-blocking-under-lock",
                    include: vec!["crates/core/src", "crates/net/src"],
                },
                // Wire-path entry files are named by the manifest; the
                // scope just bounds which files the walker reports on.
                Scope { rule: "panic-reach", include: vec!["crates/net/src"] },
                Scope {
                    rule: "wire-bytes-conservation",
                    include: vec!["crates/net/src/codec.rs", "crates/core/src/protocol.rs"],
                },
            ],
            // SIMD kernels in tensor, the PCLMULQDQ CRC backend, plus the
            // event loop's poll(2)/epoll FFI shim — the registry is
            // offline, so the syscall surface is declared by hand in
            // exactly one file.
            unsafe_allowed: vec![
                "crates/tensor/src",
                "crates/net/src/crc_simd.rs",
                "crates/net/src/poll.rs",
            ],
            manifest: crate::manifest::parse(crate::manifest::DEFAULT_MANIFEST)
                .expect("embedded audit-lock-order.toml must parse"),
        }
    }

    /// Like [`Config::default_for_workspace`], but loads the manifest
    /// from `<root>/audit-lock-order.toml` when present so local edits
    /// take effect without rebuilding the tool.
    pub fn for_workspace_root(root: &std::path::Path) -> Result<Self, String> {
        let mut cfg = Self::default_for_workspace();
        let path = root.join("audit-lock-order.toml");
        if let Ok(text) = std::fs::read_to_string(&path) {
            cfg.manifest = crate::manifest::parse(&text)
                .map_err(|e| format!("{}: {e}", path.display()))?;
        }
        Ok(cfg)
    }

    /// Does `rule` apply to the file at `rel_path` (always `/`-separated)?
    pub fn applies(&self, rule: &str, rel_path: &str) -> bool {
        self.scopes
            .iter()
            .filter(|s| s.rule == rule)
            .any(|s| s.include.iter().any(|p| path_has_prefix(rel_path, p)))
    }

    /// Is `unsafe` inside its budget at `rel_path`?
    pub fn unsafe_is_allowed(&self, rel_path: &str) -> bool {
        self.unsafe_allowed.iter().any(|p| path_has_prefix(rel_path, p))
    }
}

/// Component-wise prefix match: `crates/net/src` matches
/// `crates/net/src/tcp.rs` but `crates/net` does NOT match `crates/nettle`.
pub fn path_has_prefix(path: &str, prefix: &str) -> bool {
    match path.strip_prefix(prefix) {
        Some(rest) => rest.is_empty() || rest.starts_with('/'),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_matches_components_not_substrings() {
        assert!(path_has_prefix("crates/net/src/tcp.rs", "crates/net/src"));
        assert!(path_has_prefix("crates/net/src", "crates/net/src"));
        assert!(!path_has_prefix("crates/nettle/src/x.rs", "crates/net"));
    }

    #[test]
    fn default_scopes_cover_the_invariant_files() {
        let cfg = Config::default_for_workspace();
        assert!(cfg.applies("nan-ordering", "crates/sparsify/src/topk.rs"));
        assert!(cfg.applies("nan-ordering", "crates/sparsify/src/radix_select.rs"));
        assert!(cfg.applies("nan-ordering", "crates/psim/src/des.rs"));
        assert!(!cfg.applies("nan-ordering", "crates/net/src/tcp.rs"));
        assert!(cfg.applies("determinism", "crates/core/src/server.rs"));
        assert!(cfg.applies("determinism", "crates/core/src/shard.rs"));
        assert!(cfg.applies("determinism", "crates/sparsify/src/radix_select.rs"));
        assert!(cfg.applies("determinism", "crates/sparsify/src/sampled.rs"));
        assert!(cfg.applies("determinism", "crates/net/src/frame.rs"));
        assert!(cfg.applies("determinism", "crates/net/src/conn.rs"));
        assert!(cfg.applies("determinism", "crates/net/src/cluster.rs"));
        assert!(cfg.applies("determinism", "crates/net/src/edge.rs"));
        assert!(!cfg.applies("determinism", "crates/net/src/event_loop.rs"));
        assert!(!cfg.applies("determinism", "crates/core/src/trainer/threaded.rs"));
        assert!(cfg.applies("no-panic-io", "crates/net/src/transport.rs"));
        assert!(!cfg.applies("no-panic-io", "crates/core/src/server.rs"));
        assert!(cfg.applies("no-truncating-cast", "crates/net/src/frame.rs"));
        assert!(!cfg.applies("no-truncating-cast", "crates/net/src/tcp.rs"));
        assert!(cfg.applies("unsafe-budget", "crates/tensor/src/simd.rs"));
        assert!(cfg.applies("unsafe-budget", "src/main.rs"));
        assert!(cfg.applies("paired-symbols", "crates/net/src/codec.rs"));
        assert!(cfg.applies("no-panic-io", "crates/net/src/poll.rs"));
        assert!(cfg.applies("no-panic-io", "crates/net/src/event_loop.rs"));
        assert!(cfg.unsafe_is_allowed("crates/tensor/src/simd.rs"));
        assert!(cfg.unsafe_is_allowed("crates/net/src/poll.rs"));
        assert!(cfg.unsafe_is_allowed("crates/net/src/crc_simd.rs"));
        assert!(!cfg.unsafe_is_allowed("crates/net/src/tcp.rs"));
        assert!(!cfg.unsafe_is_allowed("crates/net/src/conn.rs"));
        assert!(cfg.applies("nan-ordering", "crates/tensor/src/simd.rs"));
        assert!(cfg.applies("nan-ordering", "crates/tensor/src/kernel.rs"));
        assert!(cfg.applies("nan-ordering", "crates/tensor/src/pool.rs"));
        assert!(!cfg.applies("nan-ordering", "crates/tensor/src/lib.rs"));
        assert!(cfg.applies("determinism", "crates/tensor/src/kernel.rs"));
        assert!(cfg.applies("determinism", "crates/net/src/crc_simd.rs"));
        assert!(cfg.applies("determinism", "crates/tensor/src/gemm.rs"));
        assert!(cfg.applies("determinism", "crates/tensor/src/conv.rs"));
        assert!(cfg.applies("determinism", "crates/tensor/src/pool.rs"));
        assert!(cfg.applies("determinism", "crates/tensor/src/scratch.rs"));
        // The thin wrapper stays out of scope: it only forwards to gemm.
        assert!(!cfg.applies("determinism", "crates/tensor/src/matmul.rs"));
    }
}
