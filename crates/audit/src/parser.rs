//! Lightweight item parser on top of [`crate::lexer`]: `fn` items with
//! impl-block context, call sites with receiver chains, panic sites,
//! subscript sites, and integer consts — everything the call-graph
//! rules ([`crate::graph_rules`]) need, and nothing more.
//!
//! Still std-only and hand-rolled (no `syn`): the audit must build with
//! bare `rustc` offline. The parser is deliberately approximate — it is
//! a linter front-end, not a compiler — and each approximation errs
//! conservative for the rules that consume it (see the notes on the
//! individual extractors).

use crate::lexer::{self, Lexed, Tok, TokKind};

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare fn name.
    pub name: String,
    /// Self-type name of the enclosing `impl` block (`impl Foo` or
    /// `impl Trait for Foo` both give `Foo`), if any.
    pub impl_type: Option<String>,
    /// Declared `pub` (any visibility qualifier counts).
    pub is_pub: bool,
    /// Inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// 1-based position of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Token indices of the body `{` and its matching `}`; `None` for
    /// bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Declared parameters, `(name, type)`. Primitive scalars, slices,
    /// arrays, and tuples carry the [`PRIM_MARKER`] type — no workspace
    /// `impl` can target them, so resolution drops every candidate.
    /// Generic, `dyn`, and `impl Trait` params are omitted: their calls
    /// stay conservatively wide.
    pub params: Vec<(String, String)>,
}

/// Parameter-type marker for primitive/slice/tuple shapes (see
/// [`FnItem::params`]).
pub const PRIM_MARKER: &str = "<prim>";

/// One call site inside a fn body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name (method or free fn; macros are excluded).
    pub name: String,
    /// Method-call form (`recv.name(...)`).
    pub is_method: bool,
    /// Path qualifier of a `Qual::name(...)` call — the nearest path
    /// segment (`std::io::Error::new` gives `Error`). Resolution uses
    /// it to narrow candidates to `impl Qual` blocks.
    pub qualifier: Option<String>,
    /// Receiver idents, nearest first: `self.applied.get(w)?.lock()`
    /// gives `["get", "applied", "self"]` for the `lock` call.
    pub chain: Vec<String>,
    /// Inside the argument list of an unwind-barrier call.
    pub under_barrier: bool,
    /// 1-based source position of the callee token.
    pub line: u32,
    /// Column of the callee token.
    pub col: u32,
    /// Token index of the callee ident.
    pub tok: usize,
    /// Token index of the opening `(`.
    pub args_open: usize,
}

/// A direct panic site (method or macro form).
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// What panics: `unwrap`, `expect`, `panic!`, `assert_eq!`, …
    pub what: String,
    /// Inside the argument list of an unwind-barrier call.
    pub under_barrier: bool,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A subscript (`x[...]`) site — a potential slice-index panic.
#[derive(Debug, Clone)]
pub struct SubscriptSite {
    /// Inside the argument list of an unwind-barrier call.
    pub under_barrier: bool,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// An `enum` definition (for wire-bytes conservation).
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Variant `(name, line)` pairs.
    pub variants: Vec<(String, u32)>,
}

/// One fully parsed file.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// The token stream and comments.
    pub lexed: Lexed,
    /// `#[cfg(test)]` line regions.
    pub test_regions: Vec<(u32, u32)>,
    /// All fn items, in source order.
    pub fns: Vec<FnItem>,
    /// Per-fn call sites (parallel to `fns`).
    pub calls: Vec<Vec<Call>>,
    /// Per-fn direct panic sites (parallel to `fns`).
    pub panics: Vec<Vec<PanicSite>>,
    /// Per-fn subscript sites (parallel to `fns`).
    pub subscripts: Vec<Vec<SubscriptSite>>,
    /// Integer consts resolvable within this file: `(name, value)`.
    pub consts: Vec<(String, u64)>,
    /// Enum definitions.
    pub enums: Vec<EnumDef>,
    /// Struct field types declared in this file: field name → the
    /// possible types (first path segment, `Arc`/`Rc`/`Box` unwrapped).
    /// Feeds receiver-type narrowing for `self.field.meth()` calls.
    pub fields: std::collections::BTreeMap<String, Vec<String>>,
    /// Per-fn constructor bindings (parallel to `fns`): `let w =
    /// Writer::new(..)` records `("w", "Writer")` so later `w.meth()`
    /// calls narrow to `impl Writer`.
    pub binds: Vec<Vec<(String, String)>>,
}

/// Words that look like `ident (` but are never calls.
const NOT_CALLEES: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "let", "as", "in", "move", "ref", "mut",
    "use", "pub", "impl", "where", "unsafe", "else", "break", "continue", "struct", "enum",
    "trait", "mod", "const", "static", "type", "dyn", "fn", "crate", "super", "Some", "Ok",
    "Err", "None",
];

/// Macro names whose invocation is a panic site. `debug_assert*` is
/// deliberately excluded: compiled out of release builds, owned by the
/// differential tests.
const PANIC_MACROS: &[&str] =
    &["panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne"];

/// Parses one lexed file. `barriers` are the unwind-barrier call names
/// from the manifest (`catch_unwind`, `guard`): everything inside their
/// argument list is marked `under_barrier`.
pub fn parse(path: &str, lexed: Lexed, barriers: &[String]) -> ParsedFile {
    let toks = &lexed.toks;
    let test_regions = lexer::cfg_test_regions(toks);
    let impls = impl_regions(toks);
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if is_ident(&toks[i], "fn") {
            // `fn` in `impl Fn(...)` bounds lexes as `Fn` (uppercase) —
            // this really is an item or trait-method header.
            if let Some(item) = parse_fn(toks, i, &impls, &test_regions) {
                let skip_to = item.body.map(|(open, _)| open).unwrap_or(i + 1);
                fns.push(item);
                // Do not skip past the body: nested fns are parsed too
                // (their calls are attributed to both — conservative).
                i = skip_to + 1;
                continue;
            }
        }
        i += 1;
    }
    let mut calls = Vec::with_capacity(fns.len());
    let mut panics = Vec::with_capacity(fns.len());
    let mut subscripts = Vec::with_capacity(fns.len());
    let mut binds = Vec::with_capacity(fns.len());
    for f in &fns {
        let (c, p, s, b) = match f.body {
            Some((open, close)) => scan_body(toks, open, close, barriers),
            None => (Vec::new(), Vec::new(), Vec::new(), Vec::new()),
        };
        calls.push(c);
        panics.push(p);
        subscripts.push(s);
        binds.push(b);
    }
    let consts = collect_consts(toks);
    let enums = collect_enums(toks);
    let fields = collect_fields(toks);
    ParsedFile {
        path: path.to_string(),
        lexed,
        test_regions,
        fns,
        calls,
        panics,
        subscripts,
        consts,
        enums,
        fields,
        binds,
    }
}

fn is_ident(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

fn is_punct(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

/// `impl` block regions: `(body_open, body_close, self_type)`.
fn impl_regions(toks: &[Tok]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !is_ident(&toks[i], "impl") {
            i += 1;
            continue;
        }
        // Walk the header: `impl<G> Trait<X> for Type<Y> where … {`.
        // The self type is the first ident after `for` if present, else
        // the first ident after the (optional) generic params.
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut first_ty: Option<String> = None;
        let mut for_ty: Option<String> = None;
        let mut after_for = false;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "{" if angle <= 0 => break,
                    ";" => break, // `impl Trait for Type;`-ish garbage: bail
                    _ => {}
                }
            } else if t.kind == TokKind::Ident && angle <= 0 {
                if t.text == "for" {
                    after_for = true;
                } else if t.text == "where" {
                    // Self type is decided by now.
                } else if after_for && for_ty.is_none() {
                    for_ty = Some(t.text.clone());
                } else if first_ty.is_none() {
                    first_ty = Some(t.text.clone());
                }
            }
            j += 1;
        }
        if j < toks.len() && is_punct(&toks[j], "{") {
            let close = lexer::matching_close(toks, j, "{", "}");
            if let Some(ty) = for_ty.or(first_ty) {
                out.push((j, close, ty));
            }
            // Continue scanning *inside* the impl too (nested impls are
            // not a thing, but fns are found by the caller anyway).
        }
        i = j + 1;
    }
    out
}

/// Parses one `fn` item starting at the `fn` keyword token.
fn parse_fn(
    toks: &[Tok],
    fn_idx: usize,
    impls: &[(usize, usize, String)],
    test_regions: &[(u32, u32)],
) -> Option<FnItem> {
    let name_tok = toks.get(fn_idx + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    // Find the body `{` (paren/bracket depth 0, outside generics) or a
    // `;` meaning a bodyless trait-method declaration.
    let mut j = fn_idx + 2;
    let mut paren = 0i32;
    let mut body = None;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                "{" if paren == 0 => {
                    body = Some((j, lexer::matching_close(toks, j, "{", "}")));
                    break;
                }
                ";" if paren == 0 => break,
                _ => {}
            }
        }
        j += 1;
    }
    // Visibility: scan back over `pub`, `pub(crate)`, `unsafe`, `const`,
    // `async`, `extern "C"` qualifiers.
    let mut is_pub = false;
    let mut k = fn_idx;
    while k > 0 {
        k -= 1;
        let t = &toks[k];
        let qualifier = (t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "pub" | "crate" | "super" | "in" | "unsafe" | "const" | "async" | "extern"))
            || (t.kind == TokKind::Punct && matches!(t.text.as_str(), "(" | ")"))
            || t.kind == TokKind::Str;
        if !qualifier {
            break;
        }
        if is_ident(t, "pub") {
            is_pub = true;
        }
    }
    let impl_type = body.and_then(|(open, _)| {
        impls
            .iter()
            .find(|(io, ic, _)| open > *io && open < *ic)
            .map(|(_, _, ty)| ty.clone())
    });
    // Parameter list: `name: Type` entries at paren depth 1. Patterns
    // (`(a, b): (T, U)`) sit at depth 2 and are skipped.
    let mut params = Vec::new();
    let mut j = fn_idx + 2;
    let mut angle = 0i32;
    let popen = loop {
        let Some(t) = toks.get(j) else { break None };
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "(" if angle <= 0 => break Some(j),
                "{" | ";" if angle <= 0 => break None,
                _ => {}
            }
        }
        j += 1;
    };
    if let Some(open) = popen {
        let close = lexer::matching_close(toks, open, "(", ")");
        let mut depth = 0i32;
        let mut k = open;
        while k < close {
            let t = &toks[k];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" | "<" => depth += 1,
                    ")" | "]" | "}" | ">" => depth -= 1,
                    _ => {}
                }
                k += 1;
                continue;
            }
            if depth == 1
                && t.kind == TokKind::Ident
                && !matches!(t.text.as_str(), "self" | "mut" | "ref")
                && toks.get(k + 1).is_some_and(|n| is_punct(n, ":"))
                && !toks.get(k + 2).is_some_and(|n| is_punct(n, ":"))
            {
                if let Some(ty) = param_type(toks, k + 2, close) {
                    params.push((t.text.clone(), ty));
                }
                // Skip the type expression to its `,` at list depth.
                let mut tdepth = 0i32;
                k += 2;
                while k < close {
                    match (toks[k].kind, toks[k].text.as_str()) {
                        (TokKind::Punct, "(")
                        | (TokKind::Punct, "[")
                        | (TokKind::Punct, "{")
                        | (TokKind::Punct, "<") => tdepth += 1,
                        (TokKind::Punct, ")")
                        | (TokKind::Punct, "]")
                        | (TokKind::Punct, "}")
                        | (TokKind::Punct, ">") => tdepth -= 1,
                        (TokKind::Punct, ",") if tdepth <= 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                continue;
            }
            k += 1;
        }
    }
    Some(FnItem {
        name: name_tok.text.clone(),
        impl_type,
        is_pub,
        in_test: lexer::in_regions(test_regions, toks[fn_idx].line),
        line: toks[fn_idx].line,
        col: toks[fn_idx].col,
        body,
        params,
    })
}

/// Constructor-shaped associated fns: `let x = Type::new(..)` is taken
/// as evidence that `x: Type`. Deliberately short — an arbitrary
/// `Type::helper()` may return anything, and a wrong binding type would
/// *hide* edges rather than widen them.
const CONSTRUCTORS: &[&str] = &["new", "with_capacity", "default", "from"];

/// Extracts calls, panic sites, subscript sites, and constructor
/// bindings from a body range.
fn scan_body(
    toks: &[Tok],
    open: usize,
    close: usize,
    barriers: &[String],
) -> (Vec<Call>, Vec<PanicSite>, Vec<SubscriptSite>, Vec<(String, String)>) {
    let mut calls = Vec::new();
    let mut panics = Vec::new();
    let mut subs = Vec::new();
    let mut binds = Vec::new();
    // Close-paren token indices of active barrier call argument lists.
    let mut barrier_ends: Vec<usize> = Vec::new();
    let mut i = open + 1;
    while i < close {
        barrier_ends.retain(|&e| e > i);
        let under_barrier = !barrier_ends.is_empty();
        let t = &toks[i];
        // Skip attribute contents: `#[...]`.
        if is_punct(t, "#") && toks.get(i + 1).is_some_and(|n| is_punct(n, "[")) {
            i = lexer::matching_close(toks, i + 1, "[", "]") + 1;
            continue;
        }
        if is_ident(t, "let") {
            // `let [mut] name = [path::]Type::ctor(...)` — a constructor
            // binding whose type is trusted for receiver narrowing.
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| is_ident(t, "mut")) {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.kind == TokKind::Ident)
                && toks.get(j + 1).is_some_and(|t| is_punct(t, "="))
                && !toks.get(j + 2).is_some_and(|t| is_punct(t, "=") || is_punct(t, ">"))
            {
                let name = toks[j].text.clone();
                let mut k = j + 2;
                let mut last_ty: Option<String> = None;
                while toks.get(k).is_some_and(|t| t.kind == TokKind::Ident)
                    && toks.get(k + 1).is_some_and(|t| is_punct(t, ":"))
                    && toks.get(k + 2).is_some_and(|t| is_punct(t, ":"))
                    && toks.get(k + 3).is_some_and(|t| t.kind == TokKind::Ident)
                {
                    last_ty = Some(toks[k].text.clone());
                    k += 3;
                }
                if let Some(ty) = last_ty {
                    if toks.get(k).is_some_and(|t| {
                        t.kind == TokKind::Ident && CONSTRUCTORS.contains(&t.text.as_str())
                    }) && toks.get(k + 1).is_some_and(|t| is_punct(t, "("))
                    {
                        binds.push((name, ty));
                    }
                }
            }
            i += 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            let next = toks.get(i + 1);
            // Macro invocation `name!(…)` / `name![…]` / `name!{…}`.
            if next.is_some_and(|n| is_punct(n, "!"))
                && toks.get(i + 2).is_some_and(|n| {
                    n.kind == TokKind::Punct && matches!(n.text.as_str(), "(" | "[" | "{")
                })
            {
                if PANIC_MACROS.contains(&t.text.as_str()) {
                    panics.push(PanicSite {
                        what: format!("{}!", t.text),
                        under_barrier,
                        line: t.line,
                        col: t.col,
                    });
                }
                i += 2;
                continue;
            }
            // Call `name(…)`.
            if next.is_some_and(|n| is_punct(n, "("))
                && !NOT_CALLEES.contains(&t.text.as_str())
                && !(i > 0 && is_ident(&toks[i - 1], "fn"))
            {
                let is_method = i > 0 && is_punct(&toks[i - 1], ".");
                let chain = if is_method { receiver_chain(toks, i - 1) } else { Vec::new() };
                let qualifier = (!is_method
                    && i >= 3
                    && is_punct(&toks[i - 1], ":")
                    && is_punct(&toks[i - 2], ":")
                    && toks[i - 3].kind == TokKind::Ident)
                    .then(|| toks[i - 3].text.clone());
                if matches!(t.text.as_str(), "unwrap" | "expect") && is_method {
                    panics.push(PanicSite {
                        what: t.text.clone(),
                        under_barrier,
                        line: t.line,
                        col: t.col,
                    });
                }
                calls.push(Call {
                    name: t.text.clone(),
                    is_method,
                    qualifier,
                    chain,
                    under_barrier,
                    line: t.line,
                    col: t.col,
                    tok: i,
                    args_open: i + 1,
                });
                if barriers.iter().any(|b| b == &t.text) {
                    barrier_ends.push(lexer::matching_close(toks, i + 1, "(", ")"));
                }
                i += 1;
                continue;
            }
        }
        // Subscript `x[…]`: a `[` in postfix position. A `[` after a
        // keyword (`let [a, b] = …`, `for x in [..]`) opens a slice
        // pattern or array literal, not an index expression.
        const NON_POSTFIX: &[&str] =
            &["mut", "return", "let", "in", "ref", "if", "else", "match", "box", "break", "const"];
        if is_punct(t, "[")
            && i > 0
            && (toks[i - 1].kind == TokKind::Ident
                || is_punct(&toks[i - 1], ")")
                || is_punct(&toks[i - 1], "]"))
            && !NON_POSTFIX.iter().any(|k| is_ident(&toks[i - 1], k))
        {
            subs.push(SubscriptSite { under_barrier, line: t.line, col: t.col });
        }
        i += 1;
    }
    (calls, panics, subs, binds)
}

/// Receiver idents of a method call, nearest first, starting from the
/// `.` token. Walks back through postfix chains: field accesses, `?`,
/// closed call/index groups. `self.applied.get(w)?.lock()` (from the
/// final `.`) gives `["get", "applied", "self"]`; numeric tuple fields
/// are included as text (`self.0.lock()` → `["0", "self"]`).
fn receiver_chain(toks: &[Tok], dot: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut k = dot; // points at a `.`
    loop {
        if k == 0 {
            break;
        }
        let prev = &toks[k - 1];
        match prev.kind {
            TokKind::Ident | TokKind::Num => {
                out.push(prev.text.clone());
                k -= 1;
                // Continue only through `.` or `::`.
                if k >= 1 && is_punct(&toks[k - 1], ".") {
                    k -= 1;
                    continue;
                }
                if k >= 2 && is_punct(&toks[k - 1], ":") && is_punct(&toks[k - 2], ":") {
                    k -= 2;
                    continue;
                }
                break;
            }
            TokKind::Punct if prev.text == "?" => {
                k -= 1;
                continue;
            }
            TokKind::Punct if prev.text == ")" || prev.text == "]" => {
                // Walk back to the matching opener, then keep going so
                // the call/index target ident joins the chain.
                let (op, cl) = if prev.text == ")" { ("(", ")") } else { ("[", "]") };
                let mut depth = 0i32;
                let mut m = k - 1;
                loop {
                    let t = &toks[m];
                    if t.kind == TokKind::Punct && t.text == cl {
                        depth += 1;
                    } else if t.kind == TokKind::Punct && t.text == op {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if m == 0 {
                        break;
                    }
                    m -= 1;
                }
                k = m;
                continue;
            }
            _ => break,
        }
    }
    out
}

/// Collects `const NAME: <ty> = <int expr>;` items whose value folds
/// from integer literals, `+`, parens, and previously collected consts.
fn collect_consts(toks: &[Tok]) -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if is_ident(&toks[i], "const")
            && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident && t.text != "fn")
            && toks.get(i + 2).is_some_and(|t| is_punct(t, ":"))
        {
            let name = toks[i + 1].text.clone();
            // Find `=` then fold until `;`.
            let mut j = i + 3;
            while j < toks.len() && !is_punct(&toks[j], "=") && !is_punct(&toks[j], ";") {
                j += 1;
            }
            if j < toks.len() && is_punct(&toks[j], "=") {
                let mut value = Some(0u64);
                let mut any = false;
                let mut k = j + 1;
                while k < toks.len() && !is_punct(&toks[k], ";") {
                    let t = &toks[k];
                    match t.kind {
                        TokKind::Num => {
                            any = true;
                            value = value.and_then(|v| parse_int(&t.text).map(|n| v + n));
                        }
                        TokKind::Ident => {
                            any = true;
                            let known = out.iter().find(|(n, _)| n == &t.text).map(|(_, v)| *v);
                            value = value.and_then(|v| known.map(|n| v + n));
                        }
                        TokKind::Punct if matches!(t.text.as_str(), "+" | "(" | ")") => {}
                        _ => value = None,
                    }
                    k += 1;
                }
                if any {
                    if let Some(v) = value {
                        out.push((name, v));
                    }
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Parses an integer literal with `_` separators and an optional type
/// suffix (`20`, `4_096`, `8usize`).
pub fn parse_int(text: &str) -> Option<u64> {
    let split = text.find(|c: char| !c.is_ascii_digit() && c != '_').unwrap_or(text.len());
    let (num, suffix) = text.split_at(split);
    if num.is_empty() {
        return None;
    }
    if !suffix.is_empty()
        && !matches!(suffix, "u8" | "u16" | "u32" | "u64" | "usize" | "i8" | "i16" | "i32" | "i64" | "isize")
    {
        return None; // hex/float/unknown suffix: not foldable
    }
    num.chars().filter(|c| *c != '_').collect::<String>().parse().ok()
}

/// Collects `struct Name { field: Type, … }` field types across the
/// file. The recorded type is the first path segment of the field's
/// type, after stripping `&`/`mut`/`dyn` and unwrapping the
/// `Arc`/`Rc`/`Box` smart pointers (which deref transparently). A field
/// name used by several structs records every type (resolution unions
/// them). Tuple structs contribute nothing.
fn collect_fields(toks: &[Tok]) -> std::collections::BTreeMap<String, Vec<String>> {
    let mut out: std::collections::BTreeMap<String, Vec<String>> = std::collections::BTreeMap::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !is_ident(&toks[i], "struct")
            || toks.get(i + 1).map(|t| t.kind) != Some(TokKind::Ident)
        {
            i += 1;
            continue;
        }
        // Skip generics to the body `{`; `;` or `(` means unit/tuple.
        let mut j = i + 2;
        let mut angle = 0i32;
        while j < toks.len() {
            match (toks[j].kind, toks[j].text.as_str()) {
                (TokKind::Punct, "<") => angle += 1,
                (TokKind::Punct, ">") => angle -= 1,
                (TokKind::Punct, "{") if angle <= 0 => break,
                (TokKind::Punct, ";") | (TokKind::Punct, "(") if angle <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= toks.len() || !is_punct(&toks[j], "{") {
            i = j.max(i + 1);
            continue;
        }
        let close = lexer::matching_close(toks, j, "{", "}");
        let mut depth = 0i32;
        let mut k = j;
        while k < close {
            let t = &toks[k];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" | "(" | "[" | "<" => depth += 1,
                    "}" | ")" | "]" | ">" => depth -= 1,
                    _ => {}
                }
                k += 1;
                continue;
            }
            // A field: `name :` (not `::`) at body depth.
            if depth == 1
                && t.kind == TokKind::Ident
                && toks.get(k + 1).is_some_and(|n| is_punct(n, ":"))
                && !toks.get(k + 2).is_some_and(|n| is_punct(n, ":"))
                && !matches!(t.text.as_str(), "pub" | "crate" | "super" | "in")
            {
                if let Some(ty) = field_type(toks, k + 2, close) {
                    let entry = out.entry(t.text.clone()).or_default();
                    if !entry.contains(&ty) {
                        entry.push(ty);
                    }
                }
                // Skip the type expression to its `,` (or body end).
                let mut tdepth = 0i32;
                k += 2;
                while k < close {
                    match (toks[k].kind, toks[k].text.as_str()) {
                        (TokKind::Punct, "(") | (TokKind::Punct, "[") | (TokKind::Punct, "<") => {
                            tdepth += 1
                        }
                        (TokKind::Punct, ")") | (TokKind::Punct, "]") | (TokKind::Punct, ">") => {
                            tdepth -= 1
                        }
                        (TokKind::Punct, ",") if tdepth <= 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                continue;
            }
            k += 1;
        }
        i = close + 1;
    }
    out
}

/// First significant type ident at `k`, unwrapping smart pointers.
/// `dyn Trait` gives `None`: narrowing to the trait name would match no
/// impl block (impls record the concrete self type) and silently hide
/// every trait-object dispatch — wide is the conservative answer.
fn field_type(toks: &[Tok], mut k: usize, close: usize) -> Option<String> {
    loop {
        while k < close {
            let t = &toks[k];
            if t.kind == TokKind::Lifetime {
                k += 1;
                continue;
            }
            if t.kind == TokKind::Ident {
                if t.text == "dyn" {
                    return None; // trait object: stay wide
                }
                if !matches!(t.text.as_str(), "mut" | "const") {
                    break;
                }
            } else if t.kind == TokKind::Punct && !matches!(t.text.as_str(), "&" | "*") {
                return None; // unexpected shape: give up, stay wide
            }
            k += 1;
        }
        if k >= close {
            return None;
        }
        let name = toks[k].text.as_str();
        if matches!(name, "Arc" | "Rc" | "Box") && toks.get(k + 1).is_some_and(|t| is_punct(t, "<"))
        {
            k += 2; // descend into the pointee
            continue;
        }
        return Some(name.to_string());
    }
}

/// Primitive scalars: no workspace `impl` can target them.
const PRIMITIVES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
    "f32", "f64", "bool", "char", "str",
];

/// [`field_type`] for fn parameters. Slice/array/tuple shapes and
/// primitive scalars map to [`PRIM_MARKER`] (stable Rust forbids
/// inherent impls on them outside `core`, so resolution can safely drop
/// every candidate — this is what keeps a `buf: &[u8]` receiver from
/// widening `buf.len()` onto some workspace type's locking `len`).
/// `dyn` and `impl Trait` give `None` so those calls stay wide.
fn param_type(toks: &[Tok], mut k: usize, close: usize) -> Option<String> {
    loop {
        while k < close {
            let t = &toks[k];
            if t.kind == TokKind::Lifetime {
                k += 1;
                continue;
            }
            if t.kind == TokKind::Ident {
                if matches!(t.text.as_str(), "dyn" | "impl") {
                    return None; // trait object / impl-trait: stay wide
                }
                if !matches!(t.text.as_str(), "mut" | "const") {
                    break;
                }
            } else if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "&" | "*" => {}
                    "[" | "(" => return Some(PRIM_MARKER.to_string()),
                    _ => return None,
                }
            }
            k += 1;
        }
        if k >= close {
            return None;
        }
        let name = toks[k].text.as_str();
        if matches!(name, "Arc" | "Rc" | "Box") && toks.get(k + 1).is_some_and(|t| is_punct(t, "<"))
        {
            k += 2; // descend into the pointee
            continue;
        }
        if PRIMITIVES.contains(&name) {
            return Some(PRIM_MARKER.to_string());
        }
        return Some(name.to_string());
    }
}

/// Collects enum definitions with their variant names and lines.
fn collect_enums(toks: &[Tok]) -> Vec<EnumDef> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !is_ident(&toks[i], "enum") || toks.get(i + 1).map(|t| t.kind) != Some(TokKind::Ident) {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        let line = toks[i].line;
        // Skip generics to the body `{`.
        let mut j = i + 2;
        while j < toks.len() && !is_punct(&toks[j], "{") && !is_punct(&toks[j], ";") {
            j += 1;
        }
        if j >= toks.len() || !is_punct(&toks[j], "{") {
            i = j;
            continue;
        }
        let close = lexer::matching_close(toks, j, "{", "}");
        let mut variants = Vec::new();
        let mut depth = 0i32;
        let mut prev_significant = "{".to_string();
        for k in j..=close.min(toks.len().saturating_sub(1)) {
            let t = &toks[k];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" | "(" | "[" | "<" => depth += 1,
                    "}" | ")" | "]" | ">" => depth -= 1,
                    _ => {}
                }
                prev_significant = t.text.clone();
                continue;
            }
            if t.kind == TokKind::Ident
                && depth == 1
                && matches!(prev_significant.as_str(), "{" | ",")
            {
                variants.push((t.text.clone(), t.line));
            }
            prev_significant = t.text.clone();
        }
        out.push(EnumDef { name, line, variants });
        i = close + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(src: &str) -> ParsedFile {
        parse("crates/x/src/lib.rs", crate::lexer::lex(src), &["catch_unwind".to_string()])
    }

    #[test]
    fn fns_get_impl_context_visibility_and_bodies() {
        let p = parsed(
            "pub struct S;\n\
             impl S { pub fn a(&self) -> u32 { 1 } fn b(&self); }\n\
             impl Clone for S { fn clone(&self) -> S { S } }\n\
             pub(crate) fn free<T: Iterator<Item = u8>>(t: T) {}\n",
        );
        let names: Vec<_> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "clone", "free"]);
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("S"));
        assert!(p.fns[0].is_pub);
        assert!(p.fns[1].body.is_none());
        assert_eq!(p.fns[2].impl_type.as_deref(), Some("S"));
        assert!(p.fns[3].is_pub);
        assert!(p.fns[3].body.is_some());
    }

    #[test]
    fn calls_carry_receiver_chains_and_method_flags() {
        let p = parsed(
            "fn f(&self) {\n\
               self.applied.get(w).unwrap().lock();\n\
               helper(1);\n\
               self.0.lock();\n\
             }\n",
        );
        let calls = &p.calls[0];
        let lock = calls.iter().filter(|c| c.name == "lock").collect::<Vec<_>>();
        assert_eq!(lock.len(), 2);
        assert!(lock[0].chain.contains(&"applied".to_string()), "{:?}", lock[0].chain);
        assert!(lock[0].chain.contains(&"self".to_string()));
        assert_eq!(lock[1].chain, vec!["0", "self"]);
        let helper = calls.iter().find(|c| c.name == "helper").unwrap();
        assert!(!helper.is_method);
        // `.unwrap()` is both a call and a panic site.
        assert!(p.panics[0].iter().any(|s| s.what == "unwrap"));
    }

    #[test]
    fn barrier_subtrees_are_marked() {
        let p = parsed(
            "fn f() {\n\
               catch_unwind(|| { danger(); x.unwrap(); });\n\
               outside.unwrap();\n\
             }\n",
        );
        let danger = p.calls[0].iter().find(|c| c.name == "danger").unwrap();
        assert!(danger.under_barrier);
        let unwraps: Vec<_> = p.panics[0].iter().filter(|s| s.what == "unwrap").collect();
        assert_eq!(unwraps.len(), 2);
        assert!(unwraps[0].under_barrier);
        assert!(!unwraps[1].under_barrier);
    }

    #[test]
    fn subscripts_in_postfix_position_only() {
        let p = parsed(
            "fn f(buf: &[u8], m: [u8; 4]) -> u8 {\n\
               let a: [u8; 2] = [0, 1];\n\
               let x = buf[0];\n\
               let y = &buf[1..3];\n\
               m[3] + a[0] + x + y[0]\n\
             }\n",
        );
        // buf[0], buf[1..3], m[3], a[0], y[0] — not the type or literal.
        assert_eq!(p.subscripts[0].len(), 5, "{:?}", p.subscripts[0]);
    }

    #[test]
    fn panic_macros_found_but_debug_assert_ignored() {
        let p = parsed(
            "fn f() {\n\
               assert_eq!(1, 1);\n\
               debug_assert!(true);\n\
               panic!(\"boom\");\n\
             }\n",
        );
        let whats: Vec<_> = p.panics[0].iter().map(|s| s.what.as_str()).collect();
        assert_eq!(whats, vec!["assert_eq!", "panic!"]);
    }

    #[test]
    fn consts_fold_sums_and_cross_references() {
        let p = parsed(
            "pub const A: usize = 8;\n\
             pub const B: usize = 8 + 4;\n\
             pub const C: usize = A + B;\n\
             pub const D: usize = 1 << 3;\n",
        );
        assert_eq!(p.consts, vec![("A".into(), 8), ("B".into(), 12), ("C".into(), 20)]);
    }

    #[test]
    fn enums_collect_variants() {
        let p = parsed(
            "pub enum Msg {\n\
               Dense(Vec<f32>),\n\
               Sparse { chunks: Vec<u8> },\n\
               Ping,\n\
             }\n",
        );
        assert_eq!(p.enums.len(), 1);
        let names: Vec<_> = p.enums[0].variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Dense", "Sparse", "Ping"]);
    }

    #[test]
    fn test_region_fns_are_marked() {
        let p = parsed("fn a() {}\n#[cfg(test)]\nmod tests { fn b() {} }\n");
        assert!(!p.fns[0].in_test);
        assert!(p.fns[1].in_test);
    }
}
