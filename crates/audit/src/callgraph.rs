//! Workspace call graph over [`crate::parser`] output, with the
//! conservative name resolution and the transitive properties the
//! graph rules consume.
//!
//! Resolution is by bare callee name across the whole workspace — a
//! method call through a trait object or generic receiver resolves to
//! *every* fn with that name, deliberately widening the graph (a missed
//! edge hides a bug; a spurious edge costs a waiver). Targeted
//! refinements keep the widening from eating itself:
//!
//! * **forwarding cutoff**: a call to `m(...)` from inside a fn itself
//!   named `m` resolves to nothing. Wrapper impls (`Mutex<H>`
//!   forwarding `handle_resync` to the inner handler's `handle_resync`)
//!   otherwise resolve to themselves and every sibling impl, creating
//!   cycles through the wrapper.
//! * **derived type narrowing** ([`Graph::derive_types`]): a
//!   `Qual::fn()` path call, a `self.meth()` / `self.field.meth()`
//!   receiver, or a constructor-bound local (`let w = Writer::new(..)`)
//!   pins the receiver type, and resolution is restricted to that
//!   type's impl blocks — ubiquitous names (`new`, `read`, `record`)
//!   stop aliasing every impl in the workspace.
//! * **guard narrowing**: a method called directly on a lock guard
//!   whose class declares `inner = "T"` resolves only against
//!   `impl T` blocks (see [`crate::graph_rules`]) — the guarded type is
//!   known exactly, so homonyms on other types are not candidates.
//!
//! Test fns (`#[cfg(test)]`) are excluded from the graph entirely.

use std::collections::BTreeMap;

use crate::manifest::Manifest;
use crate::parser::{Call, ParsedFile};

/// Identifies a fn as (file index, fn index).
pub type FnId = (usize, usize);

/// Call names treated as potentially blocking syscalls wherever they
/// appear (the no-blocking-under-lock set). Condvar waits are exempt —
/// they release the mutex — and `join` is excluded because
/// `rayon::join` / `Path::join` / `slice::join` are indistinguishable
/// by name (the poller set below includes it; a poller must not call
/// any of the three anyway).
pub const BLOCKING_CALLS: &[&str] = &[
    "read", "read_exact", "read_to_end", "write", "write_all", "flush", "recv", "recv_timeout",
    "sleep", "park", "park_timeout", "connect", "shutdown", "exchange", "send_update",
    "send_reply",
];

/// Prefix-matched blocking names (`write_frame`, `write_frame_to`, …).
pub const BLOCKING_PREFIXES: &[&str] = &["write_frame", "read_frame"];

/// Calls that park the calling thread outright — the strictest set,
/// applied to poller files even with no guard live. Nonblocking-fd
/// `read`/`write` are the event loop's job, so they are absent here;
/// condvar waits *do* park the poller, so they are present.
pub const HARD_BLOCKING_CALLS: &[&str] = &[
    "sleep", "park", "park_timeout", "join", "recv", "recv_timeout", "exchange", "wait",
    "wait_timeout", "wait_while",
];

/// Is `name` in the general blocking set?
pub fn is_blocking_name(name: &str) -> bool {
    BLOCKING_CALLS.contains(&name) || BLOCKING_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// Is `name` in the poller (hard) blocking set?
pub fn is_hard_blocking_name(name: &str) -> bool {
    HARD_BLOCKING_CALLS.contains(&name) || is_blocking_name(name) && false
}

/// Condvar waits: release the mutex, exempt from the under-lock rule.
pub fn is_condvar_wait(name: &str) -> bool {
    matches!(name, "wait" | "wait_timeout" | "wait_while")
}

/// Per-fn facts computed by fixpoint over the graph.
#[derive(Debug, Clone, Default)]
pub struct FnFacts {
    /// Reaches a general blocking call.
    pub may_block: bool,
    /// Reaches a hard (parking) blocking call.
    pub may_hard_block: bool,
    /// Reaches a panic site outside any unwind barrier.
    pub may_panic: bool,
    /// Lock classes acquired anywhere in this fn's dynamic extent.
    pub acquires: Vec<String>,
    /// Witness for `may_block`: the call chain hop (callee or direct name).
    pub block_witness: Option<String>,
    /// Witness for `may_hard_block`.
    pub hard_witness: Option<String>,
    /// Witness for `may_panic`.
    pub panic_witness: Option<String>,
}

/// The workspace call graph.
pub struct Graph<'a> {
    /// All parsed files.
    pub files: &'a [ParsedFile],
    /// name → fns with a body, excluding test fns.
    by_name: BTreeMap<&'a str, Vec<FnId>>,
    /// Every impl-block self type in the workspace. A parameter typed
    /// with a name outside this set is a generic or foreign type —
    /// narrowing on it would hide edges, so those calls stay wide.
    impl_types: std::collections::BTreeSet<&'a str>,
    /// Workspace-wide union of struct field declarations: field name →
    /// every type the name is declared with, deduplicated. Bounds the
    /// receiver of `owner.field.meth(..)` calls.
    field_types: BTreeMap<&'a str, Vec<String>>,
    /// Per-fn facts, indexed like `files[f].fns[i]` via `facts[f][i]`.
    pub facts: Vec<Vec<FnFacts>>,
}

impl<'a> Graph<'a> {
    /// Builds the graph and runs the fixpoints. `manifest` supplies the
    /// acquisition patterns (for `acquires`) and barriers are already
    /// baked into the parse (`under_barrier` flags).
    pub fn build(files: &'a [ParsedFile], manifest: &Manifest) -> Self {
        let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        let mut impl_types = std::collections::BTreeSet::new();
        for (fi, pf) in files.iter().enumerate() {
            for (ni, f) in pf.fns.iter().enumerate() {
                if f.body.is_some() && !f.in_test {
                    by_name.entry(f.name.as_str()).or_default().push((fi, ni));
                }
                if let Some(ty) = f.impl_type.as_deref() {
                    impl_types.insert(ty);
                }
            }
        }
        let mut field_types: BTreeMap<&str, Vec<String>> = BTreeMap::new();
        for pf in files {
            for (name, tys) in &pf.fields {
                let union = field_types.entry(name.as_str()).or_default();
                for ty in tys {
                    if !union.contains(ty) {
                        union.push(ty.clone());
                    }
                }
            }
        }
        let mut facts: Vec<Vec<FnFacts>> =
            files.iter().map(|pf| vec![FnFacts::default(); pf.fns.len()]).collect();
        // Seed with direct facts.
        for (fi, pf) in files.iter().enumerate() {
            for ni in 0..pf.fns.len() {
                if pf.fns[ni].in_test {
                    continue;
                }
                let fact = &mut facts[fi][ni];
                for c in &pf.calls[ni] {
                    if is_condvar_wait(&c.name) {
                        if HARD_BLOCKING_CALLS.contains(&c.name.as_str()) && !fact.may_hard_block
                        {
                            fact.may_hard_block = true;
                            fact.hard_witness = Some(format!("`{}`", c.name));
                        }
                        continue;
                    }
                    if is_blocking_name(&c.name) && !fact.may_block {
                        fact.may_block = true;
                        fact.block_witness = Some(format!("`{}`", c.name));
                    }
                    if HARD_BLOCKING_CALLS.contains(&c.name.as_str()) && !fact.may_hard_block {
                        fact.may_hard_block = true;
                        fact.hard_witness = Some(format!("`{}`", c.name));
                    }
                    if let Some(class) = manifest.classify(&c.name, c.is_method, &c.chain, &pf.path)
                    {
                        if !fact.acquires.contains(&class.name) {
                            fact.acquires.push(class.name.clone());
                        }
                    }
                }
                for p in &pf.panics[ni] {
                    if !p.under_barrier && !fact.may_panic {
                        fact.may_panic = true;
                        fact.panic_witness = Some(format!("`{}`", p.what));
                    }
                }
                // Subscript panics count only in wire-path entry files,
                // where the rule demands get()-style access.
                if manifest.is_entry_file(&pf.path) && !fact.may_panic {
                    if let Some(s) = pf.subscripts[ni].iter().find(|s| !s.under_barrier) {
                        fact.may_panic = true;
                        fact.panic_witness =
                            Some(format!("indexing at {}:{}", pf.path, s.line));
                    }
                }
            }
        }
        let mut g = Graph { files, by_name, impl_types, field_types, facts };
        g.fixpoint(manifest);
        g
    }

    /// Resolves a call made from `caller` to candidate fns. Applies the
    /// forwarding cutoff, then type narrowing: an explicit `narrow_type`
    /// (guard narrowing, walker-only knowledge) wins; otherwise the
    /// receiver type is derived from the call shape ([`Self::derive_types`]).
    /// `exclude_impl` drops candidates from a named impl block — used
    /// when calling through a guard of a generic-inner mutex, whose
    /// deref target is never the wrapper type itself.
    pub fn resolve(
        &self,
        call: &Call,
        caller: FnId,
        narrow_type: Option<&str>,
        exclude_impl: Option<&str>,
    ) -> Vec<FnId> {
        if call.name == self.files[caller.0].fns[caller.1].name {
            return Vec::new(); // forwarding cutoff
        }
        let Some(cands) = self.by_name.get(call.name.as_str()) else { return Vec::new() };
        let narrow: Option<Vec<String>> = match narrow_type {
            Some(t) => Some(vec![t.to_string()]),
            None => self.derive_types(call, caller),
        };
        cands
            .iter()
            .copied()
            .filter(|&(fi, ni)| {
                let it = self.files[fi].fns[ni].impl_type.as_deref();
                if exclude_impl.is_some() && it == exclude_impl {
                    return false;
                }
                match &narrow {
                    Some(tys) => it.is_some_and(|t| tys.iter().any(|x| x == t)),
                    None => true,
                }
            })
            .collect()
    }

    /// Receiver types derivable from the call shape alone; `None` means
    /// no knowledge — resolution stays wide. Five sources, each exact
    /// enough to trust (a wrong type would *hide* edges, so each is
    /// deliberately narrow):
    ///
    /// * `Qual::name(...)` — the path qualifier is the impl type
    ///   (`Self` maps to the caller's own impl block);
    /// * `self.meth(...)` / `self.field.meth(...)` — the caller's impl
    ///   type, or the field's declared type from this file's structs
    ///   (adapter hops like `get`/`ok_or` are looked through);
    /// * `owner.field.meth(...)` — a receiver hop with an owner to its
    ///   right is necessarily a field projection (locals and params only
    ///   appear as the *outermost* hop), so it narrows to every type the
    ///   workspace declares for a field of that name; an unknown field
    ///   name stays wide;
    /// * `local.meth(...)` where `local` was bound by a constructor
    ///   (`let w = Writer::new(..)`);
    /// * `param.meth(...)` where the parameter's declared type is a
    ///   workspace impl type, or a primitive/slice shape (which resolves
    ///   to nothing). Generic / `dyn` / foreign-typed params stay wide.
    fn derive_types(&self, call: &Call, caller: FnId) -> Option<Vec<String>> {
        let cf = &self.files[caller.0];
        let cfn = &cf.fns[caller.1];
        if let Some(q) = &call.qualifier {
            return if q == "Self" {
                cfn.impl_type.clone().map(|t| vec![t])
            } else {
                Some(vec![q.clone()])
            };
        }
        if !call.is_method {
            return None;
        }
        let hop = crate::manifest::receiver_of(&call.chain)?;
        if hop == "self" {
            return cfn.impl_type.clone().map(|t| vec![t]);
        }
        if call.chain.last().is_some_and(|l| l == "self") {
            // `self.field.…` — the field's declared type, if this file
            // declares it; an unknown field stays wide.
            return cf.fields.get(hop.as_str()).cloned();
        }
        if call.chain.last().is_some_and(|outer| outer != hop) {
            // `owner.field.meth(..)` — an inner hop is always a field
            // projection of some struct, so the union of declared types
            // for that field name bounds the receiver.
            return self.field_types.get(hop.as_str()).cloned();
        }
        if let Some((_, ty)) = cf.binds[caller.1].iter().rev().find(|(n, _)| n == hop) {
            return Some(vec![ty.clone()]);
        }
        if let Some((_, ty)) = cfn.params.iter().find(|(n, _)| n == hop) {
            if ty == crate::parser::PRIM_MARKER {
                return Some(Vec::new()); // slice/primitive: no candidates
            }
            if self.impl_types.contains(ty.as_str()) {
                return Some(vec![ty.clone()]);
            }
            return None; // generic or foreign type: stay wide
        }
        None
    }

    /// Iterates the transitive facts to a fixpoint. Resolution here is
    /// wide (no guard narrowing): narrowing needs guard-scope context,
    /// which only the walker has — the facts are upper bounds, and the
    /// walker applies narrowing at the points where precision matters.
    fn fixpoint(&mut self, _manifest: &Manifest) {
        loop {
            let mut changed = false;
            for fi in 0..self.files.len() {
                let pf = &self.files[fi];
                for ni in 0..pf.fns.len() {
                    if pf.fns[ni].in_test {
                        continue;
                    }
                    for c in &pf.calls[ni] {
                        if is_condvar_wait(&c.name) {
                            continue;
                        }
                        for (tf, tn) in self.resolve(c, (fi, ni), None, None) {
                            // Split-borrow via cloning the (tiny) callee facts.
                            let callee = self.facts[tf][tn].clone();
                            let fact = &mut self.facts[fi][ni];
                            if callee.may_block && !fact.may_block {
                                fact.may_block = true;
                                fact.block_witness = Some(format!(
                                    "`{}` → {}",
                                    c.name,
                                    callee.block_witness.as_deref().unwrap_or("?")
                                ));
                                changed = true;
                            }
                            if callee.may_hard_block && !fact.may_hard_block {
                                fact.may_hard_block = true;
                                fact.hard_witness = Some(format!(
                                    "`{}` → {}",
                                    c.name,
                                    callee.hard_witness.as_deref().unwrap_or("?")
                                ));
                                changed = true;
                            }
                            if !c.under_barrier && callee.may_panic && !fact.may_panic {
                                fact.may_panic = true;
                                fact.panic_witness = Some(format!(
                                    "`{}` → {}",
                                    c.name,
                                    callee.panic_witness.as_deref().unwrap_or("?")
                                ));
                                changed = true;
                            }
                            for a in &callee.acquires {
                                if !fact.acquires.contains(a) {
                                    fact.acquires.push(a.clone());
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Facts for one fn.
    pub fn fact(&self, id: FnId) -> &FnFacts {
        &self.facts[id.0][id.1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest;

    fn graph_of(srcs: &[(&str, &str)]) -> (Vec<ParsedFile>, Manifest) {
        let m = manifest::parse(manifest::DEFAULT_MANIFEST).unwrap();
        let files: Vec<ParsedFile> = srcs
            .iter()
            .map(|(p, s)| crate::parser::parse(p, crate::lexer::lex(s), &m.barriers))
            .collect();
        (files, m)
    }

    #[test]
    fn blocking_propagates_transitively_with_witness() {
        let (files, m) = graph_of(&[(
            "crates/net/src/x.rs",
            "fn leaf(s: &mut S) { s.sock.write_all(b\"x\"); }\n\
             fn mid(s: &mut S) { leaf(s); }\n\
             fn top(s: &mut S) { mid(s); }\n",
        )]);
        let g = Graph::build(&files, &m);
        assert!(g.fact((0, 2)).may_block);
        let w = g.fact((0, 2)).block_witness.clone().unwrap();
        assert!(w.contains("mid") && w.contains("write_all"), "{w}");
    }

    #[test]
    fn forwarding_cutoff_stops_self_name_recursion() {
        let (files, m) = graph_of(&[(
            "crates/net/src/x.rs",
            "fn handle(h: &H) { h.inner.handle(); }\n\
             fn other(h: &H) { h.handle(); }\n",
        )]);
        let g = Graph::build(&files, &m);
        // `handle` calling `.handle()` resolves to nothing (cutoff),
        // `other` calling `.handle()` resolves to `handle`.
        assert!(!g.fact((0, 0)).may_block);
        let call = files[0].calls[1].iter().find(|c| c.name == "handle").unwrap();
        assert_eq!(g.resolve(call, (0, 1), None, None).len(), 1);
        assert!(g.resolve(call, (0, 0), None, None).is_empty());
    }

    #[test]
    fn panic_barrier_blocks_propagation() {
        let (files, m) = graph_of(&[(
            "crates/net/src/x.rs",
            "fn danger(x: Option<u8>) { x.unwrap(); }\n\
             fn guarded() { catch_unwind(|| danger(None)); }\n\
             fn exposed() { danger(None); }\n",
        )]);
        let g = Graph::build(&files, &m);
        assert!(g.fact((0, 0)).may_panic);
        assert!(!g.fact((0, 1)).may_panic, "barrier must contain the panic");
        assert!(g.fact((0, 2)).may_panic);
    }

    #[test]
    fn acquires_cross_crate_and_test_fns_excluded() {
        let (files, m) = graph_of(&[
            (
                "crates/core/src/shard.rs",
                "impl S { fn lock_front(&self) { self.front.lock(); } }\n\
                 #[cfg(test)]\nmod tests { fn t() { takes_locks(); } }\n",
            ),
            ("crates/net/src/y.rs", "fn takes_locks(s: &S) { s.lock_front(); }\n"),
        ]);
        let g = Graph::build(&files, &m);
        assert_eq!(g.fact((0, 0)).acquires, vec!["front".to_string()]);
        assert_eq!(g.fact((1, 0)).acquires, vec!["front".to_string()]);
    }

    #[test]
    fn narrowing_restricts_to_impl_type() {
        let (files, m) = graph_of(&[(
            "crates/net/src/x.rs",
            "impl A { fn work(&self) { std::thread::sleep(d); } }\n\
             impl B { fn work(&self) {} }\n\
             fn call<T>(b: &T) { b.work(); }\n",
        )]);
        let g = Graph::build(&files, &m);
        let call = files[0].calls[2].iter().find(|c| c.name == "work").unwrap();
        assert_eq!(g.resolve(call, (0, 2), None, None).len(), 2);
        let narrowed = g.resolve(call, (0, 2), Some("B"), None);
        assert_eq!(narrowed.len(), 1);
        assert!(!g.fact(narrowed[0]).may_block);
    }

    #[test]
    fn derived_narrowing_qualifier_field_and_binding() {
        let (files, m) = graph_of(&[(
            "crates/net/src/x.rs",
            "struct S { dev: Disk }\n\
             impl Disk { fn new() -> Disk { Disk } fn spin(&self) { std::thread::sleep(d); } }\n\
             impl Tape { fn new() -> Tape { assert!(false); Tape } fn spin(&self) {} }\n\
             impl S {\n\
               fn a(&self) { self.dev.spin(); }\n\
               fn b(&self) { let t = Tape::new(); t.spin(); }\n\
               fn c(&self) { Disk::new(); }\n\
               fn d(&self, x: &X) { x.spin(); }\n\
             }\n",
        )]);
        let g = Graph::build(&files, &m);
        let by = |n: &str| files[0].fns.iter().position(|f| f.name == n).unwrap();
        let call_in = |ni: usize, name: &str| {
            files[0].calls[ni].iter().find(|c| c.name == name).unwrap()
        };
        // Field type: self.dev is a Disk — only Disk::spin (blocking).
        let a = g.resolve(call_in(by("a"), "spin"), (0, by("a")), None, None);
        assert_eq!(a.len(), 1);
        assert!(g.fact(a[0]).may_block);
        // Constructor binding: t is a Tape — only Tape::spin (clean).
        let b = g.resolve(call_in(by("b"), "spin"), (0, by("b")), None, None);
        assert_eq!(b.len(), 1);
        assert!(!g.fact(b[0]).may_block);
        // Qualifier: Disk::new, not Tape::new (which panics).
        let c = g.resolve(call_in(by("c"), "new"), (0, by("c")), None, None);
        assert_eq!(c.len(), 1);
        assert!(!g.fact(c[0]).may_panic);
        // Unknown receiver stays wide: both spins are candidates.
        let d = g.resolve(call_in(by("d"), "spin"), (0, by("d")), None, None);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn param_narrowing_prims_impls_and_generics() {
        let (files, m) = graph_of(&[(
            "crates/net/src/x.rs",
            "impl Q { fn len(&self) -> usize { self.q.lock(); 0 } }\n\
             impl Disk { fn spin(&self) { std::thread::sleep(d); } }\n\
             impl Tape { fn spin(&self) {} }\n\
             fn slice_read(buf: &mut [u8]) { buf.len(); }\n\
             fn scalar(n: usize) { n.len(); }\n\
             fn typed(d: &Disk) { d.spin(); }\n\
             fn generic<H>(h: &H) { h.spin(); }\n\
             fn dynamic(h: &dyn Spin) { h.spin(); }\n",
        )]);
        let g = Graph::build(&files, &m);
        let by = |n: &str| files[0].fns.iter().position(|f| f.name == n).unwrap();
        let call_in = |ni: usize, name: &str| {
            files[0].calls[ni].iter().find(|c| c.name == name).unwrap()
        };
        // Slice/primitive params resolve to nothing: `buf.len()` must
        // not widen onto Q's locking `len`.
        let ni = by("slice_read");
        assert!(g.resolve(call_in(ni, "len"), (0, ni), None, None).is_empty());
        assert!(!g.fact((0, ni)).may_block, "slice len() is not Q::len");
        let ni = by("scalar");
        assert!(g.resolve(call_in(ni, "len"), (0, ni), None, None).is_empty());
        // A workspace-impl-typed param narrows to that impl.
        let ni = by("typed");
        let r = g.resolve(call_in(ni, "spin"), (0, ni), None, None);
        assert_eq!(r.len(), 1);
        assert!(g.fact(r[0]).may_block);
        // Generic and trait-object params stay conservatively wide.
        for f in ["generic", "dynamic"] {
            let ni = by(f);
            assert_eq!(g.resolve(call_in(ni, "spin"), (0, ni), None, None).len(), 2, "{f}");
        }
    }

    #[test]
    fn inner_hop_field_projection_narrows_across_files() {
        // `front.stats.record(..)`: `front` is an untyped local, but
        // `stats` has an owner hop to its right, so it must be a field —
        // the workspace declares only `Meter.stats: Hist`, and
        // Hist::record is clean while Matrix::record panics.
        let (files, m) = graph_of(&[
            (
                "crates/net/src/x.rs",
                "struct Meter { stats: Hist }\n\
                 impl Hist { fn record(&mut self, v: u64) {} }\n\
                 impl Matrix { fn record(&mut self, v: u64) { assert!(v > 0); } }\n",
            ),
            (
                "crates/net/src/y.rs",
                "fn tick(&self) { let front = self.lock_front(); front.stats.record(1); }\n\
                 fn loose(&self) { let s = opaque(); s.record(1); }\n",
            ),
        ]);
        let g = Graph::build(&files, &m);
        let call_in = |ni: usize, name: &str| {
            files[1].calls[ni].iter().find(|c| c.name == name).unwrap()
        };
        let r = g.resolve(call_in(0, "record"), (1, 0), None, None);
        assert_eq!(r.len(), 1, "field projection narrows to Hist::record");
        assert!(!g.fact(r[0]).may_panic);
        // A bare untracked local stays wide over both impls.
        assert_eq!(g.resolve(call_in(1, "record"), (1, 1), None, None).len(), 2);
    }
}
