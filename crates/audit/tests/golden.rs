//! Golden end-to-end tests for dgs-audit.
//!
//! Each fixture under `tests/fixtures/` is audited *as if* it lived at a
//! real in-scope workspace path, and the findings are pinned to exact
//! `(rule, line)` pairs — so a rule that drifts (stops tripping, trips on
//! the wrong line, or leaks out of scope) fails loudly here. The fixtures
//! are `include_str!`ed, never compiled, so they are free to contain the
//! very patterns the rules forbid.

use dgs_audit::config::Config;
use dgs_audit::diagnostics::Finding;
use dgs_audit::{check_files, check_source};

fn audit(pretend_path: &str, src: &str) -> Vec<Finding> {
    check_source(pretend_path, src, &Config::default_for_workspace(), None)
}

/// Audits a multi-file pretend workspace restricted to `only` rules —
/// the call-graph rules are cross-file, so their fixtures need this.
fn audit_files(files: &[(&str, &str)], only: &[&str]) -> Vec<Finding> {
    let files: Vec<(String, String)> =
        files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect();
    let only: Vec<String> = only.iter().map(|s| s.to_string()).collect();
    check_files(&files, &Config::default_for_workspace(), Some(&only))
}

fn rule_lines(findings: &[Finding]) -> Vec<(&str, u32)> {
    findings.iter().map(|f| (f.rule.as_str(), f.line)).collect()
}

#[test]
fn nan_ordering_trips_on_calls_not_partial_ord_impls() {
    let f = audit("crates/sparsify/src/golden.rs", include_str!("fixtures/nan_ordering.rs"));
    assert_eq!(rule_lines(&f), vec![("nan-ordering", 5)], "{f:?}");
    assert!(f[0].message.contains("total_cmp"));
}

#[test]
fn determinism_trips_on_hash_collections_and_clock_reads_only() {
    let f = audit("crates/core/src/server.rs", include_str!("fixtures/determinism.rs"));
    assert_eq!(
        rule_lines(&f),
        vec![("determinism", 3), ("determinism", 9), ("determinism", 13)],
        "{f:?}"
    );
    // An `Instant` stored as data (lines 4 and 7) must not trip.
    assert!(f[2].message.contains("Instant::now"));
}

#[test]
fn no_panic_io_exempts_test_modules_and_unwrap_or() {
    let f = audit("crates/net/src/transport.rs", include_str!("fixtures/no_panic_io.rs"));
    assert_eq!(rule_lines(&f), vec![("no-panic-io", 3), ("no-panic-io", 8)], "{f:?}");
}

#[test]
fn truncating_cast_trips_on_int_targets_outside_tests() {
    let f = audit("crates/net/src/codec.rs", include_str!("fixtures/no_truncating_cast.rs"));
    assert_eq!(rule_lines(&f), vec![("no-truncating-cast", 3)], "{f:?}");
    assert!(f[0].message.contains("try_from"));
}

#[test]
fn unsafe_outside_budget_trips_even_with_safety_comment() {
    let f = audit("crates/core/src/server.rs", include_str!("fixtures/unsafe_outside.rs"));
    assert_eq!(rule_lines(&f), vec![("unsafe-budget", 4)], "{f:?}");
    assert!(f[0].message.contains("outside the budget"));
}

#[test]
fn unsafe_in_tensor_requires_nearby_safety_comment() {
    let f = audit("crates/tensor/src/simd.rs", include_str!("fixtures/unsafe_tensor.rs"));
    assert_eq!(rule_lines(&f), vec![("unsafe-budget", 8)], "{f:?}");
    assert!(f[0].message.contains("SAFETY"));
}

#[test]
fn unsafe_intrinsics_in_crc_simd_budget_need_safety_comments() {
    // Inside the budgeted PCLMULQDQ file: the annotated `unsafe fn` and
    // its annotated body (lines 7/9) pass; the bare intrinsic load with
    // no `// SAFETY:` in reach (line 13) is the pinned finding.
    let f =
        audit("crates/net/src/crc_simd.rs", include_str!("fixtures/unsafe_simd_intrinsic.rs"));
    assert_eq!(rule_lines(&f), vec![("unsafe-budget", 13)], "{f:?}");
    assert!(f[0].message.contains("SAFETY"), "{}", f[0].message);
    // The same intrinsics in any other net file are outside the budget:
    // every `unsafe` is a hard finding, annotated or not.
    let f = audit("crates/net/src/conn.rs", include_str!("fixtures/unsafe_simd_intrinsic.rs"));
    assert_eq!(
        rule_lines(&f),
        vec![("unsafe-budget", 7), ("unsafe-budget", 9), ("unsafe-budget", 13)],
        "{f:?}"
    );
    assert!(f.iter().all(|x| x.message.contains("outside the budget")), "{f:?}");
}

#[test]
fn paired_symbols_flags_unpaired_fns_and_uncovered_variants() {
    let f = audit("crates/net/src/codec.rs", include_str!("fixtures/paired_symbols.rs"));
    // The pretend path is a wire entry file, so the graph tier also sees
    // the fixture's indexing (panic-reach) and its encoder-less
    // wire_bytes (wire-bytes-conservation).
    assert_eq!(
        rule_lines(&f),
        vec![
            ("paired-symbols", 2),
            ("panic-reach", 11),
            ("paired-symbols", 14),
            ("paired-symbols", 20),
            ("wire-bytes-conservation", 24),
        ],
        "{f:?}"
    );
    assert!(f[0].message.contains("decode_ping"), "{}", f[0].message);
    assert!(f[2].message.contains("take_scale"), "{}", f[2].message);
    assert!(f[3].message.contains("Stray"), "{}", f[3].message);
}

#[test]
fn lexer_ignores_strings_comments_and_lifetimes() {
    let f = audit("crates/net/src/transport.rs", include_str!("fixtures/tricky_lexing.rs"));
    // Decoys in strings, raw strings, byte strings, nested block comments,
    // char literals, and a lifetime named 'unwrap must all stay silent.
    assert_eq!(rule_lines(&f), vec![("no-panic-io", 12)], "{f:?}");
}

#[test]
fn waivers_suppress_cover_both_forms_and_rot_is_flagged() {
    let f = audit("crates/net/src/transport.rs", include_str!("fixtures/waiver_cases.rs"));
    assert_eq!(
        rule_lines(&f),
        vec![("waiver", 11), ("no-panic-io", 14), ("waiver", 17), ("waiver", 18)],
        "{f:?}"
    );
    assert!(f[0].message.contains("unused"), "{}", f[0].message);
    assert!(f[2].message.contains("unknown rule"), "{}", f[2].message);
    assert!(f[3].message.contains("justification"), "{}", f[3].message);
}

#[test]
fn clean_fixture_passes_under_every_scope_path() {
    let src = include_str!("fixtures/clean.rs");
    for path in [
        "crates/net/src/codec.rs",
        "crates/core/src/server.rs",
        "crates/sparsify/src/lib.rs",
        "crates/psim/src/des.rs",
        "crates/tensor/src/simd.rs",
    ] {
        let f = audit(path, src);
        assert!(f.is_empty(), "{path}: {f:?}");
    }
}

#[test]
fn compute_tier_scopes_cover_gemm_and_pool() {
    let src = include_str!("fixtures/compute_tier.rs");
    // In the blocked-GEMM file: hash-iteration trips determinism, but the
    // float comparator stays quiet (gemm is not a nan-ordering scope).
    let f = audit("crates/tensor/src/gemm.rs", src);
    assert_eq!(rule_lines(&f), vec![("determinism", 4), ("determinism", 6)], "{f:?}");
    // In the pooling file both scopes apply: the partial_cmp argmax is the
    // exact bug the max-pool tie-break contract forbids.
    let f = audit("crates/tensor/src/pool.rs", src);
    assert_eq!(
        rule_lines(&f),
        vec![("determinism", 4), ("determinism", 6), ("nan-ordering", 14)],
        "{f:?}"
    );
    assert!(f[2].message.contains("total_cmp"), "{}", f[2].message);
    // The wrapper file stays out of every compute-tier scope.
    let f = audit("crates/tensor/src/matmul.rs", src);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn rules_stay_inside_their_scopes() {
    // The nan_ordering fixture trips in sparsify but crates/bench is out
    // of every scope except unsafe-budget (which it does not trip).
    let f = audit("crates/bench/src/golden.rs", include_str!("fixtures/nan_ordering.rs"));
    assert!(f.is_empty(), "{f:?}");
}

// ---------------------------------------------------------------------------
// Call-graph tier (DESIGN.md §8): lock-order, no-blocking-under-lock,
// panic-reach, wire-bytes-conservation.

#[test]
fn lock_order_cycles_are_unwaivable() {
    let f = audit_files(
        &[("crates/core/src/shard.rs", include_str!("fixtures/lock_order_cycle.rs"))],
        &["lock-order"],
    );
    assert_eq!(
        rule_lines(&f),
        vec![("lock-order", 5), ("lock-order", 10), ("lock-order", 15)],
        "{f:?}"
    );
    assert!(f.iter().all(|x| !x.waivable), "{f:?}");
    assert!(f[0].message.contains("deadlock on the same thread"), "{}", f[0].message);
    assert!(f[2].message.contains("two threads can deadlock"), "{}", f[2].message);
}

#[test]
fn lock_order_rank_violations_are_waivable_and_decoys_stay_quiet() {
    let f = audit_files(
        &[("crates/core/src/shard.rs", include_str!("fixtures/lock_order_violation.rs"))],
        &["lock-order"],
    );
    // Line 5: shard then front. Line 17: the `let s = 1u8;` shadow does
    // NOT release the shard guard, so the front acquisition still trips.
    // The drop() decoy (line 11) must not.
    assert_eq!(rule_lines(&f), vec![("lock-order", 5), ("lock-order", 17)], "{f:?}");
    assert!(f.iter().all(|x| x.waivable), "{f:?}");
    assert!(f[0].message.contains("violates the declared order"), "{}", f[0].message);
}

#[test]
fn lock_order_clean_nesting_passes() {
    let f = audit_files(
        &[("crates/core/src/shard.rs", include_str!("fixtures/lock_order_clean.rs"))],
        &["lock-order"],
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn blocking_under_lock_direct_transitive_and_shadow_but_not_drop() {
    let f = audit_files(
        &[("crates/core/src/shard.rs", include_str!("fixtures/blocking_under_lock.rs"))],
        &["no-blocking-under-lock"],
    );
    assert_eq!(
        rule_lines(&f),
        vec![
            ("no-blocking-under-lock", 5),
            ("no-blocking-under-lock", 10),
            ("no-blocking-under-lock", 21),
        ],
        "{f:?}"
    );
    assert!(f[0].message.contains("blocking call `sleep`"), "{}", f[0].message);
    assert!(f[1].message.contains("`linger` may block"), "{}", f[1].message);
}

#[test]
fn blocking_exempt_class_allows_upstream_io() {
    let f = audit_files(
        &[("crates/net/src/edge.rs", include_str!("fixtures/blocking_allowed_edge.rs"))],
        &["no-blocking-under-lock"],
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn poller_file_bans_parking_even_without_a_guard() {
    let f = audit_files(
        &[("crates/net/src/event_loop.rs", include_str!("fixtures/poller_parking.rs"))],
        &["no-blocking-under-lock"],
    );
    // `rx.recv()` parks; `poller.wait()` is the allow-listed epoll wait.
    assert_eq!(rule_lines(&f), vec![("no-blocking-under-lock", 3)], "{f:?}");
    assert!(f[0].message.contains("parking call `recv`"), "{}", f[0].message);
}

#[test]
fn panic_reach_crosses_files_and_respects_barriers_and_tests() {
    let f = audit_files(
        &[
            ("crates/net/src/conn.rs", include_str!("fixtures/panic_reach_entry.rs")),
            ("crates/net/src/wire_util.rs", include_str!("fixtures/panic_reach_helper.rs")),
        ],
        &["panic-reach"],
    );
    // Line 3: cross-file call into an expect(). Line 6: subscript in the
    // entry file. Line 9: assert_eq! in the entry file. Line 16: dyn-widened
    // call where one impl panics. The catch_unwind closure (line 12) and
    // the #[cfg(test)] subscript (line 21) must stay quiet.
    let entry = "crates/net/src/conn.rs";
    assert!(f.iter().all(|x| x.path == entry), "{f:?}");
    assert_eq!(
        rule_lines(&f),
        vec![
            ("panic-reach", 3),
            ("panic-reach", 6),
            ("panic-reach", 9),
            ("panic-reach", 16),
        ],
        "{f:?}"
    );
    assert!(f[0].message.contains("decode_header"), "{}", f[0].message);
    assert!(f[1].message.contains("indexing"), "{}", f[1].message);
}

#[test]
fn panic_reach_total_parsers_pass() {
    let f = audit_files(
        &[("crates/net/src/conn.rs", include_str!("fixtures/panic_reach_clean.rs"))],
        &["panic-reach"],
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn panic_reach_ignores_non_entry_files() {
    // The same panicking helper audited alone is out of the entry set.
    let f = audit_files(
        &[("crates/net/src/wire_util.rs", include_str!("fixtures/panic_reach_helper.rs"))],
        &["panic-reach"],
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn wire_bytes_flags_only_the_disagreeing_arm() {
    let f = audit_files(
        &[("crates/net/src/codec.rs", include_str!("fixtures/wire_bytes_mismatch.rs"))],
        &["wire-bytes-conservation"],
    );
    // Ping/Data/Nested arms reconcile; Status costs 1 tag byte but the
    // encoder emits tag + payload = 2.
    assert_eq!(rule_lines(&f), vec![("wire-bytes-conservation", 15)], "{f:?}");
    assert!(f[0].message.contains("accounts 1 fixed bytes"), "{}", f[0].message);
    assert!(f[0].message.contains("emits 2 fixed bytes"), "{}", f[0].message);
}

#[test]
fn wire_bytes_flags_raw_writes_bare_counts_and_uncosted_variants() {
    let f = audit_files(
        &[("crates/net/src/codec.rs", include_str!("fixtures/wire_bytes_gaps.rs"))],
        &["wire-bytes-conservation"],
    );
    // Line 5: `Silent` never costed. Line 10: bare `2` instead of a named
    // const. Line 11: Blob's per-element cost vs an uncosted raw write.
    // Line 21: the raw `extend_from_slice` itself.
    assert_eq!(
        rule_lines(&f),
        vec![
            ("wire-bytes-conservation", 5),
            ("wire-bytes-conservation", 10),
            ("wire-bytes-conservation", 11),
            ("wire-bytes-conservation", 21),
        ],
        "{f:?}"
    );
    assert!(f[0].message.contains("not costed"), "{}", f[0].message);
    assert!(f[1].message.contains("bare byte count"), "{}", f[1].message);
    assert!(f[3].message.contains("raw buffer write"), "{}", f[3].message);
}

#[test]
fn wire_bytes_pairs_arms_in_both_directions() {
    let f = audit_files(
        &[("crates/net/src/codec.rs", include_str!("fixtures/wire_bytes_missing_arms.rs"))],
        &["wire-bytes-conservation"],
    );
    // Line 5: `Emitted` uncosted. Line 10: `Costed` has no encoder arm.
    // Line 16: `Emitted` encoded but never costed.
    assert_eq!(
        rule_lines(&f),
        vec![
            ("wire-bytes-conservation", 5),
            ("wire-bytes-conservation", 10),
            ("wire-bytes-conservation", 16),
        ],
        "{f:?}"
    );
    assert!(f[1].message.contains("no arm encoding it"), "{}", f[1].message);
    assert!(f[2].message.contains("no arm costing it"), "{}", f[2].message);
}

#[test]
fn diagnostics_render_rustc_style() {
    let f = audit("crates/sparsify/src/golden.rs", include_str!("fixtures/nan_ordering.rs"));
    let text = f[0].to_string();
    assert!(text.starts_with("error[dgs::nan-ordering]:"), "{text}");
    assert!(text.contains("--> crates/sparsify/src/golden.rs:5:"), "{text}");
}
