//! Golden end-to-end tests for dgs-audit.
//!
//! Each fixture under `tests/fixtures/` is audited *as if* it lived at a
//! real in-scope workspace path, and the findings are pinned to exact
//! `(rule, line)` pairs — so a rule that drifts (stops tripping, trips on
//! the wrong line, or leaks out of scope) fails loudly here. The fixtures
//! are `include_str!`ed, never compiled, so they are free to contain the
//! very patterns the rules forbid.

use dgs_audit::check_source;
use dgs_audit::config::Config;
use dgs_audit::diagnostics::Finding;

fn audit(pretend_path: &str, src: &str) -> Vec<Finding> {
    check_source(pretend_path, src, &Config::default_for_workspace(), None)
}

fn rule_lines(findings: &[Finding]) -> Vec<(&str, u32)> {
    findings.iter().map(|f| (f.rule.as_str(), f.line)).collect()
}

#[test]
fn nan_ordering_trips_on_calls_not_partial_ord_impls() {
    let f = audit("crates/sparsify/src/golden.rs", include_str!("fixtures/nan_ordering.rs"));
    assert_eq!(rule_lines(&f), vec![("nan-ordering", 5)], "{f:?}");
    assert!(f[0].message.contains("total_cmp"));
}

#[test]
fn determinism_trips_on_hash_collections_and_clock_reads_only() {
    let f = audit("crates/core/src/server.rs", include_str!("fixtures/determinism.rs"));
    assert_eq!(
        rule_lines(&f),
        vec![("determinism", 3), ("determinism", 9), ("determinism", 13)],
        "{f:?}"
    );
    // An `Instant` stored as data (lines 4 and 7) must not trip.
    assert!(f[2].message.contains("Instant::now"));
}

#[test]
fn no_panic_io_exempts_test_modules_and_unwrap_or() {
    let f = audit("crates/net/src/transport.rs", include_str!("fixtures/no_panic_io.rs"));
    assert_eq!(rule_lines(&f), vec![("no-panic-io", 3), ("no-panic-io", 8)], "{f:?}");
}

#[test]
fn truncating_cast_trips_on_int_targets_outside_tests() {
    let f = audit("crates/net/src/codec.rs", include_str!("fixtures/no_truncating_cast.rs"));
    assert_eq!(rule_lines(&f), vec![("no-truncating-cast", 3)], "{f:?}");
    assert!(f[0].message.contains("try_from"));
}

#[test]
fn unsafe_outside_budget_trips_even_with_safety_comment() {
    let f = audit("crates/core/src/server.rs", include_str!("fixtures/unsafe_outside.rs"));
    assert_eq!(rule_lines(&f), vec![("unsafe-budget", 4)], "{f:?}");
    assert!(f[0].message.contains("outside the budget"));
}

#[test]
fn unsafe_in_tensor_requires_nearby_safety_comment() {
    let f = audit("crates/tensor/src/simd.rs", include_str!("fixtures/unsafe_tensor.rs"));
    assert_eq!(rule_lines(&f), vec![("unsafe-budget", 8)], "{f:?}");
    assert!(f[0].message.contains("SAFETY"));
}

#[test]
fn paired_symbols_flags_unpaired_fns_and_uncovered_variants() {
    let f = audit("crates/net/src/codec.rs", include_str!("fixtures/paired_symbols.rs"));
    assert_eq!(
        rule_lines(&f),
        vec![("paired-symbols", 2), ("paired-symbols", 14), ("paired-symbols", 20)],
        "{f:?}"
    );
    assert!(f[0].message.contains("decode_ping"), "{}", f[0].message);
    assert!(f[1].message.contains("take_scale"), "{}", f[1].message);
    assert!(f[2].message.contains("Stray"), "{}", f[2].message);
}

#[test]
fn lexer_ignores_strings_comments_and_lifetimes() {
    let f = audit("crates/net/src/transport.rs", include_str!("fixtures/tricky_lexing.rs"));
    // Decoys in strings, raw strings, byte strings, nested block comments,
    // char literals, and a lifetime named 'unwrap must all stay silent.
    assert_eq!(rule_lines(&f), vec![("no-panic-io", 12)], "{f:?}");
}

#[test]
fn waivers_suppress_cover_both_forms_and_rot_is_flagged() {
    let f = audit("crates/net/src/transport.rs", include_str!("fixtures/waiver_cases.rs"));
    assert_eq!(
        rule_lines(&f),
        vec![("waiver", 11), ("no-panic-io", 14), ("waiver", 17), ("waiver", 18)],
        "{f:?}"
    );
    assert!(f[0].message.contains("unused"), "{}", f[0].message);
    assert!(f[2].message.contains("unknown rule"), "{}", f[2].message);
    assert!(f[3].message.contains("justification"), "{}", f[3].message);
}

#[test]
fn clean_fixture_passes_under_every_scope_path() {
    let src = include_str!("fixtures/clean.rs");
    for path in [
        "crates/net/src/codec.rs",
        "crates/core/src/server.rs",
        "crates/sparsify/src/lib.rs",
        "crates/psim/src/des.rs",
        "crates/tensor/src/simd.rs",
    ] {
        let f = audit(path, src);
        assert!(f.is_empty(), "{path}: {f:?}");
    }
}

#[test]
fn rules_stay_inside_their_scopes() {
    // The nan_ordering fixture trips in sparsify but crates/bench is out
    // of every scope except unsafe-budget (which it does not trip).
    let f = audit("crates/bench/src/golden.rs", include_str!("fixtures/nan_ordering.rs"));
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn diagnostics_render_rustc_style() {
    let f = audit("crates/sparsify/src/golden.rs", include_str!("fixtures/nan_ordering.rs"));
    let text = f[0].to_string();
    assert!(text.starts_with("error[dgs::nan-ordering]:"), "{text}");
    assert!(text.contains("--> crates/sparsify/src/golden.rs:5:"), "{text}");
}
