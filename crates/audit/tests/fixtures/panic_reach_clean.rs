//! Golden fixture: total wire-path parsing — no findings.
pub fn read_header(buf: &[u8]) -> Option<u8> {
    buf.first().copied()
}
pub fn tail(buf: &[u8]) -> Option<&[u8]> {
    buf.get(4..)
}
pub fn word(buf: &[u8]) -> Option<u32> {
    let raw = buf.get(0..4)?;
    let mut w = [0u8; 4];
    w.copy_from_slice(raw);
    Some(u32::from_le_bytes(w))
}
