//! Clean fixture: passes every rule under any scope path.
use std::collections::BTreeMap;

pub fn encode_blob(v: &BTreeMap<u32, f32>) -> Vec<u8> {
    let mut out = Vec::new();
    for (k, x) in v {
        out.extend_from_slice(&k.to_le_bytes());
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

pub fn decode_blob(b: &[u8]) -> usize {
    b.len() / 8
}

pub fn order(a: f32, b: f32) -> std::cmp::Ordering {
    a.total_cmp(&b)
}
