//! Trip/pass fixture for `no-panic-io` (audited as if in crates/net/src).
pub fn bad_unwrap(x: Option<u8>) -> u8 {
    x.unwrap()
}

pub fn bad_panic(kind: u8) {
    if kind > 3 {
        panic!("unknown frame kind {kind}");
    }
}

pub fn fine(x: Option<u8>) -> u8 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1u8).unwrap();
    }
}
