//! Golden fixture: rank-order violations (waivable), with decoys.
impl Srv {
    fn wrong_order(&self) {
        let s = self.shards.lock().unwrap();
        let f = self.front.lock().unwrap();
        let _ = (s, f);
    }
    fn drop_decoy(&self) {
        let s = self.shards.lock().unwrap();
        drop(s);
        let f = self.front.lock().unwrap();
        let _ = f;
    }
    fn shadow_decoy(&self) {
        let s = self.shards.lock().unwrap();
        let s = 1u8;
        let f = self.front.lock().unwrap();
        let _ = (s, f);
    }
}
