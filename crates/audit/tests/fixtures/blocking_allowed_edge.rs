//! Golden fixture: edge-upstream is declared blocking-exempt.
impl Edge {
    fn exchange(&self) {
        let up = self.upstream.lock().unwrap();
        std::thread::sleep(self.pause);
        let _ = up;
    }
}
