//! Golden fixture: blocking while a guard is live, with decoys.
impl Srv {
    fn direct(&self) {
        let f = self.front.lock().unwrap();
        std::thread::sleep(self.pause);
        let _ = f;
    }
    fn transitive(&self) {
        let f = self.front.lock().unwrap();
        linger();
        let _ = f;
    }
    fn drop_decoy(&self) {
        let f = self.front.lock().unwrap();
        drop(f);
        std::thread::sleep(self.pause);
    }
    fn shadow_decoy(&self) {
        let f = self.front.lock().unwrap();
        let f = 1u8;
        std::thread::sleep(self.pause);
        let _ = f;
    }
}
fn linger() {
    std::thread::sleep(core::time::Duration::from_millis(1));
}
