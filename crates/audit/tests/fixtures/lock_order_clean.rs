//! Golden fixture: the declared order honoured — no findings.
impl Srv {
    fn nested(&self) {
        let f = self.front.lock().unwrap();
        let s = self.shards.lock().unwrap();
        let _ = (f, s);
    }
    fn sequential(&self) {
        let f = self.front.lock().unwrap();
        drop(f);
        let s = self.shards.lock().unwrap();
        drop(s);
    }
}
