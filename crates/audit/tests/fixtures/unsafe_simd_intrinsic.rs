//! Trip/pass fixture for `unsafe-budget` over explicit SIMD intrinsics
//! in the PCLMULQDQ folding backend's budgeted file.

// SAFETY: callers check `pclmulqdq` support before taking this path;
// the target_feature contract is the only obligation.
#[target_feature(enable = "pclmulqdq")]
unsafe fn fold16(a: __m128i, k: __m128i) -> __m128i {
    // SAFETY: register-only carry-less multiply, no memory access.
    unsafe { _mm_xor_si128(_mm_clmulepi64_si128::<0x00>(a, k), a) }
}

pub fn digest_head(data: &[u8]) -> u32 {
    let v = unsafe { _mm_loadu_si128(data.as_ptr().cast()) };
    let _ = v;
    0
}
