//! Golden fixture: unaccounted traffic and uncosted variants.
pub enum Gap {
    Fixed,
    Blob(Vec<u8>),
    Silent(u8),
}
impl Gap {
    pub fn wire_bytes(&self) -> usize {
        match self {
            Gap::Fixed => 2,
            Gap::Blob(b) => b.len(),
        }
    }
}
pub fn encode_gap(g: &Gap, w: &mut Wire) {
    match g {
        Gap::Fixed => {
            w.put_u16(7);
        }
        Gap::Blob(b) => {
            w.extend_from_slice(b);
        }
    }
}
