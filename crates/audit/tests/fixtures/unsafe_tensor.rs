//! Trip/pass fixture for `unsafe-budget` inside the budget.
pub fn documented(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` points to a live byte.
    unsafe { *p }
}

pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p }
}
