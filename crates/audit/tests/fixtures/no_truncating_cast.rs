//! Trip/pass fixture for `no-truncating-cast` (audited as if codec.rs).
pub fn bad_len(n: usize) -> u32 {
    n as u32
}

pub fn good_len(n: usize) -> Result<u32, &'static str> {
    u32::try_from(n).map_err(|_| "too large")
}

pub fn float_target_is_fine(x: u32) -> f64 {
    x as f64
}

#[cfg(test)]
mod tests {
    #[test]
    fn casts_in_tests_are_exempt() {
        let _ = 300usize as u8;
    }
}
