//! Golden fixture helper: panic sources outside the entry set.
pub fn decode_header(buf: &[u8]) -> u8 {
    buf.first().copied().expect("empty frame")
}
pub struct Quiet;
impl Quiet {
    pub fn consume(&self, _buf: &[u8]) {}
}
pub struct Loud;
impl Loud {
    pub fn consume(&self, buf: &[u8]) {
        panic!("bad frame of {} bytes", buf.len());
    }
}
