//! Trip fixture for `unsafe-budget` outside the budget.
pub fn read_raw(p: *const u8) -> u8 {
    // SAFETY: a comment does not buy a budget exemption outside tensor.
    unsafe { *p }
}
