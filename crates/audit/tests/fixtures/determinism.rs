//! Trip/pass fixture for `determinism` (audited as if in crates/core/src).
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::time::Instant;

pub struct Trace {
    pub started: Instant,
    pub applied: BTreeMap<u64, u32>,
    pub seen: HashMap<u64, u32>,
}

pub fn stamp() -> Instant {
    Instant::now()
}
