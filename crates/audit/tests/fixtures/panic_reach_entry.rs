//! Golden fixture: wire-path panic reachability, with decoys.
pub fn read_header(buf: &[u8]) -> u8 {
    decode_header(buf)
}
pub fn first_byte(buf: &[u8]) -> u8 {
    buf[0]
}
pub fn checked(buf: &[u8]) {
    assert_eq!(buf.len(), 4);
}
pub fn contained(buf: &[u8]) -> u8 {
    let r = std::panic::catch_unwind(|| decode_header(buf));
    r.unwrap_or(0)
}
pub fn widened(h: &dyn Sink, buf: &[u8]) {
    h.consume(buf);
}
#[cfg(test)]
mod tests {
    pub fn in_tests(buf: &[u8]) -> u8 {
        buf[1]
    }
}
