//! Trip/pass fixture for `paired-symbols` (audited as if codec.rs).
pub fn encode_ping(x: u8) -> Vec<u8> {
    vec![x]
}

pub fn encode_pong_payload(x: u8) -> Vec<u8> {
    vec![x]
}

pub fn decode_pong(b: &[u8]) -> u8 {
    b[0]
}

pub fn put_scale(buf: &mut Vec<u8>, s: f32) {
    buf.extend_from_slice(&s.to_le_bytes());
}

pub enum PingMsg {
    Hello,
    Stray(u8),
}

impl PingMsg {
    pub fn wire_bytes(&self) -> usize {
        match self {
            PingMsg::Hello => 1,
            _ => 2,
        }
    }
}
