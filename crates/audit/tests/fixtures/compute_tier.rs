//! Trip/pass fixture for the compute-tier scopes (audited as if in
//! crates/tensor/src/gemm.rs or pool.rs): the blocked GEMM and pooling
//! files are inside determinism, and pool.rs also inside nan-ordering.
use std::collections::HashMap;

pub fn pick_panel_order(costs: &HashMap<usize, u64>) -> Vec<usize> {
    costs.keys().copied().collect()
}

pub fn argmax_bad(plane: &[f32]) -> usize {
    plane
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0)
}

pub fn argmax_good(plane: &[f32]) -> usize {
    plane.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap_or(0)
}
