//! Lexer-hardening fixture: everything here is a decoy except line 12.
pub const DECOY_STR: &str = "x.unwrap() and panic!(\"boom\") in a string";
pub const DECOY_RAW: &str = r#"y.expect("nope") and 1usize as u32"#;
pub const DECOY_BYTES: &[u8] = br"z.unwrap()";
/* nested /* block comment: w.unwrap() */ still a comment */
pub const QUOTE: char = '\'';
pub const NEWLINE: char = '\n';
pub fn generic<'unwrap>(x: &'unwrap u8) -> u8 {
    *x
}
pub fn genuine(x: Option<u8>) -> u8 {
    x.unwrap()
}
