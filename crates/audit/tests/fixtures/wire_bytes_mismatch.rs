//! Golden fixture: wire_bytes vs encoder disagreement on one arm.
const TAG: usize = 1;
pub enum Pkt {
    Ping,
    Data(Vec<f32>),
    Nested(Inner),
    Status(u8),
}
impl Pkt {
    pub fn wire_bytes(&self) -> usize {
        match self {
            Pkt::Ping => TAG,
            Pkt::Data(v) => TAG + 4 * v.len(),
            Pkt::Nested(x) => TAG + x.wire_bytes(),
            Pkt::Status(_) => TAG,
        }
    }
}
pub fn encode_pkt(p: &Pkt, w: &mut Wire) {
    match p {
        Pkt::Ping => {
            w.put_u8(0);
        }
        Pkt::Data(v) => {
            w.put_u8(1);
            w.put_f32s(v);
        }
        Pkt::Nested(x) => {
            w.put_u8(2);
            w.put_sparse(x);
        }
        Pkt::Status(s) => {
            w.put_u8(3);
            w.put_u8(*s);
        }
    }
}
