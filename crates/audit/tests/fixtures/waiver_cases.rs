//! Waiver-handling fixture: same-line, line-above, unused, malformed.
pub fn waived_same_line(x: Option<u8>) -> u8 {
    x.unwrap() // dgs::allow(no-panic-io): golden fixture, same-line form
}

pub fn waived_line_above(x: Option<u8>) -> u8 {
    // dgs::allow(no-panic-io): golden fixture, line-above form
    x.unwrap()
}

// dgs::allow(no-panic-io): covers nothing, must surface as unused

pub fn not_covered(x: Option<u8>) -> u8 {
    x.unwrap()
}

// dgs::allow(no-such-rule): unknown rule names are rejected
// dgs::allow(no-panic-io)
