//! Golden fixture: a costed arm with no encoder, and vice versa.
const HDR: usize = 2;
pub enum Half {
    Costed,
    Emitted,
}
impl Half {
    pub fn wire_bytes(&self) -> usize {
        match self {
            Half::Costed => HDR,
        }
    }
}
pub fn encode_half(h: &Half, w: &mut Wire) {
    match h {
        Half::Emitted => {
            w.put_u16(9);
        }
    }
}
