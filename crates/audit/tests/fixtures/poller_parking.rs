//! Golden fixture: the poller thread must never park.
fn drain(rx: &Receiver<u8>) {
    let x = rx.recv();
    let _ = x;
}
fn tick(poller: &Poller) {
    poller.wait();
}
