//! Golden fixture: lock-order cycles are unwaivable.
impl Srv {
    fn self_cycle(&self) {
        let a = self.front.lock().unwrap();
        let b = self.front.lock().unwrap();
        let _ = (a, b);
    }
    fn forward(&self) {
        let f = self.front.lock().unwrap();
        let s = self.shards.lock().unwrap();
        let _ = (f, s);
    }
    fn backward(&self) {
        let s = self.shards.lock().unwrap();
        let f = self.front.lock().unwrap();
        let _ = (s, f);
    }
}
