//! Trip/pass fixture for `nan-ordering` (audited as if in crates/sparsify/src).
pub struct Wrapped(pub f32);

pub fn select_bad(v: &mut [f32]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn select_good(v: &mut [f32]) {
    v.sort_by(|a, b| a.total_cmp(b));
}

impl PartialOrd for Wrapped {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.0.total_cmp(&other.0))
    }
}

impl PartialEq for Wrapped {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0).is_eq()
    }
}
