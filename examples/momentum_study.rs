//! Momentum study: demonstrates the paper's §4.3 analysis in isolation.
//!
//! 1. *Momentum disappearing* (Eq. 11-13): under naive sparse momentum the
//!    per-coordinate velocity loses its discounting factor; SAMomentum's
//!    `1/m` rescale makes a sparse interval telescope into exactly one
//!    momentum step (Eq. 16).
//! 2. End-to-end effect: DGS (SAMomentum) vs GD-async (no momentum) vs
//!    DGC-async (momentum correction) at identical sparsity.
//!
//! ```text
//! cargo run --release --example momentum_study
//! ```

use dgs::core::compress::{Compressor, SaMomentumCompressor, StepCtx};
use dgs::core::config::{LrSchedule, TrainConfig};
use dgs::core::method::Method;
use dgs::core::trainer::threaded::train_async;
use dgs::nn::data::{Dataset, SyntheticVision};
use dgs::nn::models::mlp_on_images;
use dgs::sparsify::Partition;
use std::sync::Arc;

fn main() {
    telescoping_demo();
    end_to_end();
}

/// Numerically verifies Eq. 16: after T unsent steps the next transmitted
/// velocity equals `m·u_c + η·Σ∇` — one momentum decay over the whole
/// interval, exactly the enlarged-batch update of Eq. 17.
fn telescoping_demo() {
    let m = 0.7f32;
    let lr = 0.1f32;
    // Coordinate 0 carries a huge gradient (always selected at k=1);
    // coordinate 1 accumulates quietly.
    let mut comp = SaMomentumCompressor::new(2, m);
    let part = Partition::single(2);
    let ctx = StepCtx { lr, ratio: 0.5 };
    comp.compress(&[100.0, 0.5], &part, ctx);
    let u_start = comp.velocity()[1];

    let grads = [0.30f32, -0.10, 0.25, 0.20, 0.15];
    let mut grad_sum = 0.0f32;
    for &g in &grads {
        comp.compress(&[100.0, g], &part, ctx);
        grad_sum += g;
    }
    // The value coordinate 1 would transmit next (with zero new gradient):
    let next_sent = m * comp.velocity()[1];
    let telescoped = m * u_start + lr * grad_sum;
    println!("SAMomentum telescoping (Eq. 16), T = {}:", grads.len());
    println!("  next transmitted value : {next_sent:.6}");
    println!("  m*u_c + lr*sum(grads)  : {telescoped:.6}");
    println!(
        "  difference             : {:.2e}  (pure f32 rounding)\n",
        (next_sent - telescoped).abs()
    );
    assert!((next_sent - telescoped).abs() < 1e-4);
}

/// DGS vs the alternatives at identical sparsity and budget.
fn end_to_end() {
    let seed = 5u64;
    let epochs = 8;
    let workers = 4;
    let data = SyntheticVision::new(1024, 3, 12, 20, 2.2, seed);
    let val: Arc<dyn Dataset> = Arc::new(data.validation(256));
    let train: Arc<dyn Dataset> = Arc::new(data);
    let build = move || mlp_on_images(3, 12, &[128, 64], 20, seed);

    println!("end-to-end at identical sparsity (R = 5%), {workers} workers:");
    println!("{:<12} {:>8}  momentum strategy", "method", "top-1");
    for (method, label) in [
        (Method::GdAsync, "none (residual accumulation only)"),
        (Method::DgcAsync, "vanilla + correction + factor masking"),
        (Method::Dgs, "SAMomentum (1/m rescale, no residuals)"),
    ] {
        let mut cfg = TrainConfig::paper_default(method, workers, epochs);
        cfg.batch_per_worker = 16;
        cfg.lr = LrSchedule::paper_default(0.2, epochs);
        cfg.momentum = 0.3;
        cfg.sparsity_ratio = 0.05;
        cfg.clip_norm = 0.0;
        cfg.seed = seed;
        cfg.evals = 4;
        let res = train_async(&cfg, &build, Arc::clone(&train), Arc::clone(&val));
        println!("{:<12} {:>7.2}%  {label}", method.name(), 100.0 * res.final_acc);
    }
    println!("\nExpected (paper §5.7): DGS > DGC-async > GD-async.");
}
