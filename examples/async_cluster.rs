//! Asynchronous cluster comparison: run all five training methods of the
//! paper on the same synthetic-vision task and report the accuracy
//! ordering, traffic, staleness, and memory placement.
//!
//! ```text
//! cargo run --release --example async_cluster [workers]
//! ```

use dgs::core::config::{LrSchedule, TrainConfig};
use dgs::core::method::Method;
use dgs::core::trainer::single::train_msgd;
use dgs::core::trainer::threaded::train_async;
use dgs::nn::data::{Dataset, SyntheticVision};
use dgs::nn::models::resnet_lite;
use std::sync::Arc;

fn main() {
    let workers: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed = 7u64;
    let epochs = 8;

    // The CIFAR-10 stand-in: procedurally generated class-conditional
    // images (see DESIGN.md for the substitution argument).
    let data = SyntheticVision::new(1024, 3, 12, 20, 2.2, seed);
    let val: Arc<dyn Dataset> = Arc::new(data.validation(256));
    let train: Arc<dyn Dataset> = Arc::new(data);
    let build = move || resnet_lite(3, 12, 20, 6, seed);

    println!("async cluster comparison — {workers} workers, ResNet-lite, {epochs} epochs\n");
    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>10} {:>12}",
        "method", "top-1", "up bytes", "down bytes", "staleness", "server mem"
    );

    for method in Method::ALL {
        let mut cfg = TrainConfig::paper_default(method, workers, epochs);
        cfg.batch_per_worker = 16;
        cfg.lr = LrSchedule::paper_default(0.2, epochs);
        cfg.momentum = if method == Method::Msgd { 0.7 } else { 0.3 };
        cfg.sparsity_ratio = 0.05;
        cfg.clip_norm = 0.0;
        cfg.seed = seed;
        cfg.evals = 4;
        let res = if method == Method::Msgd {
            train_msgd(build(), Arc::clone(&train), Arc::clone(&val), &cfg)
        } else {
            train_async(&cfg, &build, Arc::clone(&train), Arc::clone(&val))
        };
        println!(
            "{:<10} {:>7.2}% {:>12} {:>12} {:>10.2} {:>12}",
            method.name(),
            100.0 * res.final_acc,
            res.bytes_up,
            res.bytes_down,
            res.mean_staleness,
            res.server_tracking_bytes,
        );
    }

    println!(
        "\nExpected ordering (paper Fig. 2 / Table 2): MSGD ≥ DGS > DGC-async > GD-async ≈ ASGD,"
    );
    println!("with DGS traffic orders of magnitude below ASGD's dense exchange.");
}
