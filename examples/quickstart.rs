//! Quickstart: train a model with DGS (dual-way gradient sparsification +
//! SAMomentum) on a synthetic dataset, in a few seconds.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dgs::core::config::{LrSchedule, TrainConfig};
use dgs::core::method::Method;
use dgs::core::trainer::threaded::train_async;
use dgs::nn::data::{Dataset, GaussianBlobs};
use dgs::nn::models::mlp;
use std::sync::Arc;

fn main() {
    // 1. A dataset. Everything is seeded: the same seed reproduces the
    //    same task and samples. `validation()` draws fresh samples from
    //    the same underlying classification problem.
    let blobs = GaussianBlobs::new(1024, 16, 5, 0.4, 42);
    let val: Arc<dyn Dataset> = Arc::new(blobs.validation(256));
    let train: Arc<dyn Dataset> = Arc::new(blobs);

    // 2. A model builder. Every call must return an identically
    //    initialised network — that is how the server and all workers
    //    agree on θ₀.
    let build = || mlp(16, &[64, 32], 5, 42);

    // 3. A configuration: DGS on 4 asynchronous workers, 99% sparsity in
    //    both directions (R = 1%), SAMomentum 0.45.
    let mut cfg = TrainConfig::paper_default(Method::Dgs, 4, 8);
    cfg.batch_per_worker = 16;
    cfg.lr = LrSchedule::paper_default(0.05, 8);
    cfg.momentum = 0.45;
    cfg.sparsity_ratio = 0.01;
    cfg.evals = 8;

    // 4. Train on real threads (one per worker + a parameter server).
    let result = train_async(&cfg, &build, train, val);

    println!("method            : {}", result.method_name());
    println!("final top-1       : {:.2}%", 100.0 * result.final_acc);
    println!("final val loss    : {:.4}", result.final_loss);
    println!("uplink traffic    : {} bytes", result.bytes_up);
    println!("downlink traffic  : {} bytes", result.bytes_down);
    println!("mean staleness    : {:.2}", result.mean_staleness);
    println!();
    println!("epoch  val-acc   train-loss");
    for p in &result.curve {
        println!("{:>5}  {:>6.2}%   {:.4}", p.epoch, 100.0 * p.val_acc, p.train_loss);
    }

    // Compare against dense ASGD: same task, same budget.
    let mut asgd_cfg = cfg.clone();
    asgd_cfg.method = Method::Asgd;
    let blobs = GaussianBlobs::new(1024, 16, 5, 0.4, 42);
    let val: Arc<dyn Dataset> = Arc::new(blobs.validation(256));
    let train: Arc<dyn Dataset> = Arc::new(blobs);
    let asgd = train_async(&asgd_cfg, &build, train, val);
    println!();
    println!(
        "vs ASGD: acc {:.2}% with {}x the traffic",
        100.0 * asgd.final_acc,
        asgd.total_bytes() / result.total_bytes().max(1)
    );
}
