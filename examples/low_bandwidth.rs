//! Low-bandwidth training (the paper's Fig. 5 scenario): 8 workers on a
//! 1 Gbps link, DGS with secondary compression vs dense ASGD, simulated
//! on the deterministic discrete-event engine with a shared server NIC.
//!
//! ```text
//! cargo run --release --example low_bandwidth
//! ```

use dgs::core::config::{LrSchedule, TrainConfig};
use dgs::core::method::Method;
use dgs::core::trainer::des::{train_des, DesParams};
use dgs::nn::data::{Dataset, SyntheticVision};
use dgs::nn::models::mlp_on_images;
use std::sync::Arc;

fn main() {
    let seed = 11u64;
    let epochs = 8;
    let workers = 8;
    let data = SyntheticVision::new(1024, 3, 12, 20, 2.2, seed);
    let val: Arc<dyn Dataset> = Arc::new(data.validation(256));
    let train: Arc<dyn Dataset> = Arc::new(data);
    let build = move || mlp_on_images(3, 12, &[128, 64], 20, seed);

    let run = |method: Method, secondary: bool| {
        let mut cfg = TrainConfig::paper_default(method, workers, epochs);
        cfg.batch_per_worker = 8;
        cfg.lr = LrSchedule::paper_default(0.15, epochs);
        cfg.momentum = 0.3;
        cfg.sparsity_ratio = 0.05;
        cfg.secondary_compression = secondary;
        cfg.clip_norm = 0.0;
        cfg.seed = seed;
        cfg.evals = 8;
        train_des(&cfg, &build, Arc::clone(&train), Arc::clone(&val), DesParams::one_gbps())
    };

    println!("8 workers, 1 Gbps shared server NIC (virtual time)\n");
    let asgd = run(Method::Asgd, false);
    let dgs = run(Method::Dgs, true);

    println!("loss vs virtual time:");
    println!("{:<22} {:>12} {:>12}", "", "ASGD", "DGS+secondary");
    let points = asgd.curve.len().max(dgs.curve.len());
    for i in 0..points {
        let a = asgd.curve.get(i);
        let d = dgs.curve.get(i);
        println!(
            "checkpoint {:>2}: {:>9}s {:>11}  {:>9}s {:>11}",
            i + 1,
            a.map(|p| format!("{:.2}", p.virtual_time)).unwrap_or_default(),
            a.map(|p| format!("loss {:.3}", p.train_loss)).unwrap_or_default(),
            d.map(|p| format!("{:.2}", p.virtual_time)).unwrap_or_default(),
            d.map(|p| format!("loss {:.3}", p.train_loss)).unwrap_or_default(),
        );
    }

    println!(
        "\ntotal virtual time : ASGD {:.1}s vs DGS {:.1}s -> {:.1}x speedup (paper: 5.7x)",
        asgd.virtual_time,
        dgs.virtual_time,
        asgd.virtual_time / dgs.virtual_time
    );
    println!(
        "downlink traffic   : ASGD {} B vs DGS {} B ({}x reduction)",
        asgd.bytes_down,
        dgs.bytes_down,
        asgd.bytes_down / dgs.bytes_down.max(1)
    );
    println!(
        "final accuracy     : ASGD {:.2}% vs DGS {:.2}%",
        100.0 * asgd.final_acc,
        100.0 * dgs.final_acc
    );
}
