//! Straggler study: the paper's §1 motivation made runnable.
//!
//! Synchronous SGD pays the barrier cost of the slowest worker every round;
//! asynchronous training lets fast workers absorb the slack. This example
//! sweeps a single straggler's slowdown and compares SSGD (dense and
//! synchronous gradient dropping) with ASGD and DGS on the deterministic
//! virtual-time simulator.
//!
//! ```text
//! cargo run --release --example straggler_study
//! ```

use dgs::core::config::{LrSchedule, TrainConfig};
use dgs::core::method::Method;
use dgs::core::trainer::des::{train_des_stragglers, DesParams};
use dgs::core::trainer::sync::{train_ssgd, SyncCompression};
use dgs::nn::data::{Dataset, SyntheticVision};
use dgs::nn::models::mlp_on_images;
use dgs::psim::StragglerModel;
use std::sync::Arc;

fn main() {
    let seed = 3u64;
    let workers = 8;
    let epochs = 6;
    let data = SyntheticVision::new(1024, 3, 12, 20, 2.2, seed);
    let val: Arc<dyn Dataset> = Arc::new(data.validation(256));
    let train: Arc<dyn Dataset> = Arc::new(data);
    let build = move || mlp_on_images(3, 12, &[128, 64], 20, seed);
    // Compute-bound regime so worker lag, not bandwidth, is the variable.
    let params = DesParams { worker_gflops: 1.0, ..DesParams::ten_gbps() };

    let base_cfg = || {
        let mut cfg = TrainConfig::paper_default(Method::Dgs, workers, epochs);
        cfg.batch_per_worker = 16;
        cfg.lr = LrSchedule::paper_default(0.2, epochs);
        cfg.momentum = 0.3;
        cfg.sparsity_ratio = 0.05;
        cfg.clip_norm = 0.0;
        cfg.seed = seed;
        cfg.evals = 2;
        cfg
    };

    println!("{workers} workers, one straggler slowed k-fold (virtual seconds)\n");
    println!(
        "{:>8}  {:>12} {:>12} {:>12} {:>12}",
        "slowdown", "SSGD-dense", "SSGD-topk", "ASGD", "DGS"
    );
    for slowdown in [1.0f64, 2.0, 4.0, 8.0] {
        let lag = if slowdown > 1.0 {
            StragglerModel::one_slow(slowdown)
        } else {
            StragglerModel::none()
        };
        let mut row = vec![format!("{slowdown:>7}x")];
        for compression in [SyncCompression::Dense, SyncCompression::TopK { ratio: 0.05 }] {
            let mut cfg = base_cfg();
            cfg.method = Method::Msgd; // cfg.method is ignored by train_ssgd
            let res = train_ssgd(
                &cfg,
                &build,
                Arc::clone(&train),
                Arc::clone(&val),
                compression,
                params,
                &lag,
            );
            row.push(format!("{:>11.2}s", res.virtual_time));
        }
        for method in [Method::Asgd, Method::Dgs] {
            let mut cfg = base_cfg();
            cfg.method = method;
            let res = train_des_stragglers(
                &cfg,
                &build,
                Arc::clone(&train),
                Arc::clone(&val),
                params,
                &lag,
            );
            row.push(format!("{:>11.2}s", res.virtual_time));
        }
        println!("{}", row.join("  "));
    }
    println!("\nSynchronous rounds stretch with the straggler; asynchronous totals barely move");
    println!("because the seven healthy workers absorb the slack (total-budget scheduling).");
}
