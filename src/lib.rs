#![warn(missing_docs)]

//! # dgs — Dual-Way Gradient Sparsification
//!
//! Facade crate for the DGS reproduction (Yan et al., ICPP 2020). Re-exports
//! the workspace crates so downstream users can depend on a single crate:
//!
//! * [`tensor`] — dense f32 tensor kernels (the compute substrate).
//! * [`nn`] — minimal neural-network library with manual backprop.
//! * [`sparsify`] — Top-k sparsification and COO wire encoding.
//! * [`psim`] — parameter-server cluster simulation (threads + DES).
//! * [`core`] — the paper's contribution: model-difference tracking,
//!   SAMomentum, and the baseline asynchronous optimizers.
//! * [`net`] — the wire protocol and transports (loopback + TCP) that run
//!   the same training across processes.
//!
//! See `examples/quickstart.rs` for a two-minute tour.

pub use dgs_core as core;
pub use dgs_net as net;
pub use dgs_nn as nn;
pub use dgs_psim as psim;
pub use dgs_sparsify as sparsify;
pub use dgs_tensor as tensor;
