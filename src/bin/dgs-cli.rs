//! `dgs-cli` — run a DGS training configuration from a JSON file.
//!
//! ```text
//! dgs-cli run <config.json> [--out results.json]
//! dgs-cli serve <config.json> --listen ADDR [--out results.json] [--deadline-secs N]
//!               [--shards S] [--span K/N] [--clients N]
//!               [--io threads|evented] [--max-conns N]
//! dgs-cli edge <config.json> --connect A1,A2,... --listen ADDR --group G
//!              [--base B] [--out stats.json] [--deadline-secs N]
//! dgs-cli work <config.json> (--connect ADDR | --connect-cluster A1,A2,...) --worker K
//! dgs-cli init > config.json          # print an annotated default config
//! dgs-cli methods                     # list methods + technique matrix
//! ```
//!
//! `serve`/`work` run the same training as `run`, but across OS processes
//! over the `dgs-net` TCP transport: one `serve` process hosts the MDT
//! server, and `train.workers` separate `work` processes each drive one
//! training worker. `--shards S` (S > 1) hosts the lock-striped
//! [`ShardedMdtServer`](dgs::core::ShardedMdtServer) instead of the
//! single-lock server: worker connections apply updates concurrently, and
//! the wire traffic stays byte-identical for a given update order.
//! `--io evented` serves every connection from one readiness event loop
//! (`poll(2)`, or epoll with the `net-epoll` feature) instead of one
//! thread per connection — same protocol, same bytes, but it scales to
//! tens of thousands of workers; `--max-conns N` caps concurrent
//! connections (over-budget accepts get an error frame and are counted
//! in the serve-side stats). All processes must load the *same* config file — the
//! TCP handshake fingerprints `θ_0` (CRC-32 of the initial parameters)
//! and rejects workers whose seed/model/dimension drift from the server's.
//!
//! The **multi-process cluster** splits the server across OS processes:
//! `serve --span K/N` hosts span K of an N-process span-sharded cluster
//! (each process owns one contiguous slice of the model; the handshake
//! additionally carries the partition map and the span's θ0 CRC), and
//! `work --connect-cluster A1,...,AN` fans each worker uplink out per
//! span and reassembles the downlink in shard order. `edge` inserts the
//! two-level aggregation tier between them: G workers connect to one
//! edge process (which looks exactly like a single full-model server to
//! them), their uplinks are merged and forwarded upstream as one logical
//! worker, so root ingress scales with the number of groups. With
//! `--listen 127.0.0.1:0`, `serve`/`edge` write the bound address (plus
//! span index and partition-map hash for spans) to `--out` **at bind
//! time**, so launchers can discover ports instead of preassigning them;
//! the file is rewritten with results and wire stats when the run ends.
//! `serve --span ... --clients N` sets how many direct clients (workers,
//! or edge aggregators) the span waits for before finishing.
//!
//! The config file selects a synthetic workload, a model, a training
//! method, and an engine; see [`CliConfig`] for every field. Example:
//!
//! ```json
//! {
//!   "workload": { "kind": "vision", "samples": 1024, "classes": 20,
//!                 "hw": 12, "channels": 3, "noise": 2.2, "val_samples": 256 },
//!   "model": { "kind": "resnet_lite", "width": 6, "hidden": [128, 64] },
//!   "train": { "method": "dgs", "workers": 4, "batch_per_worker": 16,
//!               "epochs": 8, "lr": 0.2, "momentum": 0.3,
//!               "sparsity_ratio": 0.05, "secondary_compression": false,
//!               "quantize_uplink": false, "seed": 42 },
//!   "engine": { "kind": "threads" }
//! }
//! ```

use dgs::core::config::{LrSchedule, TrainConfig};
use dgs::core::curves::RunResult;
use dgs::core::method::Method;
use dgs::core::server::Downlink;
use dgs::core::trainer::des::{train_des, DesParams};
use dgs::core::trainer::single::train_msgd;
use dgs::core::trainer::sharded::build_sharded_participants;
use dgs::core::trainer::threaded::{build_participants, train_async};
use dgs::core::worker::TrainWorker;
use dgs::net::runtime::{
    build_span_logic, cluster_layout, run_worker, serve_training_io, serve_training_sharded_io,
    serve_with_io, theta0_crc, IoConfig, IoMode, EDGE_ROUND_TIMEOUT,
};
use dgs::net::tcp::{serve_cluster, ServerOpts, SpanOpts};
use dgs::net::transport::Tier;
use dgs::net::{assemble_replies, ClusterTransport, EdgeHandler, WireStats};
use dgs::nn::data::{Dataset, GaussianBlobs, SyntheticVision};
use dgs::nn::model::Network;
use dgs::nn::models::{mlp, mlp_on_images, resnet_lite, tiny_cnn};
use dgs::psim::NetworkModel;
use serde::{Deserialize, Serialize};
use std::net::TcpListener;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Workload section of the config file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct WorkloadConfig {
    /// `"vision"` (synthetic images) or `"blobs"` (Gaussian clusters).
    kind: String,
    samples: usize,
    val_samples: usize,
    classes: usize,
    #[serde(default = "default_hw")]
    hw: usize,
    #[serde(default = "default_channels")]
    channels: usize,
    #[serde(default = "default_noise")]
    noise: f32,
    #[serde(default = "default_dim")]
    dim: usize,
}

fn default_hw() -> usize {
    12
}
fn default_channels() -> usize {
    3
}
fn default_noise() -> f32 {
    2.2
}
fn default_dim() -> usize {
    16
}

/// Model section of the config file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ModelConfig {
    /// `"resnet_lite"`, `"tiny_cnn"`, `"mlp"`, or `"mlp_on_images"`.
    kind: String,
    #[serde(default = "default_width")]
    width: usize,
    #[serde(default = "default_hidden")]
    hidden: Vec<usize>,
}

fn default_width() -> usize {
    6
}
fn default_hidden() -> Vec<usize> {
    vec![128, 64]
}

/// Training section of the config file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TrainSection {
    /// `"msgd"`, `"asgd"`, `"gd-async"`, `"dgc-async"`, or `"dgs"`.
    method: String,
    workers: usize,
    batch_per_worker: usize,
    epochs: usize,
    lr: f32,
    momentum: f32,
    #[serde(default = "default_ratio")]
    sparsity_ratio: f64,
    #[serde(default)]
    secondary_compression: bool,
    #[serde(default)]
    quantize_uplink: bool,
    #[serde(default = "default_seed")]
    seed: u64,
}

fn default_ratio() -> f64 {
    0.05
}
fn default_seed() -> u64 {
    42
}

/// Engine section of the config file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct EngineConfig {
    /// `"threads"` (real async threads) or `"des"` (virtual-time simulator).
    kind: String,
    #[serde(default = "default_bandwidth")]
    bandwidth_gbps: f64,
    #[serde(default = "default_gflops")]
    worker_gflops: f64,
}

fn default_bandwidth() -> f64 {
    10.0
}
fn default_gflops() -> f64 {
    5.0
}

/// Top-level config file format.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CliConfig {
    workload: WorkloadConfig,
    model: ModelConfig,
    train: TrainSection,
    engine: EngineConfig,
}

impl CliConfig {
    fn example() -> Self {
        CliConfig {
            workload: WorkloadConfig {
                kind: "vision".into(),
                samples: 1024,
                val_samples: 256,
                classes: 20,
                hw: 12,
                channels: 3,
                noise: 2.2,
                dim: 16,
            },
            model: ModelConfig { kind: "resnet_lite".into(), width: 6, hidden: vec![128, 64] },
            train: TrainSection {
                method: "dgs".into(),
                workers: 4,
                batch_per_worker: 16,
                epochs: 8,
                lr: 0.2,
                momentum: 0.3,
                sparsity_ratio: 0.05,
                secondary_compression: false,
                quantize_uplink: false,
                seed: 42,
            },
            engine: EngineConfig {
                kind: "threads".into(),
                bandwidth_gbps: 10.0,
                worker_gflops: 5.0,
            },
        }
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("dgs-cli: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("init") => {
            println!("{}", serde_json::to_string_pretty(&CliConfig::example()).unwrap());
        }
        Some("methods") => {
            println!(
                "{:<10} {:<18} {:<12} {:<12} residuals",
                "method", "sparsification", "momentum", "correction"
            );
            for m in Method::ALL {
                let t = m.techniques();
                println!(
                    "{:<10} {:<18} {:<12} {:<12} {}",
                    t.method,
                    t.sparsification,
                    t.momentum,
                    if t.momentum_correction { "yes" } else { "no" },
                    if t.residual_accumulation { "yes" } else { "no" }
                );
            }
        }
        Some("run") => {
            let path = args
                .get(1)
                .unwrap_or_else(|| fail("usage: dgs-cli run <config.json> [--out results.json]"));
            let out = flag_value(&args, "--out");
            let config = load_config(path);
            let result = run(&config);
            print_summary(&result);
            if let Some(out) = out {
                std::fs::write(&out, serde_json::to_string_pretty(&result).unwrap())
                    .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
                println!("wrote {out}");
            }
        }
        Some("serve") => {
            let usage = "usage: dgs-cli serve <config.json> --listen ADDR \
                         [--out results.json] [--deadline-secs N] [--shards S] \
                         [--span K/N] [--clients N] [--io threads|evented] [--max-conns N]";
            let path = args.get(1).unwrap_or_else(|| fail(usage));
            let listen = flag_value(&args, "--listen").unwrap_or_else(|| fail(usage));
            let out = flag_value(&args, "--out");
            let deadline = flag_value(&args, "--deadline-secs").map(|s| {
                Duration::from_secs(
                    s.parse().unwrap_or_else(|_| fail("--deadline-secs must be an integer")),
                )
            });
            let shards: usize = flag_value(&args, "--shards")
                .map(|s| s.parse().unwrap_or_else(|_| fail("--shards must be an integer")))
                .unwrap_or(1);
            if shards == 0 {
                fail("--shards must be at least 1");
            }
            let mut io = IoConfig::default();
            if let Some(mode) = flag_value(&args, "--io") {
                io.mode = mode.parse().unwrap_or_else(|e: String| fail(&e));
            }
            if let Some(mc) = flag_value(&args, "--max-conns") {
                io.evented.max_conns =
                    mc.parse().unwrap_or_else(|_| fail("--max-conns must be a positive integer"));
                if io.evented.max_conns == 0 {
                    fail("--max-conns must be a positive integer");
                }
                if io.mode != IoMode::Evented {
                    fail("--max-conns only applies to --io evented");
                }
            }
            let span = flag_value(&args, "--span").map(|s| parse_span(&s));
            let clients = flag_value(&args, "--clients").map(|s| {
                s.parse().unwrap_or_else(|_| fail("--clients must be a positive integer"))
            });
            if span.is_some() && shards > 1 {
                fail("--shards and --span are mutually exclusive");
            }
            if clients.is_some() && span.is_none() {
                fail("--clients only applies to --span serving");
            }
            if clients == Some(0) {
                fail("--clients must be a positive integer");
            }
            match span {
                Some((k, n)) => {
                    serve_span(&load_config(path), &listen, out.as_deref(), deadline, k, n, clients, &io)
                }
                None => serve(&load_config(path), &listen, out.as_deref(), deadline, shards, &io),
            }
        }
        Some("edge") => {
            let usage = "usage: dgs-cli edge <config.json> --connect A1,A2,... --listen ADDR \
                         --group G [--base B] [--out stats.json] [--deadline-secs N]";
            let path = args.get(1).unwrap_or_else(|| fail(usage));
            let connect = flag_value(&args, "--connect").unwrap_or_else(|| fail(usage));
            let listen = flag_value(&args, "--listen").unwrap_or_else(|| fail(usage));
            let group: usize = flag_value(&args, "--group")
                .unwrap_or_else(|| fail(usage))
                .parse()
                .unwrap_or_else(|_| fail("--group must be a positive integer"));
            if group == 0 {
                fail("--group must be a positive integer");
            }
            let base: usize = flag_value(&args, "--base")
                .map(|s| s.parse().unwrap_or_else(|_| fail("--base must be an integer")))
                .unwrap_or(0);
            let out = flag_value(&args, "--out");
            let deadline = flag_value(&args, "--deadline-secs").map(|s| {
                Duration::from_secs(
                    s.parse().unwrap_or_else(|_| fail("--deadline-secs must be an integer")),
                )
            });
            edge(&load_config(path), &connect, &listen, group, base, out.as_deref(), deadline);
        }
        Some("work") => {
            let usage = "usage: dgs-cli work <config.json> \
                         (--connect ADDR | --connect-cluster A1,A2,...) --worker K";
            let path = args.get(1).unwrap_or_else(|| fail(usage));
            let connect = flag_value(&args, "--connect");
            let cluster = flag_value(&args, "--connect-cluster");
            let worker: usize = flag_value(&args, "--worker")
                .unwrap_or_else(|| fail(usage))
                .parse()
                .unwrap_or_else(|_| fail("--worker must be an integer"));
            match (connect, cluster) {
                (Some(addr), None) => work(&load_config(path), &addr, worker),
                (None, Some(addrs)) => work_cluster(&load_config(path), &addrs, worker),
                _ => fail(usage),
            }
        }
        _ => fail("usage: dgs-cli <run|serve|work|edge|init|methods>"),
    }
}

/// Parses `--span K/N` (0-based span index out of N span servers).
fn parse_span(s: &str) -> (usize, usize) {
    let parsed = s
        .split_once('/')
        .and_then(|(k, n)| Some((k.parse::<usize>().ok()?, n.parse::<usize>().ok()?)));
    match parsed {
        Some((k, n)) if n >= 1 && k < n => (k, n),
        _ => fail("--span must be K/N with K < N (e.g. 0/3)"),
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn load_config(path: &str) -> CliConfig {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    serde_json::from_str(&text).unwrap_or_else(|e| fail(&format!("invalid config: {e}")))
}

/// Builds the train/validation datasets the config describes. Everything
/// is seeded from `train.seed`, so every process that loads the same
/// config materialises the same data.
fn datasets(config: &CliConfig) -> (Arc<dyn Dataset>, Arc<dyn Dataset>) {
    let seed = config.train.seed;
    let w = &config.workload;
    match w.kind.as_str() {
        "vision" => {
            let data = SyntheticVision::new(w.samples, w.channels, w.hw, w.classes, w.noise, seed);
            let val = Arc::new(data.validation(w.val_samples));
            (Arc::new(data), val)
        }
        "blobs" => {
            let data = GaussianBlobs::new(w.samples, w.dim, w.classes, w.noise, seed);
            let val = Arc::new(data.validation(w.val_samples));
            (Arc::new(data), val)
        }
        other => fail(&format!("unknown workload kind '{other}'")),
    }
}

/// Deterministic model builder for the config: same config + seed → the
/// same `θ_0` in every process (the TCP handshake checks this by CRC).
fn model_builder(config: &CliConfig) -> impl Fn() -> Network + Sync {
    let seed = config.train.seed;
    let m = config.model.clone();
    let wk = config.workload.clone();
    move || match m.kind.as_str() {
        "resnet_lite" => resnet_lite(wk.channels, wk.hw, wk.classes, m.width, seed),
        "tiny_cnn" => tiny_cnn(wk.channels, wk.hw, wk.classes, m.width, seed),
        "mlp_on_images" => mlp_on_images(wk.channels, wk.hw, &m.hidden, wk.classes, seed),
        "mlp" => mlp(wk.dim, &m.hidden, wk.classes, seed),
        other => fail(&format!("unknown model kind '{other}'")),
    }
}

/// Translates the `train` section into the engine-level [`TrainConfig`].
fn train_config(config: &CliConfig) -> TrainConfig {
    let method: Method = config.train.method.parse().unwrap_or_else(|e: String| fail(&e));
    let mut cfg = TrainConfig::paper_default(method, config.train.workers, config.train.epochs);
    cfg.batch_per_worker = config.train.batch_per_worker;
    cfg.lr = LrSchedule::paper_default(config.train.lr, config.train.epochs);
    cfg.momentum = config.train.momentum;
    cfg.sparsity_ratio = config.train.sparsity_ratio;
    cfg.secondary_compression = config.train.secondary_compression;
    cfg.quantize_uplink = config.train.quantize_uplink;
    cfg.clip_norm = 0.0;
    cfg.seed = config.train.seed;
    cfg.evals = config.train.epochs;
    cfg
}

fn run(config: &CliConfig) -> RunResult {
    let (train_ds, val_ds) = datasets(config);
    let builder = model_builder(config);
    let cfg = train_config(config);

    if cfg.method == Method::Msgd {
        return train_msgd(builder(), train_ds, val_ds, &cfg);
    }
    match config.engine.kind.as_str() {
        "threads" => train_async(&cfg, &builder, train_ds, val_ds),
        "des" => {
            let params = DesParams {
                network: NetworkModel::new(config.engine.bandwidth_gbps, 50.0),
                worker_gflops: config.engine.worker_gflops,
                ..DesParams::ten_gbps()
            };
            train_des(&cfg, &builder, train_ds, val_ds, params)
        }
        other => fail(&format!("unknown engine kind '{other}'")),
    }
}

/// `dgs-cli serve`: host the parameter server over TCP until every worker
/// process has finished and shut down gracefully. `shards > 1` hosts the
/// lock-striped server.
fn serve(
    config: &CliConfig,
    listen: &str,
    out: Option<&str>,
    deadline: Option<Duration>,
    shards: usize,
    io: &IoConfig,
) {
    let cfg = train_config(config);
    if cfg.method == Method::Msgd {
        fail("msgd is single-node; use `dgs-cli run`");
    }
    let (train_ds, val_ds) = datasets(config);
    let builder = model_builder(config);

    let listener = TcpListener::bind(listen)
        .unwrap_or_else(|e| fail(&format!("cannot listen on {listen}: {e}")));
    let local = listener.local_addr().map(|a| a.to_string()).unwrap_or_else(|_| listen.into());
    // Bind-time discovery: with `--listen 127.0.0.1:0` a launcher learns
    // the real port by polling this file (rewritten with results at exit).
    if let Some(out) = out {
        let doc = serde_json::json!({ "listen": local });
        std::fs::write(out, serde_json::to_string_pretty(&doc).unwrap())
            .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
    }
    let iters = cfg.iters_per_worker(train_ds.len());
    let backend = match io.mode {
        IoMode::Threads => "thread-per-connection".to_string(),
        IoMode::Evented => format!("evented (max {} conns)", io.evented.max_conns),
    };
    // NOTE: process_mode tests parse the address out of this banner via
    // `" on "` / `": waiting"` — keep the backend tag after the colon.
    println!(
        "serving {} on {local}: waiting for {} workers x {iters} iterations [{backend}]",
        cfg.method.name(),
        cfg.workers
    );
    let start = Instant::now();
    let (result, stats) = if shards > 1 {
        let (logic, workers) = build_sharded_participants(
            &cfg,
            &builder,
            &train_ds,
            &val_ds,
            config.engine.worker_gflops,
            shards,
        );
        let worker_aux = workers.first().map(|w| w.aux_bytes()).unwrap_or(0);
        drop(workers); // serve-side workers are only built to size the run
        println!("server state striped across {} shards", logic.server().num_shards());
        let (logic, stats) = serve_training_sharded_io(listener, logic, cfg.workers, deadline, io)
            .unwrap_or_else(|e| fail(&format!("serve failed: {e}")));
        (logic.into_result(cfg.clone(), start.elapsed().as_secs_f64(), worker_aux), stats)
    } else {
        let (logic, workers) =
            build_participants(&cfg, &builder, &train_ds, &val_ds, config.engine.worker_gflops);
        let worker_aux = workers.first().map(|w| w.aux_bytes()).unwrap_or(0);
        drop(workers);
        let (logic, stats) = serve_training_io(listener, logic, cfg.workers, deadline, io)
            .unwrap_or_else(|e| fail(&format!("serve failed: {e}")));
        (logic.into_result(cfg.clone(), start.elapsed().as_secs_f64(), worker_aux), stats)
    };

    print_summary(&result);
    print_wire_stats("server", &stats);
    if let Some(out) = out {
        let doc =
            serde_json::json!({ "listen": local, "result": result, "wire": wire_json(&stats) });
        std::fs::write(out, serde_json::to_string_pretty(&doc).unwrap())
            .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
        println!("wrote {out}");
    }
}

/// `dgs-cli serve --span K/N`: host ONE span of an N-process span-sharded
/// parameter-server cluster — the in-process sharding seam lifted onto
/// the wire. Every process (spans, edges, workers) must load the same
/// config file; the cluster handshake checks the partition-map hash and
/// this span's θ0 CRC on top of the usual dim check.
#[allow(clippy::too_many_arguments)]
fn serve_span(
    config: &CliConfig,
    listen: &str,
    out: Option<&str>,
    deadline: Option<Duration>,
    span_index: usize,
    num_spans: usize,
    clients: Option<usize>,
    io: &IoConfig,
) {
    let cfg = train_config(config);
    if cfg.method == Method::Msgd {
        fail("msgd is single-node; use `dgs-cli run`");
    }
    let (train_ds, _val_ds) = datasets(config);
    let builder = model_builder(config);
    let net0 = builder();
    let theta0 = net0.params().data().to_vec();
    let partition = net0.params().partition().clone();
    let layout = cluster_layout(&theta0, &partition, num_spans);
    if layout.num_spans() != num_spans {
        fail(&format!(
            "model splits into {} spans, not {num_spans}; use --span K/{}",
            layout.num_spans(),
            layout.num_spans()
        ));
    }
    let secondary = if cfg.secondary_compression { Some(cfg.sparsity_ratio) } else { None };
    let downlink = Downlink::for_method(cfg.method, secondary);
    let span = layout.shard_span(span_index);
    let handler =
        Arc::new(Mutex::new(build_span_logic(&cfg, &theta0, &partition, &span, downlink)));
    let listener = TcpListener::bind(listen)
        .unwrap_or_else(|e| fail(&format!("cannot listen on {listen}: {e}")));
    let local = listener.local_addr().map(|a| a.to_string()).unwrap_or_else(|_| listen.into());
    if let Some(out) = out {
        let bind_doc = serde_json::json!({
            "listen": local,
            "span": span_index,
            "spans": num_spans,
            "layout_hash": layout.layout_hash(),
        });
        std::fs::write(out, serde_json::to_string_pretty(&bind_doc).unwrap())
            .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
    }
    let iters = cfg.iters_per_worker(train_ds.len());
    let backend = match io.mode {
        IoMode::Threads => "thread-per-connection".to_string(),
        IoMode::Evented => format!("evented (max {} conns)", io.evented.max_conns),
    };
    let expected = clients.unwrap_or(cfg.workers);
    println!(
        "serving {} span {span_index}/{num_spans} ({} of {} coords) on {local}: \
         waiting for {expected} clients x {iters} iterations [{backend}]",
        cfg.method.name(),
        span.len,
        theta0.len()
    );
    let mut opts =
        ServerOpts::new(cfg.workers, span.len as u64, layout.spans[span_index].theta0_crc);
    opts.deadline = deadline;
    opts.done_target = expected;
    opts.span = Some(SpanOpts {
        index: span_index as u32,
        num_spans: num_spans as u32,
        layout_hash: layout.layout_hash(),
        layout_bytes: layout.encode(),
    });
    let stats = serve_with_io(listener, handler, opts, io)
        .unwrap_or_else(|e| fail(&format!("span serve failed: {e}")));
    print_wire_stats(&format!("span {span_index}"), &stats);
    if let Some(out) = out {
        let doc = serde_json::json!({
            "listen": local,
            "span": span_index,
            "spans": num_spans,
            "layout_hash": layout.layout_hash(),
            "wire": wire_json(&stats),
        });
        std::fs::write(out, serde_json::to_string_pretty(&doc).unwrap())
            .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
        println!("wrote {out}");
    }
}

/// `dgs-cli edge`: the two-level aggregation tier. G member workers see
/// an ordinary full-model server; their uplinks are merged per round and
/// forwarded to the root span servers as one logical worker, so root
/// ingress scales with the number of groups rather than workers.
fn edge(
    config: &CliConfig,
    connect: &str,
    listen: &str,
    group: usize,
    base: usize,
    out: Option<&str>,
    deadline: Option<Duration>,
) {
    let cfg = train_config(config);
    if cfg.method == Method::Msgd {
        fail("msgd is single-node; use `dgs-cli run`");
    }
    if base + group > cfg.workers {
        fail(&format!(
            "group [{base}, {}) exceeds the config's {} workers",
            base + group,
            cfg.workers
        ));
    }
    let builder = model_builder(config);
    let net0 = builder();
    let theta0 = net0.params().data().to_vec();
    let partition = net0.params().partition().clone();
    let addrs: Vec<String> = connect.split(',').map(str::to_string).collect();
    let layout = cluster_layout(&theta0, &partition, addrs.len());
    if layout.num_spans() != addrs.len() {
        fail(&format!(
            "model splits into {} spans but --connect lists {} servers",
            layout.num_spans(),
            addrs.len()
        ));
    }
    let layout_hash = layout.layout_hash();
    let crc = theta0_crc(&theta0);
    let dim = theta0.len() as u64;
    let upstream = ClusterTransport::new(layout, &addrs, base as u16)
        .unwrap_or_else(|e| fail(&format!("cannot reach root spans: {e}")));
    let handler =
        EdgeHandler::new(upstream, partition, theta0, base as u16, group, EDGE_ROUND_TIMEOUT)
            .unwrap_or_else(|e| fail(&format!("bad edge config: {e}")));
    let listener = TcpListener::bind(listen)
        .unwrap_or_else(|e| fail(&format!("cannot listen on {listen}: {e}")));
    let local = listener.local_addr().map(|a| a.to_string()).unwrap_or_else(|_| listen.into());
    if let Some(out) = out {
        let bind_doc = serde_json::json!({
            "listen": local,
            "base": base,
            "group": group,
            "layout_hash": layout_hash,
        });
        std::fs::write(out, serde_json::to_string_pretty(&bind_doc).unwrap())
            .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
    }
    println!(
        "edge on {local}: merging group [{base}, {}) toward {} root spans: \
         waiting for {group} members",
        base + group,
        addrs.len()
    );
    // Members block on the round barrier, so the member-facing listener
    // must be thread-per-connection (an evented single thread would
    // deadlock); the root tier's backend is the span servers' choice.
    let mut opts = ServerOpts::new(base + group, dim, crc);
    opts.deadline = deadline;
    opts.done_target = group;
    let h = Arc::clone(&handler);
    let member_side =
        serve_cluster(listener, h, opts).unwrap_or_else(|e| fail(&format!("edge serve failed: {e}")));
    let upstream_side =
        handler.finish().unwrap_or_else(|e| fail(&format!("edge shutdown failed: {e}")));
    print_wire_stats("edge members", &member_side);
    print_wire_stats("edge upstream", &upstream_side);
    if let Some(out) = out {
        let doc = serde_json::json!({
            "listen": local,
            "base": base,
            "group": group,
            "layout_hash": layout_hash,
            "member_wire": wire_json(&member_side),
            "upstream_wire": wire_json(&upstream_side),
        });
        std::fs::write(out, serde_json::to_string_pretty(&doc).unwrap())
            .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
        println!("wrote {out}");
    }
}

/// `dgs-cli work --connect-cluster`: one worker against an N-process span
/// cluster — every uplink fans out per span, every downlink reassembles
/// in shard order (mixed per-span replies are applied spanwise).
fn work_cluster(config: &CliConfig, connect: &str, worker_id: usize) {
    let cfg = train_config(config);
    if cfg.method == Method::Msgd {
        fail("msgd is single-node; use `dgs-cli run`");
    }
    if worker_id >= cfg.workers {
        fail(&format!("--worker {worker_id} out of range (config has {} workers)", cfg.workers));
    }
    let (train_ds, _val_ds) = datasets(config);
    let builder = model_builder(config);
    let net0 = builder();
    let theta0 = net0.params().data().to_vec();
    let partition = net0.params().partition().clone();
    let addrs: Vec<String> = connect.split(',').map(str::to_string).collect();
    let layout = cluster_layout(&theta0, &partition, addrs.len());
    if layout.num_spans() != addrs.len() {
        fail(&format!(
            "model splits into {} spans but --connect-cluster lists {} servers",
            layout.num_spans(),
            addrs.len()
        ));
    }
    let iters = cfg.iters_per_worker(train_ds.len());
    let mut worker = TrainWorker::new(
        worker_id,
        builder(),
        Arc::clone(&train_ds),
        cfg.clone(),
        config.engine.worker_gflops,
    );
    println!("worker {worker_id}: {iters} iterations against {} span servers", addrs.len());
    let mut transport = ClusterTransport::new(layout, &addrs, worker_id as u16)
        .unwrap_or_else(|e| fail(&format!("worker {worker_id} cannot reach the cluster: {e}")));
    for _ in 0..iters {
        let up = worker.local_step();
        let replies = transport
            .exchange(&up)
            .unwrap_or_else(|e| fail(&format!("worker {worker_id} exchange failed: {e}")));
        match assemble_replies(&replies) {
            Some(reply) => worker.apply_reply(reply),
            None => {
                for (j, reply) in replies.into_iter().enumerate() {
                    worker.apply_span_reply(&transport.layout().shard_span(j), reply);
                }
            }
        }
    }
    transport
        .shutdown()
        .unwrap_or_else(|e| fail(&format!("worker {worker_id} shutdown failed: {e}")));
    println!("worker {worker_id}: done after {iters} iterations");
    print_wire_stats(&format!("worker {worker_id}"), &transport.stats());
}

/// `dgs-cli work`: run one worker's training loop against a remote server.
fn work(config: &CliConfig, connect: &str, worker_id: usize) {
    let cfg = train_config(config);
    if cfg.method == Method::Msgd {
        fail("msgd is single-node; use `dgs-cli run`");
    }
    if worker_id >= cfg.workers {
        fail(&format!("--worker {worker_id} out of range (config has {} workers)", cfg.workers));
    }
    let (train_ds, _val_ds) = datasets(config);
    let builder = model_builder(config);
    let iters = cfg.iters_per_worker(train_ds.len());
    let worker = TrainWorker::new(
        worker_id,
        builder(),
        Arc::clone(&train_ds),
        cfg.clone(),
        config.engine.worker_gflops,
    );
    println!("worker {worker_id}: {iters} iterations against {connect}");
    let (worker, stats) = run_worker(connect, worker_id as u16, worker, iters)
        .unwrap_or_else(|e| fail(&format!("worker {worker_id} failed: {e}")));
    println!("worker {worker_id}: done after {} iterations", worker.iterations());
    print_wire_stats(&format!("worker {worker_id}"), &stats);
}

fn print_wire_stats(who: &str, stats: &WireStats) {
    println!(
        "{who} wire: data_up={} data_down={} control={} frames_up={} frames_down={} \
         rejected_conns={}",
        stats.data_up,
        stats.data_down,
        stats.control,
        stats.frames_up,
        stats.frames_down,
        stats.rejected_conns
    );
}

fn wire_json(stats: &WireStats) -> serde_json::Value {
    let links: Vec<serde_json::Value> = stats
        .links
        .iter()
        .map(|l| {
            serde_json::json!({
                "tier": match l.tier { Tier::Root => "root", Tier::Edge => "edge" },
                "span": l.span,
                "uplink_bytes": l.uplink_bytes,
                "downlink_bytes": l.downlink_bytes,
            })
        })
        .collect();
    serde_json::json!({
        "data_up": stats.data_up,
        "data_down": stats.data_down,
        "control": stats.control,
        "frames_up": stats.frames_up,
        "frames_down": stats.frames_down,
        "rejected_conns": stats.rejected_conns,
        "links": links,
    })
}

fn print_summary(result: &RunResult) {
    println!("method           : {}", result.method_name());
    println!("final top-1      : {:.2}%", 100.0 * result.final_acc);
    println!("final val loss   : {:.4}", result.final_loss);
    println!("uplink bytes     : {}", result.bytes_up);
    println!("downlink bytes   : {}", result.bytes_down);
    println!("mean staleness   : {:.2}", result.mean_staleness);
    if result.virtual_time > 0.0 {
        println!("virtual time     : {:.2}s", result.virtual_time);
    }
    println!("host wall time   : {:.2}s", result.wall_secs);
    println!();
    println!("epoch  updates  val-acc   train-loss");
    for p in &result.curve {
        println!(
            "{:>5}  {:>7}  {:>6.2}%   {:.4}",
            p.epoch,
            p.updates,
            100.0 * p.val_acc,
            p.train_loss
        );
    }
}
