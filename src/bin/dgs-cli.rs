//! `dgs-cli` — run a DGS training configuration from a JSON file.
//!
//! ```text
//! dgs-cli run <config.json> [--out results.json]
//! dgs-cli serve <config.json> --listen ADDR [--out results.json] [--deadline-secs N]
//!               [--shards S] [--io threads|evented] [--max-conns N]
//! dgs-cli work <config.json> --connect ADDR --worker K
//! dgs-cli init > config.json          # print an annotated default config
//! dgs-cli methods                     # list methods + technique matrix
//! ```
//!
//! `serve`/`work` run the same training as `run`, but across OS processes
//! over the `dgs-net` TCP transport: one `serve` process hosts the MDT
//! server, and `train.workers` separate `work` processes each drive one
//! training worker. `--shards S` (S > 1) hosts the lock-striped
//! [`ShardedMdtServer`](dgs::core::ShardedMdtServer) instead of the
//! single-lock server: worker connections apply updates concurrently, and
//! the wire traffic stays byte-identical for a given update order.
//! `--io evented` serves every connection from one readiness event loop
//! (`poll(2)`, or epoll with the `net-epoll` feature) instead of one
//! thread per connection — same protocol, same bytes, but it scales to
//! tens of thousands of workers; `--max-conns N` caps concurrent
//! connections (over-budget accepts get an error frame and are counted
//! in the serve-side stats). All processes must load the *same* config file — the
//! TCP handshake fingerprints `θ_0` (CRC-32 of the initial parameters)
//! and rejects workers whose seed/model/dimension drift from the server's.
//!
//! The config file selects a synthetic workload, a model, a training
//! method, and an engine; see [`CliConfig`] for every field. Example:
//!
//! ```json
//! {
//!   "workload": { "kind": "vision", "samples": 1024, "classes": 20,
//!                 "hw": 12, "channels": 3, "noise": 2.2, "val_samples": 256 },
//!   "model": { "kind": "resnet_lite", "width": 6, "hidden": [128, 64] },
//!   "train": { "method": "dgs", "workers": 4, "batch_per_worker": 16,
//!               "epochs": 8, "lr": 0.2, "momentum": 0.3,
//!               "sparsity_ratio": 0.05, "secondary_compression": false,
//!               "quantize_uplink": false, "seed": 42 },
//!   "engine": { "kind": "threads" }
//! }
//! ```

use dgs::core::config::{LrSchedule, TrainConfig};
use dgs::core::curves::RunResult;
use dgs::core::method::Method;
use dgs::core::trainer::des::{train_des, DesParams};
use dgs::core::trainer::single::train_msgd;
use dgs::core::trainer::sharded::build_sharded_participants;
use dgs::core::trainer::threaded::{build_participants, train_async};
use dgs::core::worker::TrainWorker;
use dgs::net::runtime::{
    run_worker, serve_training_io, serve_training_sharded_io, IoConfig, IoMode,
};
use dgs::net::WireStats;
use dgs::nn::data::{Dataset, GaussianBlobs, SyntheticVision};
use dgs::nn::model::Network;
use dgs::nn::models::{mlp, mlp_on_images, resnet_lite, tiny_cnn};
use dgs::psim::NetworkModel;
use serde::{Deserialize, Serialize};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Workload section of the config file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct WorkloadConfig {
    /// `"vision"` (synthetic images) or `"blobs"` (Gaussian clusters).
    kind: String,
    samples: usize,
    val_samples: usize,
    classes: usize,
    #[serde(default = "default_hw")]
    hw: usize,
    #[serde(default = "default_channels")]
    channels: usize,
    #[serde(default = "default_noise")]
    noise: f32,
    #[serde(default = "default_dim")]
    dim: usize,
}

fn default_hw() -> usize {
    12
}
fn default_channels() -> usize {
    3
}
fn default_noise() -> f32 {
    2.2
}
fn default_dim() -> usize {
    16
}

/// Model section of the config file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ModelConfig {
    /// `"resnet_lite"`, `"tiny_cnn"`, `"mlp"`, or `"mlp_on_images"`.
    kind: String,
    #[serde(default = "default_width")]
    width: usize,
    #[serde(default = "default_hidden")]
    hidden: Vec<usize>,
}

fn default_width() -> usize {
    6
}
fn default_hidden() -> Vec<usize> {
    vec![128, 64]
}

/// Training section of the config file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TrainSection {
    /// `"msgd"`, `"asgd"`, `"gd-async"`, `"dgc-async"`, or `"dgs"`.
    method: String,
    workers: usize,
    batch_per_worker: usize,
    epochs: usize,
    lr: f32,
    momentum: f32,
    #[serde(default = "default_ratio")]
    sparsity_ratio: f64,
    #[serde(default)]
    secondary_compression: bool,
    #[serde(default)]
    quantize_uplink: bool,
    #[serde(default = "default_seed")]
    seed: u64,
}

fn default_ratio() -> f64 {
    0.05
}
fn default_seed() -> u64 {
    42
}

/// Engine section of the config file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct EngineConfig {
    /// `"threads"` (real async threads) or `"des"` (virtual-time simulator).
    kind: String,
    #[serde(default = "default_bandwidth")]
    bandwidth_gbps: f64,
    #[serde(default = "default_gflops")]
    worker_gflops: f64,
}

fn default_bandwidth() -> f64 {
    10.0
}
fn default_gflops() -> f64 {
    5.0
}

/// Top-level config file format.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CliConfig {
    workload: WorkloadConfig,
    model: ModelConfig,
    train: TrainSection,
    engine: EngineConfig,
}

impl CliConfig {
    fn example() -> Self {
        CliConfig {
            workload: WorkloadConfig {
                kind: "vision".into(),
                samples: 1024,
                val_samples: 256,
                classes: 20,
                hw: 12,
                channels: 3,
                noise: 2.2,
                dim: 16,
            },
            model: ModelConfig { kind: "resnet_lite".into(), width: 6, hidden: vec![128, 64] },
            train: TrainSection {
                method: "dgs".into(),
                workers: 4,
                batch_per_worker: 16,
                epochs: 8,
                lr: 0.2,
                momentum: 0.3,
                sparsity_ratio: 0.05,
                secondary_compression: false,
                quantize_uplink: false,
                seed: 42,
            },
            engine: EngineConfig {
                kind: "threads".into(),
                bandwidth_gbps: 10.0,
                worker_gflops: 5.0,
            },
        }
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("dgs-cli: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("init") => {
            println!("{}", serde_json::to_string_pretty(&CliConfig::example()).unwrap());
        }
        Some("methods") => {
            println!(
                "{:<10} {:<18} {:<12} {:<12} residuals",
                "method", "sparsification", "momentum", "correction"
            );
            for m in Method::ALL {
                let t = m.techniques();
                println!(
                    "{:<10} {:<18} {:<12} {:<12} {}",
                    t.method,
                    t.sparsification,
                    t.momentum,
                    if t.momentum_correction { "yes" } else { "no" },
                    if t.residual_accumulation { "yes" } else { "no" }
                );
            }
        }
        Some("run") => {
            let path = args
                .get(1)
                .unwrap_or_else(|| fail("usage: dgs-cli run <config.json> [--out results.json]"));
            let out = flag_value(&args, "--out");
            let config = load_config(path);
            let result = run(&config);
            print_summary(&result);
            if let Some(out) = out {
                std::fs::write(&out, serde_json::to_string_pretty(&result).unwrap())
                    .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
                println!("wrote {out}");
            }
        }
        Some("serve") => {
            let usage = "usage: dgs-cli serve <config.json> --listen ADDR \
                         [--out results.json] [--deadline-secs N] [--shards S] \
                         [--io threads|evented] [--max-conns N]";
            let path = args.get(1).unwrap_or_else(|| fail(usage));
            let listen = flag_value(&args, "--listen").unwrap_or_else(|| fail(usage));
            let out = flag_value(&args, "--out");
            let deadline = flag_value(&args, "--deadline-secs").map(|s| {
                Duration::from_secs(
                    s.parse().unwrap_or_else(|_| fail("--deadline-secs must be an integer")),
                )
            });
            let shards: usize = flag_value(&args, "--shards")
                .map(|s| s.parse().unwrap_or_else(|_| fail("--shards must be an integer")))
                .unwrap_or(1);
            if shards == 0 {
                fail("--shards must be at least 1");
            }
            let mut io = IoConfig::default();
            if let Some(mode) = flag_value(&args, "--io") {
                io.mode = mode.parse().unwrap_or_else(|e: String| fail(&e));
            }
            if let Some(mc) = flag_value(&args, "--max-conns") {
                io.evented.max_conns =
                    mc.parse().unwrap_or_else(|_| fail("--max-conns must be a positive integer"));
                if io.evented.max_conns == 0 {
                    fail("--max-conns must be a positive integer");
                }
                if io.mode != IoMode::Evented {
                    fail("--max-conns only applies to --io evented");
                }
            }
            serve(&load_config(path), &listen, out.as_deref(), deadline, shards, &io);
        }
        Some("work") => {
            let usage = "usage: dgs-cli work <config.json> --connect ADDR --worker K";
            let path = args.get(1).unwrap_or_else(|| fail(usage));
            let connect = flag_value(&args, "--connect").unwrap_or_else(|| fail(usage));
            let worker: usize = flag_value(&args, "--worker")
                .unwrap_or_else(|| fail(usage))
                .parse()
                .unwrap_or_else(|_| fail("--worker must be an integer"));
            work(&load_config(path), &connect, worker);
        }
        _ => fail("usage: dgs-cli <run|serve|work|init|methods>"),
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn load_config(path: &str) -> CliConfig {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    serde_json::from_str(&text).unwrap_or_else(|e| fail(&format!("invalid config: {e}")))
}

/// Builds the train/validation datasets the config describes. Everything
/// is seeded from `train.seed`, so every process that loads the same
/// config materialises the same data.
fn datasets(config: &CliConfig) -> (Arc<dyn Dataset>, Arc<dyn Dataset>) {
    let seed = config.train.seed;
    let w = &config.workload;
    match w.kind.as_str() {
        "vision" => {
            let data = SyntheticVision::new(w.samples, w.channels, w.hw, w.classes, w.noise, seed);
            let val = Arc::new(data.validation(w.val_samples));
            (Arc::new(data), val)
        }
        "blobs" => {
            let data = GaussianBlobs::new(w.samples, w.dim, w.classes, w.noise, seed);
            let val = Arc::new(data.validation(w.val_samples));
            (Arc::new(data), val)
        }
        other => fail(&format!("unknown workload kind '{other}'")),
    }
}

/// Deterministic model builder for the config: same config + seed → the
/// same `θ_0` in every process (the TCP handshake checks this by CRC).
fn model_builder(config: &CliConfig) -> impl Fn() -> Network + Sync {
    let seed = config.train.seed;
    let m = config.model.clone();
    let wk = config.workload.clone();
    move || match m.kind.as_str() {
        "resnet_lite" => resnet_lite(wk.channels, wk.hw, wk.classes, m.width, seed),
        "tiny_cnn" => tiny_cnn(wk.channels, wk.hw, wk.classes, m.width, seed),
        "mlp_on_images" => mlp_on_images(wk.channels, wk.hw, &m.hidden, wk.classes, seed),
        "mlp" => mlp(wk.dim, &m.hidden, wk.classes, seed),
        other => fail(&format!("unknown model kind '{other}'")),
    }
}

/// Translates the `train` section into the engine-level [`TrainConfig`].
fn train_config(config: &CliConfig) -> TrainConfig {
    let method: Method = config.train.method.parse().unwrap_or_else(|e: String| fail(&e));
    let mut cfg = TrainConfig::paper_default(method, config.train.workers, config.train.epochs);
    cfg.batch_per_worker = config.train.batch_per_worker;
    cfg.lr = LrSchedule::paper_default(config.train.lr, config.train.epochs);
    cfg.momentum = config.train.momentum;
    cfg.sparsity_ratio = config.train.sparsity_ratio;
    cfg.secondary_compression = config.train.secondary_compression;
    cfg.quantize_uplink = config.train.quantize_uplink;
    cfg.clip_norm = 0.0;
    cfg.seed = config.train.seed;
    cfg.evals = config.train.epochs;
    cfg
}

fn run(config: &CliConfig) -> RunResult {
    let (train_ds, val_ds) = datasets(config);
    let builder = model_builder(config);
    let cfg = train_config(config);

    if cfg.method == Method::Msgd {
        return train_msgd(builder(), train_ds, val_ds, &cfg);
    }
    match config.engine.kind.as_str() {
        "threads" => train_async(&cfg, &builder, train_ds, val_ds),
        "des" => {
            let params = DesParams {
                network: NetworkModel::new(config.engine.bandwidth_gbps, 50.0),
                worker_gflops: config.engine.worker_gflops,
                ..DesParams::ten_gbps()
            };
            train_des(&cfg, &builder, train_ds, val_ds, params)
        }
        other => fail(&format!("unknown engine kind '{other}'")),
    }
}

/// `dgs-cli serve`: host the parameter server over TCP until every worker
/// process has finished and shut down gracefully. `shards > 1` hosts the
/// lock-striped server.
fn serve(
    config: &CliConfig,
    listen: &str,
    out: Option<&str>,
    deadline: Option<Duration>,
    shards: usize,
    io: &IoConfig,
) {
    let cfg = train_config(config);
    if cfg.method == Method::Msgd {
        fail("msgd is single-node; use `dgs-cli run`");
    }
    let (train_ds, val_ds) = datasets(config);
    let builder = model_builder(config);

    let listener = TcpListener::bind(listen)
        .unwrap_or_else(|e| fail(&format!("cannot listen on {listen}: {e}")));
    let local = listener.local_addr().map(|a| a.to_string()).unwrap_or_else(|_| listen.into());
    let iters = cfg.iters_per_worker(train_ds.len());
    let backend = match io.mode {
        IoMode::Threads => "thread-per-connection".to_string(),
        IoMode::Evented => format!("evented (max {} conns)", io.evented.max_conns),
    };
    // NOTE: process_mode tests parse the address out of this banner via
    // `" on "` / `": waiting"` — keep the backend tag after the colon.
    println!(
        "serving {} on {local}: waiting for {} workers x {iters} iterations [{backend}]",
        cfg.method.name(),
        cfg.workers
    );
    let start = Instant::now();
    let (result, stats) = if shards > 1 {
        let (logic, workers) = build_sharded_participants(
            &cfg,
            &builder,
            &train_ds,
            &val_ds,
            config.engine.worker_gflops,
            shards,
        );
        let worker_aux = workers.first().map(|w| w.aux_bytes()).unwrap_or(0);
        drop(workers); // serve-side workers are only built to size the run
        println!("server state striped across {} shards", logic.server().num_shards());
        let (logic, stats) = serve_training_sharded_io(listener, logic, cfg.workers, deadline, io)
            .unwrap_or_else(|e| fail(&format!("serve failed: {e}")));
        (logic.into_result(cfg.clone(), start.elapsed().as_secs_f64(), worker_aux), stats)
    } else {
        let (logic, workers) =
            build_participants(&cfg, &builder, &train_ds, &val_ds, config.engine.worker_gflops);
        let worker_aux = workers.first().map(|w| w.aux_bytes()).unwrap_or(0);
        drop(workers);
        let (logic, stats) = serve_training_io(listener, logic, cfg.workers, deadline, io)
            .unwrap_or_else(|e| fail(&format!("serve failed: {e}")));
        (logic.into_result(cfg.clone(), start.elapsed().as_secs_f64(), worker_aux), stats)
    };

    print_summary(&result);
    print_wire_stats("server", &stats);
    if let Some(out) = out {
        let doc = serde_json::json!({ "result": result, "wire": wire_json(&stats) });
        std::fs::write(out, serde_json::to_string_pretty(&doc).unwrap())
            .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
        println!("wrote {out}");
    }
}

/// `dgs-cli work`: run one worker's training loop against a remote server.
fn work(config: &CliConfig, connect: &str, worker_id: usize) {
    let cfg = train_config(config);
    if cfg.method == Method::Msgd {
        fail("msgd is single-node; use `dgs-cli run`");
    }
    if worker_id >= cfg.workers {
        fail(&format!("--worker {worker_id} out of range (config has {} workers)", cfg.workers));
    }
    let (train_ds, _val_ds) = datasets(config);
    let builder = model_builder(config);
    let iters = cfg.iters_per_worker(train_ds.len());
    let worker = TrainWorker::new(
        worker_id,
        builder(),
        Arc::clone(&train_ds),
        cfg.clone(),
        config.engine.worker_gflops,
    );
    println!("worker {worker_id}: {iters} iterations against {connect}");
    let (worker, stats) = run_worker(connect, worker_id as u16, worker, iters)
        .unwrap_or_else(|e| fail(&format!("worker {worker_id} failed: {e}")));
    println!("worker {worker_id}: done after {} iterations", worker.iterations());
    print_wire_stats(&format!("worker {worker_id}"), &stats);
}

fn print_wire_stats(who: &str, stats: &WireStats) {
    println!(
        "{who} wire: data_up={} data_down={} control={} frames_up={} frames_down={} \
         rejected_conns={}",
        stats.data_up,
        stats.data_down,
        stats.control,
        stats.frames_up,
        stats.frames_down,
        stats.rejected_conns
    );
}

fn wire_json(stats: &WireStats) -> serde_json::Value {
    serde_json::json!({
        "data_up": stats.data_up,
        "data_down": stats.data_down,
        "control": stats.control,
        "frames_up": stats.frames_up,
        "frames_down": stats.frames_down,
        "rejected_conns": stats.rejected_conns,
    })
}

fn print_summary(result: &RunResult) {
    println!("method           : {}", result.method_name());
    println!("final top-1      : {:.2}%", 100.0 * result.final_acc);
    println!("final val loss   : {:.4}", result.final_loss);
    println!("uplink bytes     : {}", result.bytes_up);
    println!("downlink bytes   : {}", result.bytes_down);
    println!("mean staleness   : {:.2}", result.mean_staleness);
    if result.virtual_time > 0.0 {
        println!("virtual time     : {:.2}s", result.virtual_time);
    }
    println!("host wall time   : {:.2}s", result.wall_secs);
    println!();
    println!("epoch  updates  val-acc   train-loss");
    for p in &result.curve {
        println!(
            "{:>5}  {:>7}  {:>6.2}%   {:.4}",
            p.epoch,
            p.updates,
            100.0 * p.val_acc,
            p.train_loss
        );
    }
}
