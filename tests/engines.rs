//! Cross-engine consistency: the discrete-event simulator and the
//! real-thread engine run the same algorithm objects; the DES adds a
//! deterministic virtual clock whose behaviour must match the network
//! model.

use dgs::core::config::{LrSchedule, TrainConfig};
use dgs::core::method::Method;
use dgs::core::trainer::des::{train_des, DesParams, ServerCostModel};
use dgs::core::trainer::threaded::train_async;
use dgs::nn::data::{Dataset, GaussianBlobs};
use dgs::nn::models::mlp;
use dgs::psim::NetworkModel;
use std::sync::Arc;

fn datasets() -> (Arc<dyn Dataset>, Arc<dyn Dataset>) {
    let blobs = GaussianBlobs::new(192, 10, 4, 0.35, 31);
    let val = Arc::new(blobs.validation(96));
    (Arc::new(blobs), val)
}

fn cfg(method: Method, workers: usize) -> TrainConfig {
    let mut c = TrainConfig::paper_default(method, workers, 4);
    c.batch_per_worker = 16;
    c.lr = LrSchedule::paper_default(0.05, 4);
    c.momentum = 0.45;
    c.sparsity_ratio = 0.05;
    c.clip_norm = 0.0;
    c.seed = 55;
    c.evals = 4;
    c
}

fn build() -> dgs::nn::model::Network {
    mlp(10, &[24], 4, 17)
}

#[test]
fn des_replays_identically() {
    let run = || {
        let (train, val) = datasets();
        train_des(&cfg(Method::Dgs, 3), &build, train, val, DesParams::one_gbps())
    };
    let a = run();
    let b = run();
    assert_eq!(a.virtual_time, b.virtual_time);
    assert_eq!(a.bytes_up, b.bytes_up);
    assert_eq!(a.bytes_down, b.bytes_down);
    assert_eq!(a.final_acc, b.final_acc);
    for (pa, pb) in a.curve.iter().zip(b.curve.iter()) {
        assert_eq!(pa.train_loss, pb.train_loss);
        assert_eq!(pa.virtual_time, pb.virtual_time);
        assert_eq!(pa.val_acc, pb.val_acc);
    }
}

#[test]
fn des_and_threads_process_the_same_volume() {
    // Byte totals are a pure function of the algorithm (deterministic
    // compressors over deterministic data), so both engines must agree on
    // the uplink volume; the interleaving differs, which may change the
    // sparse downlink by small amounts, so compare uplink exactly.
    let (train, val) = datasets();
    let c = cfg(Method::GdAsync, 2);
    let t = train_async(&c, &build, Arc::clone(&train), Arc::clone(&val));
    let d = train_des(&c, &build, train, val, DesParams::ten_gbps());
    assert_eq!(t.bytes_up, d.bytes_up, "uplink volume must match across engines");
    assert_eq!(t.curve.len(), d.curve.len());
}

#[test]
fn slower_bandwidth_means_more_virtual_time_for_dense() {
    let (train, val) = datasets();
    let c = cfg(Method::Asgd, 4);
    let fast = train_des(&c, &build, Arc::clone(&train), Arc::clone(&val), DesParams::ten_gbps());
    let slow = train_des(&c, &build, train, val, DesParams::one_gbps());
    assert!(
        slow.virtual_time > fast.virtual_time,
        "1 Gbps should be slower: {} vs {}",
        slow.virtual_time,
        fast.virtual_time
    );
}

#[test]
fn dense_traffic_dominates_constrained_shared_nic() {
    let (train, val) = datasets();
    // A link slow enough that transfers dominate compute at this model
    // size; both methods contend on the shared server NIC, and ASGD's
    // dense exchange must cost several times DGS's sparse one (the Fig. 5
    // phenomenon).
    let params = DesParams { network: NetworkModel::new(0.005, 50.0), ..DesParams::one_gbps() };
    let asgd =
        train_des(&cfg(Method::Asgd, 6), &build, Arc::clone(&train), Arc::clone(&val), params);
    // Secondary compression keeps the downlink sparse regardless of how
    // many stale updates the difference accumulates — the paper's own
    // low-bandwidth configuration (Fig. 5).
    let mut dgs_cfg = cfg(Method::Dgs, 6);
    dgs_cfg.secondary_compression = true;
    let dgs = train_des(&dgs_cfg, &build, train, val, params);
    // At this deliberately tiny model size headers/latency blunt the gap;
    // the bench harness (fig5/fig6) shows the order-of-magnitude factors.
    assert!(
        asgd.virtual_time > 2.0 * dgs.virtual_time,
        "ASGD should be clearly slower on a constrained shared NIC: {:.2}s vs {:.2}s",
        asgd.virtual_time,
        dgs.virtual_time
    );
    assert!(asgd.bytes_down > 3 * dgs.bytes_down);
}

#[test]
fn server_cost_model_contributes() {
    let (train, val) = datasets();
    let cheap = DesParams {
        server_cost: ServerCostModel { base_s: 0.0, per_coord_s: 0.0 },
        ..DesParams::ten_gbps()
    };
    let pricey = DesParams {
        server_cost: ServerCostModel { base_s: 5e-3, per_coord_s: 0.0 },
        ..DesParams::ten_gbps()
    };
    let c = cfg(Method::Dgs, 2);
    let a = train_des(&c, &build, Arc::clone(&train), Arc::clone(&val), cheap);
    let b = train_des(&c, &build, train, val, pricey);
    assert!(b.virtual_time > a.virtual_time);
}

#[test]
fn network_model_presets_sane() {
    let ten = NetworkModel::ten_gbps();
    let one = NetworkModel::one_gbps();
    let bytes = 1_000_000;
    assert!(one.transfer_time(bytes) > ten.transfer_time(bytes));
    assert!(
        (one.transfer_time(bytes) / ten.transfer_time(bytes) - 10.0).abs() < 1.0,
        "ratio should be close to 10x for large messages"
    );
}
