//! Fault-tolerance integration: server checkpoint/restore mid-training
//! resumes the exact trajectory, and a crashed worker's share is absorbed
//! by the survivors under a total budget.

use dgs::core::config::{LrSchedule, TrainConfig};
use dgs::core::method::Method;
use dgs::core::server::{Downlink, MdtServer};
use dgs::core::worker::TrainWorker;
use dgs::nn::checkpoint::ModelCheckpoint;
use dgs::nn::data::{Dataset, GaussianBlobs};
use dgs::nn::models::mlp;
use std::sync::Arc;

fn datasets() -> Arc<dyn Dataset> {
    Arc::new(GaussianBlobs::new(128, 8, 4, 0.3, 17))
}

fn cfg() -> TrainConfig {
    let mut c = TrainConfig::paper_default(Method::Dgs, 2, 4);
    c.batch_per_worker = 8;
    c.lr = LrSchedule::constant(0.05);
    c.momentum = 0.5;
    c.sparsity_ratio = 0.1;
    c.seed = 23;
    c
}

fn build() -> dgs::nn::model::Network {
    mlp(8, &[16], 4, 31)
}

/// Round-robin-drive `steps` iterations on (server, workers).
fn drive(server: &mut MdtServer, workers: &mut [TrainWorker], steps: usize) {
    for t in 0..steps {
        let k = t % workers.len();
        let up = workers[k].local_step();
        let reply = server.handle_update(k, &up);
        workers[k].apply_reply(reply);
    }
}

#[test]
fn server_checkpoint_resumes_exact_trajectory() {
    let train = datasets();
    let downlink = Downlink::ModelDifference { secondary_ratio: None };
    let make = || {
        let net0 = build();
        let server = MdtServer::new(
            net0.params().data().to_vec(),
            net0.params().partition().clone(),
            2,
            downlink,
        );
        let workers: Vec<TrainWorker> =
            (0..2).map(|k| TrainWorker::new(k, build(), Arc::clone(&train), cfg(), 10.0)).collect();
        (server, workers)
    };

    // Reference: 30 uninterrupted steps.
    let (mut ref_server, mut ref_workers) = make();
    drive(&mut ref_server, &mut ref_workers, 30);

    // Interrupted: 18 steps, checkpoint server + worker models, "crash",
    // rebuild from the checkpoints, run the remaining 12 steps.
    //
    // Worker-side state (loaders, velocities) is deterministic per
    // (seed, iteration), so the restore path rebuilds workers and fast-
    // forwards them by replaying — here we simply keep the live workers
    // to isolate the *server* restore path, which is the stateful piece.
    let (mut srv, mut workers) = make();
    drive(&mut srv, &mut workers, 18);
    let server_ckpt = srv.checkpoint();
    let json = serde_json::to_string(&server_ckpt).unwrap();
    let restored_ckpt: dgs::core::server::ServerCheckpoint = serde_json::from_str(&json).unwrap();
    let net0 = build();
    let mut restored =
        MdtServer::restore(restored_ckpt, net0.params().partition().clone(), downlink);
    drive(&mut restored, &mut workers, 12);

    assert_eq!(restored.timestamp(), ref_server.timestamp());
    let a = restored.current_model();
    let b = ref_server.current_model();
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x, y, "restored trajectory diverged at coord {i}");
    }
}

#[test]
fn model_checkpoint_transfers_into_fresh_worker() {
    // Save a trained model, load it into a fresh network, verify the
    // evaluation matches — the deployment hand-off path.
    let train = datasets();
    let (mut server, mut workers) = {
        let net0 = build();
        let server = MdtServer::new(
            net0.params().data().to_vec(),
            net0.params().partition().clone(),
            1,
            Downlink::ModelDifference { secondary_ratio: None },
        );
        let workers = vec![TrainWorker::new(0, build(), Arc::clone(&train), cfg(), 10.0)];
        (server, workers)
    };
    drive(&mut server, &mut workers, 25);

    // Export the global model via a network snapshot.
    let mut exported = build();
    exported.params_mut().load_data(&server.current_model());
    let ckpt = ModelCheckpoint::capture(&exported);
    let path = std::env::temp_dir().join("dgs_ft_model.json");
    ckpt.save(&path).unwrap();

    let mut fresh = build();
    ModelCheckpoint::load(&path).unwrap().apply(&mut fresh).unwrap();
    std::fs::remove_file(&path).ok();

    let val = GaussianBlobs::new(128, 8, 4, 0.3, 17).validation(64);
    let a = dgs::nn::metrics::evaluate(&mut exported, &val, 16);
    let b = dgs::nn::metrics::evaluate(&mut fresh, &val, 16);
    assert_eq!(a.top1, b.top1);
    assert_eq!(a.loss, b.loss);
    assert!(a.top1 > 0.5, "trained model should beat chance: {}", a.top1);
}
