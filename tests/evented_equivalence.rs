//! Differential test: the evented server backend is a bitwise drop-in
//! for the thread-per-connection oracle.
//!
//! Every scenario runs the *same* pinned schedule twice over real TCP —
//! once with `IoMode::Threads` (the blocking accept loop that has been
//! the oracle since PR 2) and once with `IoMode::Evented` (one poller,
//! per-connection state machines, incremental decoding, coalesced
//! writes) — and asserts byte-for-byte identity: server model, worker
//! models, training curves, the logic's traffic accounting, and the
//! **exact** transport byte counters on both endpoints. Covered across
//! every method family, the lock-striped sharded server, and mid-run
//! reconnect + resync faults. The clean runs are additionally anchored
//! to the in-process loopback oracle, which `transport_equivalence`
//! already proves bitwise equal to struct-passing training.

use dgs::core::config::{LrSchedule, TrainConfig};
use dgs::core::method::Method;
use dgs::core::trainer::schedule_for;
use dgs::net::runtime::{train_loopback, train_tcp, train_tcp_sharded, Fault, IoConfig, TransportRun};
use dgs::nn::data::{Dataset, GaussianBlobs};
use dgs::nn::models::mlp;
use std::sync::Arc;

fn datasets() -> (Arc<dyn Dataset>, Arc<dyn Dataset>) {
    let blobs = GaussianBlobs::new(96, 6, 3, 0.4, 5);
    let val = Arc::new(blobs.validation(48));
    (Arc::new(blobs), val)
}

fn quick_cfg(method: Method) -> TrainConfig {
    let mut cfg = TrainConfig::paper_default(method, 3, 2);
    cfg.batch_per_worker = 8;
    cfg.lr = LrSchedule::paper_default(0.05, 2);
    cfg.momentum = 0.4;
    cfg.sparsity_ratio = 0.25;
    cfg.clip_norm = 0.0;
    cfg.seed = 11;
    cfg.evals = 2;
    cfg
}

/// Bitwise identity between two transport runs, including exact wire
/// counters on both endpoints. `WireStats` is `PartialEq` over every
/// counter, so one assert per endpoint covers data/control/frame/reject
/// counts down to the byte.
fn assert_runs_identical(a: &TransportRun, b: &TransportRun, what: &str) {
    assert_eq!(a.server_model, b.server_model, "{what}: server model diverged");
    assert_eq!(a.worker_models, b.worker_models, "{what}: a worker model diverged");
    assert_eq!(a.result.bytes_up, b.result.bytes_up, "{what}: uplink accounting diverged");
    assert_eq!(a.result.bytes_down, b.result.bytes_down, "{what}: downlink accounting diverged");
    assert_eq!(a.result.curve.len(), b.result.curve.len(), "{what}: curve lengths diverged");
    for (x, y) in a.result.curve.iter().zip(&b.result.curve) {
        assert_eq!(x.val_acc, y.val_acc, "{what}: curves diverged");
        assert_eq!(x.train_loss, y.train_loss, "{what}: curves diverged");
    }
    assert_eq!(a.server_stats, b.server_stats, "{what}: server wire counters diverged");
    assert_eq!(a.worker_stats, b.worker_stats, "{what}: worker wire counters diverged");
}

/// Clean run (no faults): threaded vs evented, anchored to loopback.
fn assert_backends_agree(cfg: &TrainConfig) {
    let (train, val) = datasets();
    let builder = || mlp(6, &[12], 3, cfg.seed);
    let schedule = schedule_for(cfg, train.len(), Some(0xD6A1));

    let threaded = train_tcp(
        cfg,
        &builder,
        Arc::clone(&train),
        Arc::clone(&val),
        &schedule,
        &IoConfig::default(),
        &[],
    )
    .expect("threaded tcp run");
    let evented = train_tcp(
        cfg,
        &builder,
        Arc::clone(&train),
        Arc::clone(&val),
        &schedule,
        &IoConfig::evented(64),
        &[],
    )
    .expect("evented tcp run");
    assert_runs_identical(&threaded, &evented, &format!("{:?}", cfg.method));
    assert_eq!(evented.server_stats.rejected_conns, 0);

    // Anchor to the loopback oracle: identical models, and the data-frame
    // byte counters match exactly (control traffic differs by design —
    // TCP adds hello/ack/shutdown frames that loopback doesn't need).
    let wired = train_loopback(cfg, &builder, train, val, &schedule).expect("loopback run");
    assert_eq!(evented.server_model, wired.server_model, "evented drifted from loopback");
    assert_eq!(evented.worker_models, wired.worker_models, "evented drifted from loopback");
    assert_eq!(evented.server_stats.data_up, wired.server_stats.data_up);
    assert_eq!(evented.server_stats.data_down, wired.server_stats.data_down);
}

#[test]
fn asgd_backends_are_bitwise_identical() {
    assert_backends_agree(&quick_cfg(Method::Asgd));
}

#[test]
fn gd_async_backends_are_bitwise_identical() {
    assert_backends_agree(&quick_cfg(Method::GdAsync));
}

#[test]
fn dgc_async_backends_are_bitwise_identical() {
    assert_backends_agree(&quick_cfg(Method::DgcAsync));
}

#[test]
fn dgs_backends_are_bitwise_identical() {
    assert_backends_agree(&quick_cfg(Method::Dgs));
}

#[test]
fn dgs_with_secondary_compression_backends_are_bitwise_identical() {
    let mut cfg = quick_cfg(Method::Dgs);
    cfg.secondary_compression = true;
    assert_backends_agree(&cfg);
}

#[test]
fn dgs_with_ternary_uplink_backends_are_bitwise_identical() {
    let mut cfg = quick_cfg(Method::Dgs);
    cfg.quantize_uplink = true;
    assert_backends_agree(&cfg);
}

/// Mid-run reconnect (dropped connection + re-handshake) and an explicit
/// resync both replay identically on the two backends: the faults fire
/// at fixed schedule steps, so hello/resync control frames and the
/// dense-model recovery replies land in the same places byte-for-byte.
#[test]
fn reconnect_and_resync_mid_run_are_bitwise_identical() {
    let cfg = quick_cfg(Method::Dgs);
    let (train, val) = datasets();
    let builder = || mlp(6, &[12], 3, cfg.seed);
    let schedule = schedule_for(&cfg, train.len(), Some(0xD6A1));
    let len = schedule.len();
    assert!(len >= 6, "schedule too short to place mid-run faults");
    let order = schedule.order();
    // Pin the faults to steps owned by the workers actually scheduled
    // there, so each fault really fires.
    let faults = [
        Fault::Reconnect { step: len / 3, worker: order[len / 3] },
        Fault::Resync { step: 2 * len / 3, worker: order[2 * len / 3] },
    ];

    let threaded = train_tcp(
        &cfg,
        &builder,
        Arc::clone(&train),
        Arc::clone(&val),
        &schedule,
        &IoConfig::default(),
        &faults,
    )
    .expect("threaded faulted run");
    let evented = train_tcp(
        &cfg,
        &builder,
        Arc::clone(&train),
        Arc::clone(&val),
        &schedule,
        &IoConfig::evented(64),
        &faults,
    )
    .expect("evented faulted run");
    assert_runs_identical(&threaded, &evented, "faulted dgs");
    // The faults actually happened: a resync is a control frame on top of
    // the clean run's traffic, so control bytes must exceed a no-fault
    // run's on the same schedule.
    let clean = train_tcp(
        &cfg,
        &builder,
        Arc::clone(&train),
        Arc::clone(&val),
        &schedule,
        &IoConfig::default(),
        &[],
    )
    .expect("clean reference run");
    assert!(
        threaded.server_stats.control > clean.server_stats.control,
        "faults produced no extra control traffic — did they fire?"
    );
}

/// The lock-striped sharded server behind the evented loop: the deepest
/// stack (sharded logic + per-worker locks + event loop) still replays
/// the threaded oracle bitwise, faults included.
#[test]
fn sharded_server_backends_are_bitwise_identical() {
    let mut cfg = quick_cfg(Method::Dgs);
    cfg.secondary_compression = true;
    let (train, val) = datasets();
    let builder = || mlp(6, &[12], 3, cfg.seed);
    let schedule = schedule_for(&cfg, train.len(), Some(0xD6A1));
    let faults = [Fault::Reconnect { step: schedule.len() / 2, worker: schedule.order()[schedule.len() / 2] }];

    let threaded = train_tcp_sharded(
        &cfg,
        &builder,
        Arc::clone(&train),
        Arc::clone(&val),
        &schedule,
        3,
        &IoConfig::default(),
        &faults,
    )
    .expect("threaded sharded run");
    let evented = train_tcp_sharded(
        &cfg,
        &builder,
        Arc::clone(&train),
        Arc::clone(&val),
        &schedule,
        3,
        &IoConfig::evented(64),
        &faults,
    )
    .expect("evented sharded run");
    assert_runs_identical(&threaded, &evented, "sharded dgs");
}
