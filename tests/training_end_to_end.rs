//! End-to-end training behaviour across all five methods: everything
//! learns, traffic relations hold, and memory accounting matches the
//! analytic model of §5.6.2.

use dgs::core::config::{LrSchedule, TrainConfig};
use dgs::core::memory::MemoryReport;
use dgs::core::method::Method;
use dgs::core::trainer::single::train_msgd;
use dgs::core::trainer::threaded::train_async;
use dgs::nn::data::{Dataset, GaussianBlobs};
use dgs::nn::models::mlp;
use std::sync::Arc;

fn datasets() -> (Arc<dyn Dataset>, Arc<dyn Dataset>) {
    let blobs = GaussianBlobs::new(256, 10, 4, 0.35, 21);
    let val = Arc::new(blobs.validation(128));
    (Arc::new(blobs), val)
}

fn cfg(method: Method, workers: usize) -> TrainConfig {
    let mut c = TrainConfig::paper_default(method, workers, 6);
    c.batch_per_worker = 16;
    c.lr = LrSchedule::paper_default(0.05, 6);
    c.momentum = 0.45;
    c.sparsity_ratio = 0.05;
    c.clip_norm = 0.0;
    c.seed = 77;
    c.evals = 3;
    c
}

fn build() -> dgs::nn::model::Network {
    mlp(10, &[32, 16], 4, 13)
}

#[test]
fn every_method_learns_the_task() {
    let (train, val) = datasets();
    for method in Method::ALL {
        let c = cfg(method, 3);
        let res = if method == Method::Msgd {
            train_msgd(build(), Arc::clone(&train), Arc::clone(&val), &c)
        } else {
            train_async(&c, &build, Arc::clone(&train), Arc::clone(&val))
        };
        assert!(res.final_acc > 0.8, "{method} failed to learn: acc {}", res.final_acc);
        assert!(res.curve.len() >= 3, "{method} curve too short");
        // Loss decreases over training.
        assert!(
            res.curve.last().unwrap().train_loss < res.curve[0].train_loss,
            "{method} loss did not decrease"
        );
    }
}

#[test]
fn traffic_hierarchy_matches_paper() {
    // ASGD dense ≫ sparse methods in both directions; DGS uplink equals
    // GD-async uplink (same Top-k budget).
    let (train, val) = datasets();
    let asgd = train_async(&cfg(Method::Asgd, 3), &build, Arc::clone(&train), Arc::clone(&val));
    let gd = train_async(&cfg(Method::GdAsync, 3), &build, Arc::clone(&train), Arc::clone(&val));
    let dgs = train_async(&cfg(Method::Dgs, 3), &build, Arc::clone(&train), Arc::clone(&val));
    assert!(asgd.bytes_up > 3 * dgs.bytes_up, "uplink should shrink");
    assert!(asgd.bytes_down > 3 * dgs.bytes_down, "downlink should shrink");
    assert_eq!(gd.bytes_up, dgs.bytes_up, "GD-async and DGS send the same Top-k volume upward");
}

#[test]
fn live_memory_matches_analytic_model() {
    let (train, val) = datasets();
    let model_bytes = build().num_params() * 4;
    for method in Method::ASYNC {
        let res = train_async(&cfg(method, 3), &build, Arc::clone(&train), Arc::clone(&val));
        let analytic = MemoryReport::analytic(method, 3, model_bytes);
        assert_eq!(
            res.server_tracking_bytes, analytic.server_tracking_bytes,
            "{method} server tracking bytes"
        );
        assert_eq!(res.worker_aux_bytes, analytic.worker_aux_bytes, "{method} worker aux bytes");
    }
}

#[test]
fn staleness_grows_with_workers() {
    let (train, val) = datasets();
    let r2 = train_async(&cfg(Method::Dgs, 2), &build, Arc::clone(&train), Arc::clone(&val));
    let r6 = train_async(&cfg(Method::Dgs, 6), &build, Arc::clone(&train), Arc::clone(&val));
    assert!(
        r6.mean_staleness > r2.mean_staleness,
        "staleness should grow with workers: {} vs {}",
        r2.mean_staleness,
        r6.mean_staleness
    );
    // With the round-trip protocol, mean staleness ≈ workers − 1.
    assert!((r2.mean_staleness - 1.0).abs() < 0.5);
    assert!((r6.mean_staleness - 5.0).abs() < 1.0);
}

#[test]
fn secondary_compression_caps_downlink() {
    let (train, val) = datasets();
    let mut with = cfg(Method::Dgs, 4);
    with.secondary_compression = true;
    let mut without = cfg(Method::Dgs, 4);
    without.secondary_compression = false;
    let r_with = train_async(&with, &build, Arc::clone(&train), Arc::clone(&val));
    let r_without = train_async(&without, &build, Arc::clone(&train), Arc::clone(&val));
    assert!(
        r_with.bytes_down < r_without.bytes_down,
        "secondary compression must reduce downlink: {} vs {}",
        r_with.bytes_down,
        r_without.bytes_down
    );
    // And it must not destroy learning.
    assert!(r_with.final_acc > 0.75, "acc {}", r_with.final_acc);
}

#[test]
fn quantized_uplink_trains_with_fewer_bytes() {
    // The §6 extension end-to-end: DGS with a ternary-quantized uplink
    // still learns (the quantizer is unbiased) and sends far fewer bytes.
    let (train, val) = datasets();
    let mut plain = cfg(Method::Dgs, 3);
    plain.sparsity_ratio = 0.1;
    let mut quant = plain.clone();
    quant.quantize_uplink = true;
    let r_plain = train_async(&plain, &build, Arc::clone(&train), Arc::clone(&val));
    let r_quant = train_async(&quant, &build, train, val);
    assert!(
        r_quant.bytes_up * 3 < r_plain.bytes_up * 2,
        "quantized uplink should save bytes: {} vs {}",
        r_quant.bytes_up,
        r_plain.bytes_up
    );
    assert!(r_quant.final_acc > 0.7, "quantized DGS should still learn: {}", r_quant.final_acc);
}

#[test]
fn weight_decay_shrinks_parameter_norm() {
    let (train, val) = datasets();
    let mut no_wd = cfg(Method::Dgs, 2);
    no_wd.sparsity_ratio = 0.2;
    let mut with_wd = no_wd.clone();
    with_wd.weight_decay = 0.05;
    let a = train_async(&no_wd, &build, Arc::clone(&train), Arc::clone(&val));
    let b = train_async(&with_wd, &build, train, val);
    // Both learn; decay keeps the loss landscape bounded. Accuracy is task
    // dependent, so just require both to be functional and distinct runs.
    assert!(a.final_acc > 0.7 && b.final_acc > 0.6);
    assert_ne!(a.final_loss, b.final_loss, "decay must change the trajectory");
}

#[test]
fn kernel_backend_swap_preserves_trained_bits() {
    // The compute tier's bitwise contract, end to end: training the same
    // model on the scalar oracle, the SIMD backend, and the runtime
    // default must produce byte-identical parameter vectors and logits.
    use dgs::nn::models::tiny_cnn;
    use dgs::nn::Kernel;
    use dgs::tensor::Tensor;

    let x = Tensor::randn([8, 1, 8, 8], 1.0, 3030);
    let labels: Vec<usize> = (0..8).map(|i| i % 3).collect();

    let train = |kernel: Option<Kernel>| -> (Vec<u32>, Vec<u32>) {
        // 1×8×8 input, one conv+pool stage, 3 classes: small but it runs
        // GEMM, im2col conv, max-pool and ReLU on every step.
        let mut net = tiny_cnn(1, 8, 3, 4, 99);
        if let Some(k) = kernel {
            net.set_kernel(k);
        }
        for _ in 0..4 {
            net.train_step(x.clone(), &labels);
            let grads = net.params().grad().to_vec();
            let data = net.params_mut().data_mut();
            for (p, g) in data.iter_mut().zip(grads.iter()) {
                *p -= 0.05 * g;
            }
        }
        let logits = net.forward(x.clone());
        (
            net.params().data().iter().map(|v| v.to_bits()).collect(),
            logits.data().iter().map(|v| v.to_bits()).collect(),
        )
    };

    let (p_scalar, l_scalar) = train(Some(Kernel::Scalar));
    let (p_simd, l_simd) = train(Some(Kernel::Simd));
    let (p_runtime, l_runtime) = train(None);
    assert_eq!(p_scalar, p_simd, "trained parameter bits diverged across kernel backends");
    assert_eq!(l_scalar, l_simd, "final logits bits diverged across kernel backends");
    assert_eq!(p_scalar, p_runtime, "runtime backend diverged from explicit backends");
    assert_eq!(l_scalar, l_runtime, "runtime logits diverged from explicit backends");
}

#[test]
fn run_results_serialise() {
    let (train, val) = datasets();
    let res = train_async(&cfg(Method::Dgs, 2), &build, train, val);
    let json = serde_json::to_string(&res).expect("serialise");
    let back: dgs::core::curves::RunResult = serde_json::from_str(&json).expect("parse");
    assert_eq!(back.final_acc, res.final_acc);
    assert_eq!(back.curve.len(), res.curve.len());
    assert_eq!(back.config.method, Method::Dgs);
}
