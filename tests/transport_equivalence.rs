//! Differential test: the transport stack is invisible to training.
//!
//! `train_scheduled` hands `UpMsg`/`DownMsg` structs straight to the
//! server logic; `train_loopback` replays the *same* arrival schedule but
//! pushes every message through the `dgs-net` codec (encode → bytes →
//! decode, both directions). Because the codec is lossless on every
//! payload variant, the two runs must be **bitwise identical** — same
//! server model, same worker models, same curves — for every training
//! method. This is the proof that moving to a real transport (TCP)
//! changes nothing about the learning dynamics.

use dgs::core::config::{LrSchedule, TrainConfig};
use dgs::core::method::Method;
use dgs::core::trainer::{schedule_for, train_scheduled};
use dgs::net::runtime::train_loopback;
use dgs::nn::data::{Dataset, GaussianBlobs};
use dgs::nn::models::mlp;
use std::sync::Arc;

fn datasets() -> (Arc<dyn Dataset>, Arc<dyn Dataset>) {
    let blobs = GaussianBlobs::new(96, 6, 3, 0.4, 5);
    let val = Arc::new(blobs.validation(48));
    (Arc::new(blobs), val)
}

fn quick_cfg(method: Method) -> TrainConfig {
    let mut cfg = TrainConfig::paper_default(method, 3, 2);
    cfg.batch_per_worker = 8;
    cfg.lr = LrSchedule::paper_default(0.05, 2);
    cfg.momentum = 0.4;
    cfg.sparsity_ratio = 0.25;
    cfg.clip_norm = 0.0;
    cfg.seed = 11;
    cfg.evals = 2;
    cfg
}

/// Runs both drivers on an interleaved (seeded, non-trivial) schedule and
/// asserts bitwise model equality plus byte-counter agreement between the
/// server logic's accounting and the transport's frame counters.
fn assert_transport_invisible(cfg: &TrainConfig) {
    let (train, val) = datasets();
    let builder = || mlp(6, &[12], 3, cfg.seed);
    let schedule = schedule_for(cfg, train.len(), Some(0xD6A1));

    let direct = train_scheduled(cfg, &builder, Arc::clone(&train), Arc::clone(&val), &schedule);
    let wired = train_loopback(cfg, &builder, train, val, &schedule).expect("loopback run");

    assert_eq!(
        direct.server_model, wired.server_model,
        "{:?}: server model drifted through the codec",
        cfg.method
    );
    assert_eq!(
        direct.worker_models, wired.worker_models,
        "{:?}: a worker model drifted through the codec",
        cfg.method
    );
    assert_eq!(direct.result.bytes_up, wired.result.bytes_up);
    assert_eq!(direct.result.bytes_down, wired.result.bytes_down);
    assert_eq!(direct.result.curve.len(), wired.result.curve.len());
    for (d, w) in direct.result.curve.iter().zip(&wired.result.curve) {
        assert_eq!(d.val_acc, w.val_acc, "{:?}: curves diverged", cfg.method);
        assert_eq!(d.train_loss, w.train_loss, "{:?}: curves diverged", cfg.method);
    }

    // The transport counted real encoded frames; the logic counted
    // `wire_bytes()`. In a clean run (no resyncs) they must agree exactly,
    // on both endpoints.
    let up: u64 = wired.worker_stats.iter().map(|s| s.data_up).sum();
    let down: u64 = wired.worker_stats.iter().map(|s| s.data_down).sum();
    assert_eq!(up, wired.result.bytes_up, "{:?}: uplink frames != wire_bytes", cfg.method);
    assert_eq!(down, wired.result.bytes_down, "{:?}: downlink frames != wire_bytes", cfg.method);
    assert_eq!(wired.server_stats.data_up, up);
    assert_eq!(wired.server_stats.data_down, down);
    let frames: u64 = wired.worker_stats.iter().map(|s| s.frames_up).sum();
    assert_eq!(frames as usize, schedule.len(), "one uplink data frame per scheduled step");
}

#[test]
fn asgd_is_transport_invariant() {
    assert_transport_invisible(&quick_cfg(Method::Asgd));
}

#[test]
fn gd_async_is_transport_invariant() {
    assert_transport_invisible(&quick_cfg(Method::GdAsync));
}

#[test]
fn dgc_async_is_transport_invariant() {
    assert_transport_invisible(&quick_cfg(Method::DgcAsync));
}

#[test]
fn dgs_is_transport_invariant() {
    assert_transport_invisible(&quick_cfg(Method::Dgs));
}

#[test]
fn dgs_with_secondary_compression_is_transport_invariant() {
    let mut cfg = quick_cfg(Method::Dgs);
    cfg.secondary_compression = true;
    assert_transport_invisible(&cfg);
}

#[test]
fn dgs_with_ternary_uplink_is_transport_invariant() {
    let mut cfg = quick_cfg(Method::Dgs);
    cfg.quantize_uplink = true;
    assert_transport_invisible(&cfg);
}

#[test]
fn round_robin_schedule_also_matches() {
    let cfg = quick_cfg(Method::Dgs);
    let (train, val) = datasets();
    let builder = || mlp(6, &[12], 3, cfg.seed);
    let schedule = schedule_for(&cfg, train.len(), None);
    let direct = train_scheduled(&cfg, &builder, Arc::clone(&train), Arc::clone(&val), &schedule);
    let wired = train_loopback(&cfg, &builder, train, val, &schedule).expect("loopback run");
    assert_eq!(direct.server_model, wired.server_model);
    assert_eq!(direct.worker_models, wired.worker_models);
}
