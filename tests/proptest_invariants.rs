//! Property-based tests of the reproduction's core invariants
//! (DESIGN.md §5), driven by proptest across random inputs.

use dgs::core::compress::{
    Compressor, DgcCompressor, GradientDroppingCompressor, SaMomentumCompressor, StepCtx,
};
use dgs::core::protocol::{DownMsg, UpMsg, UpPayload};
use dgs::core::server::{DiffStrategy, Downlink, MdtServer};
use dgs::sparsify::{
    k_for_ratio, random_unbiased_sparsify, topk_indices, topk_threshold, Partition, SparseUpdate,
    TernaryUpdate,
};
use proptest::prelude::*;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    /// Top-k always returns exactly min(k, n) distinct, sorted indices,
    /// and every kept magnitude dominates every dropped magnitude.
    #[test]
    fn topk_selects_dominating_set(values in small_vec(64), k in 0usize..80) {
        let idx = topk_indices(&values, k);
        let expected = k.min(values.len());
        prop_assert_eq!(idx.len(), expected);
        prop_assert!(idx.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
        if expected > 0 && expected < values.len() {
            let thr = topk_threshold(&values, expected);
            for (i, v) in values.iter().enumerate() {
                if idx.contains(&(i as u32)) {
                    prop_assert!(v.abs() >= thr);
                } else {
                    prop_assert!(v.abs() <= thr);
                }
            }
        }
    }

    /// COO encode/decode round-trips losslessly and the advertised wire
    /// size is exact.
    #[test]
    fn coo_roundtrip(values in small_vec(48), ratio in 0.01f64..1.0) {
        let part = Partition::from_layer_sizes([("a", 16), ("b", 32)]);
        let up = SparseUpdate::from_topk(&values, &part, ratio);
        let encoded = up.encode();
        prop_assert_eq!(encoded.len(), up.wire_bytes());
        let decoded = SparseUpdate::decode(encoded).expect("decode");
        prop_assert_eq!(decoded, up);
    }

    /// k_for_ratio is monotone in both arguments and clamped to [1, len]
    /// for non-empty inputs.
    #[test]
    fn k_for_ratio_monotone(len in 1usize..10_000, ratio in 0.0001f64..1.0) {
        let k = k_for_ratio(len, ratio);
        prop_assert!(k >= 1 && k <= len);
        prop_assert!(k_for_ratio(len, (ratio * 2.0).min(1.0)) >= k);
        prop_assert!(k_for_ratio(len * 2, ratio) >= k);
    }

    /// Gradient-dropping conservation: at every step, transmitted mass plus
    /// residual equals the total accumulated η∇ (no gradient is ever lost).
    #[test]
    fn gd_conserves_gradient_mass(
        grads in proptest::collection::vec(small_vec(24), 1..12),
        lr in 0.01f32..0.5,
        ratio in 0.05f64..0.9,
    ) {
        let dim = 24;
        let part = Partition::from_layer_sizes([("a", 8), ("b", 16)]);
        let mut comp = GradientDroppingCompressor::new(dim);
        let mut total = vec![0.0f64; dim];
        let mut sent = vec![0.0f64; dim];
        for grad in &grads {
            for (t, &g) in total.iter_mut().zip(grad.iter()) {
                *t += (lr * g) as f64;
            }
            let up = comp.compress(grad, &part, StepCtx { lr, ratio });
            if let UpPayload::Sparse(s) = up {
                let dense = s.to_dense(&part);
                for (acc, &v) in sent.iter_mut().zip(dense.iter()) {
                    *acc += v as f64;
                }
            }
            for i in 0..dim {
                let held = comp.residual()[i] as f64;
                prop_assert!(
                    (total[i] - sent[i] - held).abs() < 1e-3,
                    "conservation broken at coord {}: total {} sent {} held {}",
                    i, total[i], sent[i], held
                );
            }
        }
    }

    /// SAMomentum at ratio 1.0 is bit-for-bit plain momentum (Eq. 16, T=1).
    #[test]
    fn samomentum_dense_limit(
        grads in proptest::collection::vec(small_vec(8), 1..10),
        m in 0.1f32..0.95,
        lr in 0.01f32..0.5,
    ) {
        let part = Partition::single(8);
        let mut comp = SaMomentumCompressor::new(8, m);
        let mut u_ref = [0.0f32; 8];
        for grad in &grads {
            for (u, &g) in u_ref.iter_mut().zip(grad.iter()) {
                *u = m * *u + lr * g;
            }
            let up = comp.compress(grad, &part, StepCtx { lr, ratio: 1.0 });
            if let UpPayload::Sparse(s) = up {
                let dense = s.to_dense(&part);
                for (a, b) in dense.iter().zip(u_ref.iter()) {
                    prop_assert!((a - b).abs() <= 1e-5 * b.abs().max(1.0));
                }
            }
        }
    }

    /// SAMomentum telescoping (Eq. 16): for a coordinate never selected,
    /// the stored velocity follows u += (lr/m)·g per step, so the value it
    /// would transmit after T quiet steps is m·u_c + lr·Σg.
    #[test]
    fn samomentum_telescopes(
        quiet_grads in proptest::collection::vec(-0.01f32..0.01, 1..20),
        m in 0.2f32..0.9,
    ) {
        let lr = 0.1f32;
        let part = Partition::single(2);
        let mut comp = SaMomentumCompressor::new(2, m);
        // Coordinate 0 dominates, k = 1 keeps selecting it.
        comp.compress(&[1000.0, 0.001], &part, StepCtx { lr, ratio: 0.5 });
        let u_start = comp.velocity()[1];
        let mut sum = 0.0f32;
        for &g in &quiet_grads {
            comp.compress(&[1000.0, g], &part, StepCtx { lr, ratio: 0.5 });
            sum += g;
        }
        let next_sent = m * comp.velocity()[1];
        let telescoped = m * u_start + lr * sum;
        prop_assert!(
            (next_sent - telescoped).abs() < 1e-4 * telescoped.abs().max(1.0),
            "Eq. 16: {} vs {}", next_sent, telescoped
        );
    }

    /// DGC factor masking: after every step the sent coordinates are zero
    /// in both velocity and residual.
    #[test]
    fn dgc_factor_masking(
        grads in proptest::collection::vec(small_vec(16), 1..8),
        m in 0.1f32..0.95,
    ) {
        let part = Partition::single(16);
        let mut comp = DgcCompressor::new(16, m, 0.0);
        for grad in &grads {
            let up = comp.compress(grad, &part, StepCtx { lr: 0.1, ratio: 0.25 });
            if let UpPayload::Sparse(s) = up {
                for &i in &s.chunks[0].idx {
                    prop_assert_eq!(comp.velocity()[i as usize], 0.0);
                    prop_assert_eq!(comp.residual()[i as usize], 0.0);
                }
            }
        }
    }

    /// Ternary wire format: encode/decode round-trips for arbitrary inputs,
    /// sizes are exact, and dequantized values carry the right signs.
    #[test]
    fn ternary_roundtrip(values in small_vec(40), seed in 0u64..1000) {
        let part = Partition::from_layer_sizes([("a", 16), ("b", 24)]);
        let up = SparseUpdate::from_topk(&values, &part, 0.4);
        let q = TernaryUpdate::quantize(&up, seed);
        let encoded = q.encode();
        prop_assert_eq!(encoded.len(), q.wire_bytes());
        let decoded = TernaryUpdate::decode(encoded).expect("decode");
        prop_assert_eq!(&decoded, &q);
        // Dequantized values: same indices subset, magnitudes equal the
        // per-chunk scale, signs match the originals.
        let dense_in = up.to_dense(&part);
        let dq = decoded.dequantize();
        for (ci, chunk) in dq.chunks.iter().enumerate() {
            let offset = part.segments()[ci].offset;
            for (&i, &v) in chunk.idx.iter().zip(chunk.val.iter()) {
                let orig = dense_in[offset + i as usize];
                prop_assert!(orig != 0.0, "quantizer kept a zero coordinate");
                prop_assert_eq!(v > 0.0, orig > 0.0, "sign preserved");
            }
        }
    }

    /// Random unbiased dropping: kept values are the originals rescaled by
    /// 1/p >= 1, so magnitudes never shrink.
    #[test]
    fn random_drop_never_shrinks_magnitudes(values in small_vec(60), seed in 0u64..1000) {
        let sv = random_unbiased_sparsify(&values, 0.3, seed);
        for (&i, &v) in sv.idx.iter().zip(sv.val.iter()) {
            let orig = values[i as usize];
            prop_assert!(orig != 0.0);
            prop_assert_eq!(v > 0.0, orig > 0.0, "sign preserved");
            prop_assert!(
                v.abs() >= orig.abs() * 0.999,
                "rescale by 1/p must not shrink: {} vs {}", v, orig
            );
        }
    }

    /// The O(nnz) log-merge downlink is bitwise identical (through the wire
    /// encoding) to the O(dim) dense-scan reference under random worker
    /// interleavings, random secondary-compression ratios, and log
    /// capacities small enough to force the truncation fallback — and the
    /// two servers' M / v_k state never diverges.
    #[test]
    fn log_merge_bitwise_equals_dense_scan(
        schedule in proptest::collection::vec(0usize..3, 1..60),
        theta0 in small_vec(12),
        ratio_pct in proptest::option::of(1u32..60),
        log_capacity in proptest::option::of(1usize..24),
    ) {
        let part = Partition::from_layer_sizes([("a", 4), ("b", 8)]);
        let secondary = ratio_pct.map(|p| p as f64 / 100.0);
        let downlink = Downlink::ModelDifference { secondary_ratio: secondary };
        let mut log_srv = MdtServer::new(theta0.clone(), part.clone(), 3, downlink);
        let mut dense_srv = MdtServer::new(theta0, part.clone(), 3, downlink);
        dense_srv.set_diff_strategy(DiffStrategy::DenseScan);
        if let Some(cap) = log_capacity {
            log_srv.set_log_capacity(cap);
        }
        for (step, &k) in schedule.iter().enumerate() {
            let mut g = vec![0.0f32; 12];
            // Exact dyadic values so repeated ± hits produce exact zeros in
            // M − v_k, exercising the dirty-coordinate bookkeeping.
            g[(step * 5 + k) % 12] = ((step % 9) as f32 - 4.0) * 0.125;
            g[(step * 3 + 7) % 12] = 0.25;
            let up = UpMsg {
                payload: UpPayload::Sparse(SparseUpdate::from_nonzero(&g, &part)),
                train_loss: 0.0,
            };
            let reply_log = log_srv.handle_update(k, &up);
            let reply_dense = dense_srv.handle_update(k, &up);
            match (reply_log, reply_dense) {
                (DownMsg::SparseDiff(a), DownMsg::SparseDiff(b)) => {
                    prop_assert_eq!(a.encode(), b.encode(), "payload diverged at step {}", step);
                }
                _ => prop_assert!(false, "expected sparse diff replies"),
            }
        }
        prop_assert_eq!(log_srv.m(), dense_srv.m());
        for w in 0..3 {
            prop_assert_eq!(log_srv.v(w), dense_srv.v(w));
        }
    }

    /// MDT bookkeeping under random interleavings: v_k equals the sum of
    /// everything sent to k, and with no secondary compression every reply
    /// leaves the recipient's implied model equal to the server model.
    #[test]
    fn mdt_random_interleaving(
        schedule in proptest::collection::vec(0usize..3, 1..40),
        seed_vals in small_vec(12),
    ) {
        let part = Partition::from_layer_sizes([("a", 4), ("b", 8)]);
        let theta0 = seed_vals.clone();
        let mut server = MdtServer::new(
            theta0.clone(),
            part.clone(),
            3,
            Downlink::ModelDifference { secondary_ratio: None },
        );
        let mut worker_models = vec![theta0.clone(); 3];
        for (step, &k) in schedule.iter().enumerate() {
            let mut g = vec![0.0f32; 12];
            g[(step * 5 + k) % 12] = 0.1 + (step % 7) as f32 * 0.05;
            let up = UpMsg {
                payload: UpPayload::Sparse(SparseUpdate::from_nonzero(&g, &part)),
                train_loss: 0.0,
            };
            let reply = server.handle_update(k, &up);
            if let DownMsg::SparseDiff(diff) = reply {
                diff.apply_add(&mut worker_models[k], &part, 1.0);
            }
            let sm = server.current_model();
            for i in 0..12 {
                prop_assert!(
                    (worker_models[k][i] - sm[i]).abs() < 1e-4,
                    "worker {} coord {} diverged at step {}", k, i, step
                );
                prop_assert!(
                    (server.v(k)[i] - (worker_models[k][i] - theta0[i])).abs() < 1e-4,
                    "v bookkeeping broken"
                );
            }
        }
    }
}
