//! End-to-end tests of the `dgs-cli` binary: config parsing, training
//! round-trips, and the JSON results artefact.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dgs-cli"))
}

fn quick_config(method: &str, engine: &str) -> String {
    format!(
        r#"{{
  "workload": {{ "kind": "blobs", "samples": 128, "val_samples": 64,
                 "classes": 3, "dim": 8, "noise": 0.4 }},
  "model": {{ "kind": "mlp", "hidden": [16] }},
  "train": {{ "method": "{method}", "workers": 2, "batch_per_worker": 8,
              "epochs": 3, "lr": 0.05, "momentum": 0.4,
              "sparsity_ratio": 0.1, "seed": 7 }},
  "engine": {{ "kind": "{engine}" }}
}}"#
    )
}

#[test]
fn init_emits_valid_config() {
    let out = cli().arg("init").output().expect("run dgs-cli init");
    assert!(out.status.success());
    let parsed: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("init output is JSON");
    assert_eq!(parsed["train"]["method"], "dgs");
    assert!(parsed["workload"]["samples"].as_u64().unwrap() > 0);
}

#[test]
fn methods_lists_all_five() {
    let out = cli().arg("methods").output().expect("run dgs-cli methods");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["MSGD", "ASGD", "GD-async", "DGC-async", "DGS"] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
    assert!(text.contains("SAMomentum"));
}

#[test]
fn run_trains_and_writes_results() {
    let dir = std::env::temp_dir().join("dgs_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let cfg_path = dir.join("cfg.json");
    let out_path = dir.join("out.json");
    std::fs::write(&cfg_path, quick_config("dgs", "threads")).unwrap();

    let out = cli()
        .arg("run")
        .arg(&cfg_path)
        .arg("--out")
        .arg(&out_path)
        .output()
        .expect("run dgs-cli run");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("final top-1"), "{text}");

    let result: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
    assert!(result["final_acc"].as_f64().unwrap() > 0.3);
    assert!(result["curve"].as_array().unwrap().len() >= 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_supports_des_engine() {
    let dir = std::env::temp_dir().join("dgs_cli_des_test");
    std::fs::create_dir_all(&dir).unwrap();
    let cfg_path = dir.join("cfg.json");
    std::fs::write(&cfg_path, quick_config("asgd", "des")).unwrap();
    let out = cli().arg("run").arg(&cfg_path).output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("virtual time"), "DES runs report virtual time:\n{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rejects_bad_config() {
    let dir = std::env::temp_dir().join("dgs_cli_bad_test");
    std::fs::create_dir_all(&dir).unwrap();
    let cfg_path = dir.join("cfg.json");
    std::fs::write(&cfg_path, "{ not json").unwrap();
    let out = cli().arg("run").arg(&cfg_path).output().expect("run");
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rejects_unknown_subcommand() {
    let out = cli().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
}
