//! Integration test for the paper's Eq. (5): model-difference tracking
//! without sparsification is *exactly* vanilla ASGD.
//!
//! Drives the real server and real training workers (real models, real
//! gradients) in a deterministic round-robin and checks that the MDT path
//! (sparse diff downlink, Top-k ratio 1.0 so nothing is dropped) produces
//! the same trajectory as the dense-model ASGD path.

use dgs::core::config::{LrSchedule, TrainConfig};
use dgs::core::method::Method;
use dgs::core::protocol::DownMsg;
use dgs::core::server::{DiffStrategy, Downlink, MdtServer};
use dgs::core::worker::TrainWorker;
use dgs::nn::data::{Dataset, GaussianBlobs};
use dgs::nn::models::mlp;
use dgs::sparsify::SelectStrategy;
use std::sync::Arc;

fn make_cfg(method: Method) -> TrainConfig {
    let mut cfg = TrainConfig::paper_default(method, 2, 4);
    cfg.batch_per_worker = 8;
    cfg.lr = LrSchedule::constant(0.05);
    cfg.sparsity_ratio = 1.0; // keep everything: pure MDT, no dropping
    cfg.seed = 99;
    cfg
}

fn run_round_robin(method: Method, downlink: Downlink, steps: usize) -> Vec<f32> {
    let blobs = GaussianBlobs::new(128, 8, 4, 0.3, 1);
    let train: Arc<dyn Dataset> = Arc::new(blobs);
    let cfg = make_cfg(method);
    let build = || mlp(8, &[16], 4, 7);
    let net0 = build();
    let theta0 = net0.params().data().to_vec();
    let partition = net0.params().partition().clone();
    let mut server = MdtServer::new(theta0, partition, 2, downlink);
    let mut workers: Vec<TrainWorker> = (0..2)
        .map(|k| TrainWorker::new(k, build(), Arc::clone(&train), cfg.clone(), 10.0))
        .collect();
    for t in 0..steps {
        let k = t % 2;
        let up = workers[k].local_step();
        let reply = server.handle_update(k, &up);
        workers[k].apply_reply(reply);
    }
    server.current_model()
}

#[test]
fn mdt_without_sparsification_equals_asgd() {
    // GD-async at ratio 1.0 sends the entire η∇ every step (its residual
    // is always fully flushed), so the only difference from ASGD is the
    // downlink representation: model difference vs whole model. Eq. (5)
    // says the trajectories coincide.
    let steps = 40;
    let asgd = run_round_robin(Method::Asgd, Downlink::DenseModel, steps);
    let mdt = run_round_robin(
        Method::GdAsync,
        Downlink::ModelDifference { secondary_ratio: None },
        steps,
    );
    assert_eq!(asgd.len(), mdt.len());
    let mut max_diff = 0.0f32;
    for (a, b) in asgd.iter().zip(mdt.iter()) {
        max_diff = max_diff.max((a - b).abs());
    }
    assert!(max_diff < 1e-4, "Eq. 5 violated: max parameter difference {max_diff}");
}

#[test]
fn worker_and_server_agree_after_every_receive() {
    // Through a real training sequence, θ0 + v_k must reproduce the
    // worker's local model (the tracking property the downlink relies on).
    let blobs = GaussianBlobs::new(128, 8, 4, 0.3, 2);
    let train: Arc<dyn Dataset> = Arc::new(blobs);
    let mut cfg = make_cfg(Method::Dgs);
    cfg.sparsity_ratio = 0.1; // genuinely sparse this time
    let build = || mlp(8, &[16], 4, 3);
    let net0 = build();
    let theta0 = net0.params().data().to_vec();
    let partition = net0.params().partition().clone();
    let mut server = MdtServer::new(
        theta0.clone(),
        partition,
        2,
        Downlink::ModelDifference { secondary_ratio: None },
    );
    let mut workers: Vec<TrainWorker> = (0..2)
        .map(|k| TrainWorker::new(k, build(), Arc::clone(&train), cfg.clone(), 10.0))
        .collect();
    for t in 0..30 {
        let k = t % 2;
        let up = workers[k].local_step();
        let reply = server.handle_update(k, &up);
        workers[k].apply_reply(reply);
        // After a receive with no secondary compression the worker holds
        // the server's current model (Eq. 5) …
        let server_model = server.current_model();
        for (i, (&w, &s)) in workers[k].model_params().iter().zip(server_model.iter()).enumerate() {
            assert!((w - s).abs() < 1e-4, "step {t}: worker {k} coord {i} drifted: {w} vs {s}");
        }
        // … and θ0 + v_k tracks it exactly.
        for (i, (&w, (&t0, &v))) in
            workers[k].model_params().iter().zip(theta0.iter().zip(server.v(k).iter())).enumerate()
        {
            assert!((w - (t0 + v)).abs() < 1e-4, "v tracking broken at step {t} coord {i}");
        }
    }
}

/// Drives one set of real training workers against two servers — the
/// O(nnz) log-merge hot path and the O(dim) dense-scan reference — and
/// asserts every downlink payload is bitwise identical (compared through
/// the wire encoding) and the final server states match exactly.
fn run_strategies_against_real_training(
    secondary: Option<f64>,
    log_capacity: Option<usize>,
    n_workers: usize,
    steps: usize,
    schedule: impl Fn(usize) -> usize,
) {
    let blobs = GaussianBlobs::new(128, 8, 4, 0.3, 6);
    let train: Arc<dyn Dataset> = Arc::new(blobs);
    let mut cfg = make_cfg(Method::Dgs);
    cfg.workers = n_workers;
    cfg.sparsity_ratio = 0.1;
    let build = || mlp(8, &[16], 4, 11);
    let net0 = build();
    let theta0 = net0.params().data().to_vec();
    let partition = net0.params().partition().clone();
    let downlink = Downlink::ModelDifference { secondary_ratio: secondary };
    let mut log_srv = MdtServer::new(theta0.clone(), partition.clone(), n_workers, downlink);
    let mut dense_srv = MdtServer::new(theta0, partition, n_workers, downlink);
    assert_eq!(log_srv.diff_strategy(), DiffStrategy::LogMerge);
    dense_srv.set_diff_strategy(DiffStrategy::DenseScan);
    if let Some(cap) = log_capacity {
        log_srv.set_log_capacity(cap);
    }
    let mut workers: Vec<TrainWorker> = (0..n_workers)
        .map(|k| TrainWorker::new(k, build(), Arc::clone(&train), cfg.clone(), 10.0))
        .collect();
    for t in 0..steps {
        let k = schedule(t);
        let up = workers[k].local_step();
        let reply_log = log_srv.handle_update(k, &up);
        let reply_dense = dense_srv.handle_update(k, &up);
        match (&reply_log, &reply_dense) {
            (DownMsg::SparseDiff(a), DownMsg::SparseDiff(b)) => {
                assert_eq!(
                    a.encode(),
                    b.encode(),
                    "downlink payload diverged at step {t} (worker {k})"
                );
            }
            _ => panic!("expected sparse diff replies"),
        }
        workers[k].apply_reply(reply_log);
    }
    assert_eq!(log_srv.m(), dense_srv.m(), "M diverged");
    for w in 0..n_workers {
        assert_eq!(log_srv.v(w), dense_srv.v(w), "v_{w} diverged");
    }
}

#[test]
fn log_merge_downlink_bitwise_equals_dense_scan() {
    run_strategies_against_real_training(Some(0.05), None, 2, 60, |t| t % 2);
}

#[test]
fn log_truncation_fallback_stays_bitwise_equal() {
    // Capacity 64 logged coordinates holds only ~3 updates of this model
    // (mlp(8,[16],4) at ratio 0.1 touches ~20 coords/update), so worker 2 —
    // pulling only every 11th step — keeps falling off the truncated log
    // and takes the dense-scan fallback, which must still be bitwise equal.
    run_strategies_against_real_training(Some(0.1), Some(64), 3, 66, |t| {
        if t % 11 == 10 {
            2
        } else {
            t % 2
        }
    });
}

#[test]
fn oversized_updates_force_fallback_and_stay_bitwise_equal() {
    // Capacity 8 is smaller than a single update's support: every record
    // flushes the whole log, so *every* pull takes the fallback path while
    // pending-set tracking still has to stay exact.
    run_strategies_against_real_training(None, Some(8), 2, 40, |t| t % 2);
}

/// Runs a full pinned-schedule training — real models, real gradients,
/// secondary compression on — with the given Top-k selection engine wired
/// into *both* ways (worker uplink compressors and server secondary
/// compression), and returns every final model plus the server state.
fn run_with_select(select: SelectStrategy) -> (Vec<f32>, Vec<Vec<f32>>) {
    let blobs = GaussianBlobs::new(128, 8, 4, 0.3, 9);
    let train: Arc<dyn Dataset> = Arc::new(blobs);
    let mut cfg = make_cfg(Method::Dgs);
    cfg.workers = 3;
    cfg.sparsity_ratio = 0.1;
    let build = || mlp(8, &[16], 4, 13);
    let net0 = build();
    let theta0 = net0.params().data().to_vec();
    let partition = net0.params().partition().clone();
    let mut server = MdtServer::new(
        theta0,
        partition,
        3,
        Downlink::ModelDifference { secondary_ratio: Some(0.1) },
    );
    server.set_select_strategy(select);
    let mut workers: Vec<TrainWorker> = (0..3)
        .map(|k| {
            let mut w = TrainWorker::new(k, build(), Arc::clone(&train), cfg.clone(), 10.0);
            w.set_select_strategy(select);
            w
        })
        .collect();
    for t in 0..60 {
        let k = (t * 2) % 3;
        let up = workers[k].local_step();
        let reply = server.handle_update(k, &up);
        workers[k].apply_reply(reply);
    }
    (server.current_model(), workers.iter().map(|w| w.model_params().to_vec()).collect())
}

fn run_with_kernel(kernel: dgs::sparsify::Kernel) -> (Vec<f32>, Vec<Vec<f32>>, Vec<Vec<u8>>) {
    use dgs::sparsify::SparseUpdate;
    let blobs = GaussianBlobs::new(128, 8, 4, 0.3, 9);
    let train: Arc<dyn Dataset> = Arc::new(blobs);
    let mut cfg = make_cfg(Method::Dgs);
    cfg.workers = 3;
    cfg.sparsity_ratio = 0.1;
    let build = || mlp(8, &[16], 4, 13);
    let net0 = build();
    let theta0 = net0.params().data().to_vec();
    let partition = net0.params().partition().clone();
    let mut server = MdtServer::new(
        theta0,
        partition,
        3,
        Downlink::ModelDifference { secondary_ratio: Some(0.1) },
    );
    server.set_kernel(kernel);
    let mut workers: Vec<TrainWorker> = (0..3)
        .map(|k| {
            let mut w = TrainWorker::new(k, build(), Arc::clone(&train), cfg.clone(), 10.0);
            w.set_kernel(kernel);
            w
        })
        .collect();
    let mut downlinks = Vec::new();
    for t in 0..60 {
        let k = (t * 2) % 3;
        let up = workers[k].local_step();
        let reply = server.handle_update(k, &up);
        if let DownMsg::SparseDiff(d) = &reply {
            downlinks.push(SparseUpdate::encode_with(d, kernel).to_vec());
        }
        workers[k].apply_reply(reply);
    }
    (
        server.current_model(),
        workers.iter().map(|w| w.model_params().to_vec()).collect(),
        downlinks,
    )
}

#[test]
fn kernel_backend_swap_leaves_downlinks_bitwise_unchanged() {
    // End-to-end across the Kernel seam: real models, real gradients, real
    // server, secondary compression on. Every downlink payload and every
    // final model must be byte-identical whether the hot kernels run on
    // the scalar or the SIMD backend (on machines without AVX2 both run
    // scalar and the test degenerates to a tautology).
    use dgs::sparsify::Kernel;
    let (srv_s, wk_s, down_s) = run_with_kernel(Kernel::Scalar);
    let (srv_v, wk_v, down_v) = run_with_kernel(Kernel::Simd);
    assert_eq!(down_s.len(), down_v.len(), "downlink count changed under backend swap");
    for (t, (a, b)) in down_s.iter().zip(down_v.iter()).enumerate() {
        assert_eq!(a, b, "downlink {t} wire bytes changed under backend swap");
    }
    assert_eq!(srv_s, srv_v, "server model changed under backend swap");
    for (k, (a, b)) in wk_s.iter().zip(wk_v.iter()).enumerate() {
        assert_eq!(a, b, "worker {k} model changed under backend swap");
    }
}

#[test]
fn select_strategy_swap_leaves_training_bitwise_unchanged() {
    // The radix engine replaces the comparator on every selection site
    // (worker Top-k, SAMomentum, server secondary compression). Because it
    // is bitwise-identical, an end-to-end run must produce *exactly* the
    // same models — not merely close ones.
    let (srv_cmp, wk_cmp) = run_with_select(SelectStrategy::Comparator);
    let (srv_rad, wk_rad) = run_with_select(SelectStrategy::Radix);
    assert_eq!(srv_cmp, srv_rad, "server model changed under strategy swap");
    for (k, (a, b)) in wk_cmp.iter().zip(wk_rad.iter()).enumerate() {
        assert_eq!(a, b, "worker {k} model changed under strategy swap");
    }
}

#[test]
fn secondary_compression_converges_to_server_model_when_quiet() {
    // With secondary compression the worker lags the server, but once the
    // other workers go quiet the repeated Top-k diffs must deliver
    // everything (implicit server-side residual accumulation).
    let blobs = GaussianBlobs::new(128, 8, 4, 0.3, 4);
    let train: Arc<dyn Dataset> = Arc::new(blobs);
    let mut cfg = make_cfg(Method::Dgs);
    cfg.sparsity_ratio = 0.05;
    let build = || mlp(8, &[16], 4, 5);
    let net0 = build();
    let theta0 = net0.params().data().to_vec();
    let partition = net0.params().partition().clone();
    let mut server = MdtServer::new(
        theta0,
        partition.clone(),
        2,
        Downlink::ModelDifference { secondary_ratio: Some(0.05) },
    );
    let mut workers: Vec<TrainWorker> = (0..2)
        .map(|k| TrainWorker::new(k, build(), Arc::clone(&train), cfg.clone(), 10.0))
        .collect();
    // Worker 1 trains for a while; worker 0 only occasionally syncs.
    for _ in 0..40 {
        let up = workers[1].local_step();
        let reply = server.handle_update(1, &up);
        workers[1].apply_reply(reply);
    }
    // Now worker 0 pings with zero-ish updates until it catches up. Top-k
    // per layer delivers a bounded number of coordinates per round, so
    // bound the rounds generously.
    let dim = partition.total_len();
    for _ in 0..400 {
        let up = workers[0].local_step();
        let reply = server.handle_update(0, &up);
        workers[0].apply_reply(reply);
    }
    let server_model = server.current_model();
    let mut lag = 0.0f32;
    for (&w, &s) in workers[0].model_params().iter().zip(server_model.iter()) {
        lag = lag.max((w - s).abs());
    }
    // Worker 0 keeps training too, so exact equality never holds — but the
    // lag must be small relative to the parameter scale, not divergent.
    let scale = server_model.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    assert!(
        lag < 0.2 * scale.max(1.0),
        "worker 0 failed to catch up: lag {lag}, scale {scale}, dim {dim}"
    );
}
