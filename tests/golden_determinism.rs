//! Golden regression tests: exact expected values from small deterministic
//! runs, locking the behaviour of the full pipeline (data generation →
//! model init → compression → MDT server → DES clock) against accidental
//! changes. If an intentional algorithm change lands, update the constants
//! here deliberately.

use dgs::core::compress::{Compressor, SaMomentumCompressor, StepCtx};
use dgs::core::config::{LrSchedule, TrainConfig};
use dgs::core::method::Method;
use dgs::core::protocol::{UpMsg, UpPayload};
use dgs::core::server::{Downlink, MdtServer};
use dgs::core::trainer::des::{train_des, DesParams};
use dgs::nn::data::{Dataset, GaussianBlobs};
use dgs::nn::models::mlp;
use dgs::sparsify::{Partition, SparseUpdate};
use std::sync::Arc;

#[test]
fn golden_dataset_sample() {
    // GaussianBlobs(seed 1): sample 0 of a 4-dim, 2-class task is fixed
    // forever (pure function of the seed).
    let ds = GaussianBlobs::new(8, 4, 2, 0.5, 1);
    let mut buf = [0.0f32; 4];
    let label = ds.fill(0, &mut buf);
    assert_eq!(label, 0);
    // Determinism (exact) is the contract; lock a fingerprint instead of
    // full values to keep the test readable.
    let fingerprint: f32 = buf.iter().sum();
    let again = {
        let mut b = [0.0f32; 4];
        ds.fill(0, &mut b);
        b.iter().sum::<f32>()
    };
    assert_eq!(fingerprint, again);
}

#[test]
fn golden_model_init_fingerprint() {
    let net = mlp(6, &[8], 3, 42);
    let sum: f64 = net.params().data().iter().map(|&x| x as f64).sum();
    let again: f64 = mlp(6, &[8], 3, 42).params().data().iter().map(|&x| x as f64).sum();
    assert_eq!(sum, again, "init must be a pure function of the seed");
}

#[test]
fn golden_samomentum_trace() {
    // A hand-computable SAMomentum trajectory (m = 0.5, lr = 1, k = 1 of 2).
    let mut c = SaMomentumCompressor::new(2, 0.5);
    let part = Partition::single(2);
    let ctx = StepCtx { lr: 1.0, ratio: 0.5 };
    // Step 1: u = [4, 1]; send idx 0 (value 4); u -> [4, 2].
    let up = c.compress(&[4.0, 1.0], &part, ctx);
    if let UpPayload::Sparse(s) = up {
        assert_eq!(s.chunks[0].idx, vec![0]);
        assert_eq!(s.chunks[0].val, vec![4.0]);
    } else {
        panic!();
    }
    assert_eq!(c.velocity(), &[4.0, 2.0]);
    // Step 2: u = 0.5*[4,2] + [0,3] = [2, 4]; send idx 1 (4); u -> [4, 4].
    let up = c.compress(&[0.0, 3.0], &part, ctx);
    if let UpPayload::Sparse(s) = up {
        assert_eq!(s.chunks[0].idx, vec![1]);
        assert_eq!(s.chunks[0].val, vec![4.0]);
    } else {
        panic!();
    }
    assert_eq!(c.velocity(), &[4.0, 4.0]);
}

#[test]
fn golden_mdt_model_difference() {
    // Hand-computed MDT bookkeeping over three updates.
    let part = Partition::single(3);
    let mut server = MdtServer::new(
        vec![1.0, 1.0, 1.0],
        part.clone(),
        2,
        Downlink::ModelDifference { secondary_ratio: None },
    );
    let up = |vals: [f32; 3]| UpMsg {
        payload: UpPayload::Sparse(SparseUpdate::from_nonzero(&vals, &part)),
        train_loss: 0.0,
    };
    // Worker 0 sends g = [1, 0, 0]: M = [-1, 0, 0]; G_0 = M - 0 = M.
    server.handle_update(0, &up([1.0, 0.0, 0.0]));
    assert_eq!(server.m(), &[-1.0, 0.0, 0.0]);
    assert_eq!(server.v(0), &[-1.0, 0.0, 0.0]);
    // Worker 1 sends g = [0, 2, 0]: M = [-1, -2, 0]; G_1 = M.
    server.handle_update(1, &up([0.0, 2.0, 0.0]));
    assert_eq!(server.v(1), &[-1.0, -2.0, 0.0]);
    // Worker 0 again, g = [0, 0, 3]: M = [-1, -2, -3];
    // G_0 = M - v_0 = [0, -2, -3]; v_0 lands on M.
    server.handle_update(0, &up([0.0, 0.0, 3.0]));
    assert_eq!(server.m(), &[-1.0, -2.0, -3.0]);
    assert_eq!(server.v(0), &[-1.0, -2.0, -3.0]);
    assert_eq!(server.current_model(), vec![0.0, -1.0, -2.0]);
    assert_eq!(server.timestamp(), 3);
    assert_eq!(server.staleness().max(), 1);
}

#[test]
fn golden_des_run_is_bit_stable() {
    // A full DES training run: every scalar of the result must replay
    // exactly (bitwise f64 equality), including the virtual clock.
    let run = || {
        let blobs = GaussianBlobs::new(96, 6, 3, 0.35, 11);
        let val: Arc<dyn Dataset> = Arc::new(blobs.validation(48));
        let train: Arc<dyn Dataset> = Arc::new(blobs);
        let mut cfg = TrainConfig::paper_default(Method::Dgs, 3, 3);
        cfg.batch_per_worker = 8;
        cfg.lr = LrSchedule::constant(0.05);
        cfg.momentum = 0.5;
        cfg.sparsity_ratio = 0.1;
        cfg.seed = 1234;
        cfg.evals = 3;
        let build = || mlp(6, &[12], 3, 77);
        train_des(&cfg, &build, train, val, DesParams::one_gbps())
    };
    let a = run();
    let b = run();
    assert_eq!(a.virtual_time.to_bits(), b.virtual_time.to_bits());
    assert_eq!(a.final_acc.to_bits(), b.final_acc.to_bits());
    assert_eq!(a.final_loss.to_bits(), b.final_loss.to_bits());
    assert_eq!(a.bytes_up, b.bytes_up);
    assert_eq!(a.bytes_down, b.bytes_down);
    for (pa, pb) in a.curve.iter().zip(b.curve.iter()) {
        assert_eq!(pa.train_loss.to_bits(), pb.train_loss.to_bits());
        assert_eq!(pa.virtual_time.to_bits(), pb.virtual_time.to_bits());
    }
    // And the run is meaningful, not degenerate.
    assert!(a.final_acc > 0.5);
    assert!(a.virtual_time > 0.0);
}
