//! Differential replay: the lock-striped [`ShardedMdtServer`] must be a
//! bitwise drop-in for the global-lock [`MdtServer`].
//!
//! One set of real training workers (real models, real gradients, pinned
//! round-robin schedules) drives both servers with identical uplinks;
//! every downlink payload is compared through its wire encoding, byte
//! counters are accumulated on both sides, a resync is fired mid-run, and
//! the final server state (model, timestamp, staleness histogram) must
//! match exactly. Covered across every method family the server hosts:
//! GD-async, DGC-async, DGS with and without secondary compression,
//! ternary-quantized uplinks, dense ASGD, and staleness damping — at
//! multiple stripe counts.

use dgs::core::config::{LrSchedule, TrainConfig};
use dgs::core::method::Method;
use dgs::core::protocol::DownMsg;
use dgs::core::server::{Downlink, MdtServer, StalenessDamping};
use dgs::core::shard::ShardedMdtServer;
use dgs::core::worker::TrainWorker;
use dgs::nn::data::{Dataset, GaussianBlobs};
use dgs::nn::models::mlp;
use std::sync::Arc;

/// The exact bytes a downlink would put on the wire — the comparison
/// medium, so "equal" means equal after every encode decision (diff
/// strategy, density hysteresis, secondary Top-k), not merely numerically
/// close.
fn down_bits(msg: &DownMsg) -> Vec<u8> {
    match msg {
        DownMsg::SparseDiff(s) => s.encode().as_ref().to_vec(),
        DownMsg::DenseModel(v) => v.iter().flat_map(|x| x.to_bits().to_le_bytes()).collect(),
    }
}

fn model_bits(model: &[f32]) -> Vec<u32> {
    model.iter().map(|x| x.to_bits()).collect()
}

struct Replay {
    method: Method,
    downlink: Downlink,
    quantize_uplink: bool,
    damping: Option<f64>,
    shards: usize,
    workers: usize,
    steps: usize,
}

impl Replay {
    fn run(self, schedule: impl Fn(usize) -> usize) {
        let blobs = GaussianBlobs::new(128, 8, 4, 0.3, 6);
        let train: Arc<dyn Dataset> = Arc::new(blobs);
        let mut cfg = TrainConfig::paper_default(self.method, self.workers, 4);
        cfg.batch_per_worker = 8;
        cfg.lr = LrSchedule::constant(0.05);
        cfg.sparsity_ratio = 0.1;
        cfg.seed = 99;
        cfg.quantize_uplink = self.quantize_uplink;
        let build = || mlp(8, &[16], 4, 11);
        let net0 = build();
        let theta0 = net0.params().data().to_vec();
        let partition = net0.params().partition().clone();
        let mut global =
            MdtServer::new(theta0.clone(), partition.clone(), self.workers, self.downlink);
        let mut sharded =
            ShardedMdtServer::new(theta0, partition, self.workers, self.downlink, self.shards);
        assert!(
            sharded.num_shards() > 1,
            "replay must exercise a genuinely striped server, got {} shard(s)",
            sharded.num_shards()
        );
        if let Some(alpha) = self.damping {
            global.set_damping(StalenessDamping { alpha });
            sharded.set_damping(StalenessDamping { alpha });
        }
        let mut workers: Vec<TrainWorker> = (0..self.workers)
            .map(|k| TrainWorker::new(k, build(), Arc::clone(&train), cfg.clone(), 10.0))
            .collect();

        let mut up_bytes = 0u64;
        let mut down_bytes_global = 0u64;
        let mut down_bytes_sharded = 0u64;
        for t in 0..self.steps {
            let k = schedule(t);
            if t == self.steps / 2 {
                // A mid-run resync resets worker k's tracking (v_k, prev)
                // on both servers; the full-model replies must already be
                // identical, and the run must stay identical afterwards.
                let rg = global.resync_worker(k);
                let rs = sharded.resync_worker(k);
                assert_eq!(down_bits(&rg), down_bits(&rs), "resync diverged at step {t}");
                assert_eq!(rg.wire_bytes(), rs.wire_bytes());
                workers[k].apply_reply(rg);
            }
            let up = workers[k].local_step();
            up_bytes += up.wire_bytes() as u64;
            let reply_global = global.handle_update(k, &up);
            let reply_sharded = sharded.handle_update(k, &up);
            assert_eq!(
                down_bits(&reply_global),
                down_bits(&reply_sharded),
                "downlink payload diverged at step {t} (worker {k})"
            );
            down_bytes_global += reply_global.wire_bytes() as u64;
            down_bytes_sharded += reply_sharded.wire_bytes() as u64;
            workers[k].apply_reply(reply_global);
        }
        assert!(up_bytes > 0, "replay sent no uplink traffic");
        assert_eq!(down_bytes_global, down_bytes_sharded, "byte accounting diverged");
        assert_eq!(global.timestamp(), sharded.timestamp(), "server clocks diverged");
        assert_eq!(
            model_bits(&global.current_model()),
            model_bits(&sharded.current_model()),
            "final server models diverged"
        );
        assert_eq!(
            format!("{:?}", global.staleness()),
            format!("{:?}", sharded.staleness()),
            "staleness histograms diverged"
        );
    }
}

fn replay(method: Method, downlink: Downlink, shards: usize) -> Replay {
    Replay {
        method,
        downlink,
        quantize_uplink: false,
        damping: None,
        shards,
        workers: 3,
        steps: 60,
    }
}

#[test]
fn gd_async_replay_is_bitwise_identical() {
    for shards in [2, 3] {
        replay(Method::GdAsync, Downlink::ModelDifference { secondary_ratio: None }, shards)
            .run(|t| (t * 2) % 3);
    }
}

#[test]
fn dgc_async_replay_is_bitwise_identical() {
    replay(Method::DgcAsync, Downlink::ModelDifference { secondary_ratio: None }, 2)
        .run(|t| (t * 2) % 3);
}

#[test]
fn dgs_with_secondary_compression_is_bitwise_identical() {
    // Secondary compression makes the downlink depend on per-worker dirty
    // sets and the update log — the state the sharding split most deeply.
    for shards in [2, 3] {
        replay(Method::Dgs, Downlink::ModelDifference { secondary_ratio: Some(0.1) }, shards)
            .run(|t| (t * 2) % 3);
    }
}

#[test]
fn ternary_uplink_replay_is_bitwise_identical() {
    let mut r = replay(Method::Dgs, Downlink::ModelDifference { secondary_ratio: None }, 2);
    r.quantize_uplink = true;
    r.run(|t| (t * 2) % 3);
}

#[test]
fn dense_asgd_replay_is_bitwise_identical() {
    // Dense uplink split by coordinate range, dense downlink reassembled
    // by shard-order concatenation.
    replay(Method::Asgd, Downlink::DenseModel, 2).run(|t| (t * 2) % 3);
}

#[test]
fn staleness_damping_matches_under_striping() {
    // Damping scales every shard's apply by 1/(1+s)^alpha; the scale is
    // computed once at the front lock from the *global* clock, so an
    // uneven schedule (worker 2 pulls rarely, accumulating staleness)
    // must still replay bitwise. This is the case that would expose a
    // shard-local staleness clock.
    let mut r = replay(Method::Dgs, Downlink::ModelDifference { secondary_ratio: Some(0.1) }, 3);
    r.damping = Some(0.7);
    r.steps = 66;
    r.run(|t| if t % 11 == 10 { 2 } else { t % 2 });
}
