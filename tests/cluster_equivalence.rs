//! Differential test: the K-process span-server cluster (and the
//! two-level edge tier on top of it) is a bitwise drop-in for the
//! single-process sharded server.
//!
//! Every scenario replays the *same* pinned schedule on three
//! topologies —
//!
//! 1. one process hosting the lock-striped `ShardedMdtServer` over TCP
//!    (`train_tcp_sharded`, the oracle since PR 5/6),
//! 2. a K-process cluster: one span server per shard span, workers
//!    fanning out per span over `ClusterTransport` (`train_cluster`),
//! 3. the same cluster behind per-worker edge aggregators with G = 1
//!    (`train_cluster_edge`), where members speak the plain single-server
//!    protocol and payloads are forwarded verbatim —
//!
//! and asserts bitwise identity of the server model, every worker model,
//! the training curves (val-acc, train-loss, and the byte accounting
//! embedded in each point), and the staleness telemetry. Wire counters
//! are compared where the encoding makes them comparable: the assembled
//! uplink/downlink accounting matches the single-process run exactly,
//! edge members' data bytes match the single-process workers' exactly
//! (same frames, byte for byte), and the cluster's per-tier `LinkStats`
//! must balance — each worker's per-span uplink equals that span
//! server's per-worker ingress. A kill-one-span-server fault case checks
//! per-span recovery: the restarted span resumes from its checkpoint and
//! the run stays bitwise identical to the clean one (every update applied
//! exactly once — the MDT invariant makes a double apply visible in the
//! final model).

use dgs::core::config::{LrSchedule, TrainConfig};
use dgs::core::method::Method;
use dgs::core::trainer::schedule_for;
use dgs::net::runtime::{
    train_cluster, train_cluster_edge, train_tcp_sharded, Fault, IoConfig, TransportRun,
};
use dgs::net::transport::Tier;
use dgs::nn::data::{Dataset, GaussianBlobs};
use dgs::nn::models::mlp;
use std::sync::Arc;

/// Span count for every cluster in this suite (the 6-/12-/3-unit MLP
/// partition splits into exactly 3 whole-segment spans).
const SPANS: usize = 3;

fn datasets() -> (Arc<dyn Dataset>, Arc<dyn Dataset>) {
    let blobs = GaussianBlobs::new(96, 6, 3, 0.4, 5);
    let val = Arc::new(blobs.validation(48));
    (Arc::new(blobs), val)
}

fn quick_cfg(method: Method) -> TrainConfig {
    let mut cfg = TrainConfig::paper_default(method, 3, 2);
    cfg.batch_per_worker = 8;
    cfg.lr = LrSchedule::paper_default(0.05, 2);
    cfg.momentum = 0.4;
    cfg.sparsity_ratio = 0.25;
    cfg.clip_norm = 0.0;
    cfg.seed = 11;
    cfg.evals = 2;
    cfg
}

/// The cross-topology identity: models, curves, accounting, staleness.
/// Raw wire counters are *not* compared here — a cluster worker sends K
/// framed sub-updates where the single server sees one frame, so only
/// the assembled accounting (what the curves carry) is comparable.
fn assert_same_training(a: &TransportRun, b: &TransportRun, what: &str) {
    assert_eq!(a.server_model, b.server_model, "{what}: server model diverged");
    assert_eq!(a.worker_models, b.worker_models, "{what}: a worker model diverged");
    assert_eq!(a.result.bytes_up, b.result.bytes_up, "{what}: uplink accounting diverged");
    assert_eq!(a.result.bytes_down, b.result.bytes_down, "{what}: downlink accounting diverged");
    assert_eq!(
        a.result.mean_staleness, b.result.mean_staleness,
        "{what}: staleness telemetry diverged"
    );
    assert_eq!(a.result.max_staleness, b.result.max_staleness, "{what}: max staleness diverged");
    assert_eq!(a.result.curve.len(), b.result.curve.len(), "{what}: curve lengths diverged");
    for (x, y) in a.result.curve.iter().zip(&b.result.curve) {
        assert_eq!(x.updates, y.updates, "{what}: eval cadence diverged");
        assert_eq!(x.val_acc, y.val_acc, "{what}: curves diverged");
        assert_eq!(x.val_loss, y.val_loss, "{what}: curves diverged");
        assert_eq!(x.train_loss, y.train_loss, "{what}: curves diverged");
        assert_eq!(x.bytes_up, y.bytes_up, "{what}: per-point uplink accounting diverged");
        assert_eq!(x.bytes_down, y.bytes_down, "{what}: per-point downlink accounting diverged");
    }
}

/// Per-tier byte bookkeeping inside one cluster run must balance: every
/// worker carries one `Root` link per span, the server side aggregates
/// the same spans, and link sums equal the endpoint totals.
fn assert_cluster_links_balance(run: &TransportRun, what: &str) {
    for (w, stats) in run.worker_stats.iter().enumerate() {
        assert_eq!(stats.links.len(), SPANS, "{what}: worker {w} span link count");
        let up: u64 = stats.links.iter().map(|l| l.uplink_bytes).sum();
        let down: u64 = stats.links.iter().map(|l| l.downlink_bytes).sum();
        assert_eq!(up, stats.data_up, "{what}: worker {w} link uplinks don't sum to data_up");
        assert_eq!(down, stats.data_down, "{what}: worker {w} link downlinks");
    }
    for k in 0..SPANS as u16 {
        let server_link = run
            .server_stats
            .link(Tier::Root, k)
            .unwrap_or_else(|| panic!("{what}: server missing span {k} link"));
        let worker_up: u64 = run
            .worker_stats
            .iter()
            .map(|s| s.link(Tier::Root, k).map(|l| l.uplink_bytes).unwrap_or(0))
            .sum();
        let worker_down: u64 = run
            .worker_stats
            .iter()
            .map(|s| s.link(Tier::Root, k).map(|l| l.downlink_bytes).unwrap_or(0))
            .sum();
        assert_eq!(server_link.uplink_bytes, worker_up, "{what}: span {k} ingress imbalance");
        assert_eq!(server_link.downlink_bytes, worker_down, "{what}: span {k} egress imbalance");
    }
}

/// Clean-run triple: sharded single process vs cluster vs cluster+edge.
fn assert_topologies_agree(cfg: &TrainConfig) {
    let (train, val) = datasets();
    let builder = || mlp(6, &[12], 3, cfg.seed);
    let schedule = schedule_for(cfg, train.len(), Some(0xD6A1));

    let sharded = train_tcp_sharded(
        cfg,
        &builder,
        Arc::clone(&train),
        Arc::clone(&val),
        &schedule,
        SPANS,
        &IoConfig::default(),
        &[],
    )
    .expect("single-process sharded run");
    let cluster = train_cluster(
        cfg,
        &builder,
        Arc::clone(&train),
        Arc::clone(&val),
        &schedule,
        SPANS,
        &IoConfig::default(),
        &[],
    )
    .expect("cluster run");
    let what = format!("{:?}", cfg.method);
    assert_same_training(&sharded, &cluster, &what);
    assert_cluster_links_balance(&cluster, &what);

    let edged = train_cluster_edge(
        cfg,
        &builder,
        Arc::clone(&train),
        Arc::clone(&val),
        &schedule,
        SPANS,
        &IoConfig::default(),
    )
    .expect("cluster+edge run");
    assert_same_training(&cluster, &edged, &format!("{what} edge"));

    // G = 1 forwards verbatim: a member's data frames are bitwise the
    // frames the single-process worker sent, so the data counters match
    // exactly per worker.
    for (w, (member, single)) in edged.worker_stats.iter().zip(&sharded.worker_stats).enumerate() {
        assert_eq!(member.data_up, single.data_up, "{what}: member {w} uplink data bytes");
        assert_eq!(member.data_down, single.data_down, "{what}: member {w} downlink data bytes");
    }
    // Each edge records its member link and its upstream per-span links;
    // the member-side bytes must mirror the member's own counters.
    assert_eq!(edged.edge_stats.len(), cfg.workers);
    for (w, (edge, member)) in edged.edge_stats.iter().zip(&edged.worker_stats).enumerate() {
        let link = edge
            .link(Tier::Edge, w as u16)
            .unwrap_or_else(|| panic!("{what}: edge {w} missing member link"));
        assert_eq!(link.uplink_bytes, member.data_up, "{what}: edge {w} member ingress");
        assert_eq!(link.downlink_bytes, member.data_down, "{what}: edge {w} member egress");
        for k in 0..SPANS as u16 {
            assert!(edge.link(Tier::Root, k).is_some(), "{what}: edge {w} missing span {k} link");
        }
    }
    // Root ingress is the same whether workers or edges feed the spans.
    for k in 0..SPANS as u16 {
        let direct = cluster.server_stats.link(Tier::Root, k).expect("cluster span link");
        let via_edge = edged.server_stats.link(Tier::Root, k).expect("edge-run span link");
        assert_eq!(direct.uplink_bytes, via_edge.uplink_bytes, "{what}: span {k} root ingress");
        assert_eq!(
            direct.downlink_bytes, via_edge.downlink_bytes,
            "{what}: span {k} root egress"
        );
    }
}

#[test]
fn asgd_cluster_replays_sharded_bitwise() {
    assert_topologies_agree(&quick_cfg(Method::Asgd));
}

#[test]
fn dgc_cluster_replays_sharded_bitwise() {
    assert_topologies_agree(&quick_cfg(Method::DgcAsync));
}

#[test]
fn dgs_cluster_replays_sharded_bitwise() {
    assert_topologies_agree(&quick_cfg(Method::Dgs));
}

#[test]
fn dgs_with_secondary_compression_cluster_replays_sharded_bitwise() {
    let mut cfg = quick_cfg(Method::Dgs);
    cfg.secondary_compression = true;
    assert_topologies_agree(&cfg);
}

#[test]
fn dgs_with_ternary_uplink_cluster_replays_sharded_bitwise() {
    let mut cfg = quick_cfg(Method::Dgs);
    cfg.quantize_uplink = true;
    assert_topologies_agree(&cfg);
}

/// The cluster behind the evented backend is bitwise the threaded
/// cluster — including the raw per-span wire counters, which ARE
/// comparable when the topology is held fixed.
#[test]
fn cluster_backends_are_bitwise_identical() {
    let mut cfg = quick_cfg(Method::Dgs);
    cfg.secondary_compression = true;
    let (train, val) = datasets();
    let builder = || mlp(6, &[12], 3, cfg.seed);
    let schedule = schedule_for(&cfg, train.len(), Some(0xD6A1));

    let threaded = train_cluster(
        &cfg,
        &builder,
        Arc::clone(&train),
        Arc::clone(&val),
        &schedule,
        SPANS,
        &IoConfig::default(),
        &[],
    )
    .expect("threaded cluster run");
    let evented = train_cluster(
        &cfg,
        &builder,
        Arc::clone(&train),
        Arc::clone(&val),
        &schedule,
        SPANS,
        &IoConfig::evented(64),
        &[],
    )
    .expect("evented cluster run");
    assert_same_training(&threaded, &evented, "cluster io backends");
    assert_eq!(threaded.server_stats, evented.server_stats, "server wire counters diverged");
    assert_eq!(threaded.worker_stats, evented.worker_stats, "worker wire counters diverged");
}

/// Kill-one-span-server mid-run: the span restarts from its checkpoint,
/// every worker re-handshakes against the same partition map, and the
/// run converges to the clean run's exact bits — the MDT reply
/// `G = M − v_k` depends only on applied updates, so a double apply (or
/// a lost one) would change the final model. The extra hellos are
/// control traffic on top of the clean run's.
#[test]
fn killed_span_server_recovers_without_double_apply() {
    let cfg = quick_cfg(Method::Dgs);
    let (train, val) = datasets();
    let builder = || mlp(6, &[12], 3, cfg.seed);
    let schedule = schedule_for(&cfg, train.len(), Some(0xD6A1));
    let len = schedule.len();
    assert!(len >= 6, "schedule too short to place mid-run faults");
    let kill_only = [Fault::KillSpan { step: len / 3, span: 1 }];

    let clean = train_cluster(
        &cfg,
        &builder,
        Arc::clone(&train),
        Arc::clone(&val),
        &schedule,
        SPANS,
        &IoConfig::default(),
        &[],
    )
    .expect("clean cluster run");
    let killed = train_cluster(
        &cfg,
        &builder,
        Arc::clone(&train),
        Arc::clone(&val),
        &schedule,
        SPANS,
        &IoConfig::default(),
        &kill_only,
    )
    .expect("killed-span cluster run");

    // The kill/restart must be invisible in the training bits: same
    // models, same curves, same data accounting — the recovery costs
    // only control frames (re-handshakes).
    assert_same_training(&clean, &killed, "killed span vs clean");
    let killed_control: u64 = killed.worker_stats.iter().map(|s| s.control).sum();
    let clean_control: u64 = clean.worker_stats.iter().map(|s| s.control).sum();
    assert!(
        killed_control > clean_control,
        "kill/restart produced no extra handshakes — did the fault fire?"
    );

    // Add a single-span resync on top (the mixed per-span reply path —
    // one span answers dense while the others stay on sparse diffs).
    // Resyncing from the live model M genuinely perturbs the worker, so
    // the bar here is exact replay across I/O backends plus the byte
    // accounting of the extra dense span reply.
    let mixed = [
        Fault::KillSpan { step: len / 3, span: 1 },
        Fault::ResyncSpan { step: 2 * len / 3, worker: schedule.order()[2 * len / 3], span: 1 },
    ];
    let faulted = train_cluster(
        &cfg,
        &builder,
        Arc::clone(&train),
        Arc::clone(&val),
        &schedule,
        SPANS,
        &IoConfig::default(),
        &mixed,
    )
    .expect("faulted cluster run");
    assert!(
        faulted.result.bytes_down > clean.result.bytes_down,
        "span resync should add accounted downlink bytes"
    );
    let faulted_evented = train_cluster(
        &cfg,
        &builder,
        Arc::clone(&train),
        Arc::clone(&val),
        &schedule,
        SPANS,
        &IoConfig::evented(64),
        &mixed,
    )
    .expect("evented faulted cluster run");
    assert_same_training(&faulted, &faulted_evented, "faulted cluster io backends");
    assert_eq!(faulted.server_stats, faulted_evented.server_stats);
    assert_eq!(faulted.worker_stats, faulted_evented.worker_stats);
    assert_eq!(
        faulted.worker_models, faulted_evented.worker_models,
        "faulted worker models must replay bitwise"
    );
}
