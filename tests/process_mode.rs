//! Multi-process smoke test: one `dgs-cli serve` process plus two
//! `dgs-cli work` processes training a tiny MLP over real TCP on
//! localhost. Asserts the run completes, the final loss is finite, and
//! the server's transport frame counters equal the training logic's
//! `wire_bytes()` accounting — the codec and the traffic model describe
//! the same bytes.
//!
//! CI runs this with a hard timeout; the test also enforces its own
//! deadline so a wedged handshake can never hang the suite.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const DEADLINE: Duration = Duration::from_secs(120);

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dgs-cli"))
}

fn tiny_config() -> &'static str {
    r#"{
  "workload": { "kind": "blobs", "samples": 96, "val_samples": 48,
                "classes": 3, "dim": 6, "noise": 0.4 },
  "model": { "kind": "mlp", "hidden": [12] },
  "train": { "method": "dgs", "workers": 2, "batch_per_worker": 8,
              "epochs": 2, "lr": 0.05, "momentum": 0.4,
              "sparsity_ratio": 0.25, "seed": 7 },
  "engine": { "kind": "threads" }
}"#
}

/// Waits for a child with a deadline; kills it (and fails) on expiry.
fn wait_with_deadline(child: &mut Child, who: &str, deadline: Instant) {
    loop {
        match child.try_wait().expect("poll child") {
            Some(status) => {
                assert!(status.success(), "{who} exited with {status}");
                return;
            }
            None if Instant::now() >= deadline => {
                child.kill().ok();
                child.wait().ok();
                panic!("{who} still running at deadline");
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

#[test]
fn serve_plus_two_workers_trains_over_tcp() {
    serve_smoke("dgs_process_mode_test", &[]);
}

#[test]
fn sharded_serve_plus_two_workers_trains_over_tcp() {
    // Same run hosted by the lock-striped server: `--shards 2` swaps in
    // `ShardedMdtServer` behind the identical wire protocol, so every
    // assertion (including the frame-counter == wire_bytes() equality)
    // must hold unchanged.
    serve_smoke("dgs_process_mode_sharded_test", &["--shards", "2"]);
}

#[test]
fn evented_serve_plus_two_workers_trains_over_tcp() {
    // Same run again on the readiness event loop: `--io evented` serves
    // both worker connections from one poller thread. Protocol and bytes
    // are backend-independent, so the identical assertions must hold.
    serve_smoke("dgs_process_mode_evented_test", &["--io", "evented", "--max-conns", "64"]);
}

#[test]
fn evented_sharded_serve_plus_two_workers_trains_over_tcp() {
    // Deepest process-mode stack: lock-striped server logic behind the
    // event loop, across real processes.
    serve_smoke("dgs_process_mode_evented_sharded_test", &["--shards", "2", "--io", "evented"]);
}

fn serve_smoke(dir_name: &str, extra_serve_args: &[&str]) {
    let deadline = Instant::now() + DEADLINE;
    let dir = std::env::temp_dir().join(dir_name);
    std::fs::create_dir_all(&dir).unwrap();
    let cfg_path = dir.join("cfg.json");
    let out_path = dir.join("out.json");
    std::fs::write(&cfg_path, tiny_config()).unwrap();

    // Port 0: the OS picks a free port; serve prints the bound address on
    // its first line, which is how the workers learn where to connect.
    let mut server = cli()
        .arg("serve")
        .arg(&cfg_path)
        .args(["--listen", "127.0.0.1:0", "--deadline-secs", "90"])
        .args(extra_serve_args)
        .arg("--out")
        .arg(&out_path)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let mut server_out = BufReader::new(server.stdout.take().expect("serve stdout"));
    let mut first_line = String::new();
    server_out.read_line(&mut first_line).expect("read serve banner");
    // "serving DGS on 127.0.0.1:PORT: waiting for 2 workers x N iterations"
    let addr = first_line
        .split(" on ")
        .nth(1)
        .and_then(|rest| rest.split(": waiting").next())
        .unwrap_or_else(|| panic!("unparseable serve banner: {first_line:?}"))
        .to_string();

    let mut workers: Vec<Child> = (0..2)
        .map(|k| {
            cli()
                .arg("work")
                .arg(&cfg_path)
                .args(["--connect", &addr, "--worker", &k.to_string()])
                .stdout(Stdio::null())
                .spawn()
                .expect("spawn work")
        })
        .collect();

    // Drain the rest of serve's stdout concurrently so a full pipe buffer
    // can never deadlock the summary print.
    let drain = std::thread::spawn(move || {
        let mut rest = String::new();
        std::io::Read::read_to_string(&mut server_out, &mut rest).ok();
        rest
    });

    for (k, w) in workers.iter_mut().enumerate() {
        wait_with_deadline(w, &format!("worker {k}"), deadline);
    }
    wait_with_deadline(&mut server, "server", deadline);
    let summary = drain.join().expect("drain serve stdout");
    assert!(summary.contains("final top-1"), "serve summary missing:\n{summary}");

    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
    let result = &doc["result"];
    let wire = &doc["wire"];

    let final_loss = result["final_loss"].as_f64().unwrap();
    assert!(final_loss.is_finite(), "final loss not finite: {final_loss}");
    assert!(result["final_acc"].as_f64().unwrap() >= 0.0);

    // Frame counters vs wire_bytes() accounting: a clean run (no resyncs)
    // must agree exactly in both directions.
    assert_eq!(
        wire["data_up"].as_u64().unwrap(),
        result["bytes_up"].as_u64().unwrap(),
        "uplink frame bytes != logic accounting"
    );
    assert_eq!(
        wire["data_down"].as_u64().unwrap(),
        result["bytes_down"].as_u64().unwrap(),
        "downlink frame bytes != logic accounting"
    );
    assert!(wire["frames_up"].as_u64().unwrap() > 0);
    std::fs::remove_dir_all(&dir).ok();
}
