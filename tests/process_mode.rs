//! Multi-process smoke test: one `dgs-cli serve` process plus two
//! `dgs-cli work` processes training a tiny MLP over real TCP on
//! localhost. Asserts the run completes, the final loss is finite, and
//! the server's transport frame counters equal the training logic's
//! `wire_bytes()` accounting — the codec and the traffic model describe
//! the same bytes.
//!
//! The cluster smokes spin up the full two-level topology as separate OS
//! processes — three `serve --span K/3` span servers, one `edge`
//! aggregator merging a two-worker group, and two plain `work` members —
//! plus a direct `work --connect-cluster` variant without the edge tier.
//! Port discovery is the bind-time `--out` JSON each server/edge writes
//! (satellite of the `--listen 127.0.0.1:0` flow), polled with a
//! deadline.
//!
//! CI runs this with a hard timeout; the test also enforces its own
//! deadline so a wedged handshake can never hang the suite.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const DEADLINE: Duration = Duration::from_secs(120);

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dgs-cli"))
}

fn tiny_config() -> &'static str {
    r#"{
  "workload": { "kind": "blobs", "samples": 96, "val_samples": 48,
                "classes": 3, "dim": 6, "noise": 0.4 },
  "model": { "kind": "mlp", "hidden": [12] },
  "train": { "method": "dgs", "workers": 2, "batch_per_worker": 8,
              "epochs": 2, "lr": 0.05, "momentum": 0.4,
              "sparsity_ratio": 0.25, "seed": 7 },
  "engine": { "kind": "threads" }
}"#
}

/// Waits for a child with a deadline; kills it (and fails) on expiry.
fn wait_with_deadline(child: &mut Child, who: &str, deadline: Instant) {
    loop {
        match child.try_wait().expect("poll child") {
            Some(status) => {
                assert!(status.success(), "{who} exited with {status}");
                return;
            }
            None if Instant::now() >= deadline => {
                child.kill().ok();
                child.wait().ok();
                panic!("{who} still running at deadline");
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

#[test]
fn serve_plus_two_workers_trains_over_tcp() {
    serve_smoke("dgs_process_mode_test", &[]);
}

#[test]
fn sharded_serve_plus_two_workers_trains_over_tcp() {
    // Same run hosted by the lock-striped server: `--shards 2` swaps in
    // `ShardedMdtServer` behind the identical wire protocol, so every
    // assertion (including the frame-counter == wire_bytes() equality)
    // must hold unchanged.
    serve_smoke("dgs_process_mode_sharded_test", &["--shards", "2"]);
}

#[test]
fn evented_serve_plus_two_workers_trains_over_tcp() {
    // Same run again on the readiness event loop: `--io evented` serves
    // both worker connections from one poller thread. Protocol and bytes
    // are backend-independent, so the identical assertions must hold.
    serve_smoke("dgs_process_mode_evented_test", &["--io", "evented", "--max-conns", "64"]);
}

#[test]
fn evented_sharded_serve_plus_two_workers_trains_over_tcp() {
    // Deepest process-mode stack: lock-striped server logic behind the
    // event loop, across real processes.
    serve_smoke("dgs_process_mode_evented_sharded_test", &["--shards", "2", "--io", "evented"]);
}

fn serve_smoke(dir_name: &str, extra_serve_args: &[&str]) {
    let deadline = Instant::now() + DEADLINE;
    let dir = std::env::temp_dir().join(dir_name);
    std::fs::create_dir_all(&dir).unwrap();
    let cfg_path = dir.join("cfg.json");
    let out_path = dir.join("out.json");
    std::fs::write(&cfg_path, tiny_config()).unwrap();

    // Port 0: the OS picks a free port; serve prints the bound address on
    // its first line, which is how the workers learn where to connect.
    let mut server = cli()
        .arg("serve")
        .arg(&cfg_path)
        .args(["--listen", "127.0.0.1:0", "--deadline-secs", "90"])
        .args(extra_serve_args)
        .arg("--out")
        .arg(&out_path)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let mut server_out = BufReader::new(server.stdout.take().expect("serve stdout"));
    let mut first_line = String::new();
    server_out.read_line(&mut first_line).expect("read serve banner");
    // "serving DGS on 127.0.0.1:PORT: waiting for 2 workers x N iterations"
    let addr = first_line
        .split(" on ")
        .nth(1)
        .and_then(|rest| rest.split(": waiting").next())
        .unwrap_or_else(|| panic!("unparseable serve banner: {first_line:?}"))
        .to_string();

    let mut workers: Vec<Child> = (0..2)
        .map(|k| {
            cli()
                .arg("work")
                .arg(&cfg_path)
                .args(["--connect", &addr, "--worker", &k.to_string()])
                .stdout(Stdio::null())
                .spawn()
                .expect("spawn work")
        })
        .collect();

    // Drain the rest of serve's stdout concurrently so a full pipe buffer
    // can never deadlock the summary print.
    let drain = std::thread::spawn(move || {
        let mut rest = String::new();
        std::io::Read::read_to_string(&mut server_out, &mut rest).ok();
        rest
    });

    for (k, w) in workers.iter_mut().enumerate() {
        wait_with_deadline(w, &format!("worker {k}"), deadline);
    }
    wait_with_deadline(&mut server, "server", deadline);
    let summary = drain.join().expect("drain serve stdout");
    assert!(summary.contains("final top-1"), "serve summary missing:\n{summary}");

    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
    let result = &doc["result"];
    let wire = &doc["wire"];

    let final_loss = result["final_loss"].as_f64().unwrap();
    assert!(final_loss.is_finite(), "final loss not finite: {final_loss}");
    assert!(result["final_acc"].as_f64().unwrap() >= 0.0);

    // Frame counters vs wire_bytes() accounting: a clean run (no resyncs)
    // must agree exactly in both directions.
    assert_eq!(
        wire["data_up"].as_u64().unwrap(),
        result["bytes_up"].as_u64().unwrap(),
        "uplink frame bytes != logic accounting"
    );
    assert_eq!(
        wire["data_down"].as_u64().unwrap(),
        result["bytes_down"].as_u64().unwrap(),
        "downlink frame bytes != logic accounting"
    );
    assert!(wire["frames_up"].as_u64().unwrap() > 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Polls a bind-time `--out` JSON until it parses and contains `key`
/// (file writes aren't atomic, so tolerate partial content), returning
/// the document. Panics at the deadline.
fn poll_json(path: &std::path::Path, key: &str, deadline: Instant) -> serde_json::Value {
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Ok(doc) = serde_json::from_str::<serde_json::Value>(&text) {
                if doc.get(key).is_some() {
                    return doc;
                }
            }
        }
        assert!(Instant::now() < deadline, "no {key:?} in {} by deadline", path.display());
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn cluster_with_edge_trains_over_tcp() {
    cluster_smoke("dgs_process_mode_cluster_test", &[]);
}

#[test]
fn evented_cluster_with_edge_trains_over_tcp() {
    // Same topology with the span servers on the readiness event loop
    // (the edge's member listener is always thread-per-connection — its
    // members block on the round barrier).
    cluster_smoke("dgs_process_mode_cluster_evented_test", &["--io", "evented", "--max-conns", "8"]);
}

/// Three `serve --span K/3` span processes + one `edge --group 2` + two
/// member workers, all separate OS processes wired up through bind-time
/// `--out` discovery. Asserts every process exits cleanly, the partition
/// map hash agrees across the tier, and bytes moved on every span.
fn cluster_smoke(dir_name: &str, extra_span_args: &[&str]) {
    let deadline = Instant::now() + DEADLINE;
    let dir = std::env::temp_dir().join(dir_name);
    std::fs::create_dir_all(&dir).unwrap();
    let cfg_path = dir.join("cfg.json");
    std::fs::write(&cfg_path, tiny_config()).unwrap();

    // Span tier: each process owns one shard span and waits for ONE
    // direct client (the edge aggregator).
    let mut spans: Vec<Child> = Vec::new();
    let mut span_outs = Vec::new();
    for k in 0..3 {
        let out = dir.join(format!("span{k}.json"));
        spans.push(
            cli()
                .arg("serve")
                .arg(&cfg_path)
                .args(["--listen", "127.0.0.1:0", "--deadline-secs", "90"])
                .args(["--span", &format!("{k}/3"), "--clients", "1"])
                .args(extra_span_args)
                .arg("--out")
                .arg(&out)
                .stdout(Stdio::null())
                .spawn()
                .expect("spawn span serve"),
        );
        span_outs.push(out);
    }
    let span_docs: Vec<serde_json::Value> =
        span_outs.iter().map(|p| poll_json(p, "listen", deadline)).collect();
    let span_addrs: Vec<String> =
        span_docs.iter().map(|d| d["listen"].as_str().unwrap().to_string()).collect();
    for (k, doc) in span_docs.iter().enumerate() {
        assert_eq!(doc["span"].as_u64(), Some(k as u64), "span index in bind-time doc");
        assert_eq!(doc["spans"].as_u64(), Some(3));
        assert_eq!(
            doc["layout_hash"].as_u64(),
            span_docs[0]["layout_hash"].as_u64(),
            "partition-map hash must agree across the tier"
        );
    }

    // Edge tier: merges the two-worker group toward the three spans.
    let edge_out = dir.join("edge.json");
    let mut edge = cli()
        .arg("edge")
        .arg(&cfg_path)
        .args(["--connect", &span_addrs.join(","), "--listen", "127.0.0.1:0"])
        .args(["--group", "2", "--base", "0", "--deadline-secs", "90"])
        .arg("--out")
        .arg(&edge_out)
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn edge");
    let edge_addr =
        poll_json(&edge_out, "listen", deadline)["listen"].as_str().unwrap().to_string();

    // Members speak the plain single-server protocol to the edge.
    let mut workers: Vec<Child> = (0..2)
        .map(|k| {
            cli()
                .arg("work")
                .arg(&cfg_path)
                .args(["--connect", &edge_addr, "--worker", &k.to_string()])
                .stdout(Stdio::null())
                .spawn()
                .expect("spawn work")
        })
        .collect();

    for (k, w) in workers.iter_mut().enumerate() {
        wait_with_deadline(w, &format!("member {k}"), deadline);
    }
    wait_with_deadline(&mut edge, "edge", deadline);
    for (k, s) in spans.iter_mut().enumerate() {
        wait_with_deadline(s, &format!("span server {k}"), deadline);
    }

    // Final rewrites carry the wire stats: bytes moved on every span,
    // and the edge recorded both its member side and its upstream side.
    for (k, out) in span_outs.iter().enumerate() {
        let doc = poll_json(out, "wire", deadline);
        assert!(doc["wire"]["frames_up"].as_u64().unwrap() > 0, "span {k} saw no uplink frames");
    }
    let edge_doc = poll_json(&edge_out, "member_wire", deadline);
    assert!(edge_doc["member_wire"]["data_up"].as_u64().unwrap() > 0);
    assert!(edge_doc["upstream_wire"]["data_up"].as_u64().unwrap() > 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// The no-edge cluster path: two `work --connect-cluster` workers fan
/// out straight to the three span servers (each span expects 2 clients).
#[test]
fn workers_connect_cluster_directly() {
    let deadline = Instant::now() + DEADLINE;
    let dir = std::env::temp_dir().join("dgs_process_mode_cluster_direct_test");
    std::fs::create_dir_all(&dir).unwrap();
    let cfg_path = dir.join("cfg.json");
    std::fs::write(&cfg_path, tiny_config()).unwrap();

    let mut spans: Vec<Child> = Vec::new();
    let mut span_outs = Vec::new();
    for k in 0..3 {
        let out = dir.join(format!("span{k}.json"));
        spans.push(
            cli()
                .arg("serve")
                .arg(&cfg_path)
                .args(["--listen", "127.0.0.1:0", "--deadline-secs", "90"])
                .args(["--span", &format!("{k}/3"), "--clients", "2"])
                .arg("--out")
                .arg(&out)
                .stdout(Stdio::null())
                .spawn()
                .expect("spawn span serve"),
        );
        span_outs.push(out);
    }
    let span_addrs: Vec<String> = span_outs
        .iter()
        .map(|p| poll_json(p, "listen", deadline)["listen"].as_str().unwrap().to_string())
        .collect();

    let mut workers: Vec<Child> = (0..2)
        .map(|k| {
            cli()
                .arg("work")
                .arg(&cfg_path)
                .args(["--connect-cluster", &span_addrs.join(","), "--worker", &k.to_string()])
                .stdout(Stdio::null())
                .spawn()
                .expect("spawn cluster work")
        })
        .collect();

    for (k, w) in workers.iter_mut().enumerate() {
        wait_with_deadline(w, &format!("worker {k}"), deadline);
    }
    for (k, s) in spans.iter_mut().enumerate() {
        wait_with_deadline(s, &format!("span server {k}"), deadline);
    }
    for (k, out) in span_outs.iter().enumerate() {
        let doc = poll_json(out, "wire", deadline);
        assert!(doc["wire"]["frames_up"].as_u64().unwrap() > 0, "span {k} saw no uplink frames");
    }
    std::fs::remove_dir_all(&dir).ok();
}
